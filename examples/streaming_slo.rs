//! Per-session SLO classes over a lossy cadence, with adaptive backpressure.
//!
//! Two concurrent subjects stream through one [`ClusterRouter`] under
//! different service contracts: a `Clinical` session (block at capacity —
//! every frame matters) on a clean 10 Hz cadence, and a `Dashboard` session
//! (drop-oldest at a small capacity — freshness over completeness) on a
//! lossy link that misses every third cadence slot. Missed slots are
//! reported with [`ClusterRouter::tick`], so the dashboard session's fused
//! window drains and refills deterministically instead of serving stale
//! history as if it were current.
//!
//! The adaptive controller is switched on (`FUSE_ADAPTIVE=1` semantics), so
//! after the stream the router replays its observed p99 into
//! [`ClusterRouter::autotune`] and prints any per-class queue-capacity
//! moves — the knob the static `BackpressureSpec` presets seed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin streaming_slo
//! ```
//!
//! Knobs: `FUSE_SHARDS` (default 2), `FUSE_EDGE_FRAMES` cadence slots per
//! session (default 30).

use std::error::Error;

use fuse_cluster::env_usize;
use fuse_cluster::prelude::*;
use fuse_examples::print_header;
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

const CLINICAL_SESSION: u64 = 0;
const DASHBOARD_SESSION: u64 = 1;

fn knob(name: &str, default: usize) -> usize {
    match env_usize(name) {
        Ok(n) => n.unwrap_or(default),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn subject_stream(subject: usize, movement: Movement, frames: usize) -> Vec<PointCloudFrame> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    let animator =
        MovementAnimator::new(Subject::profile(subject), movement, 10.0).with_seed(subject as u64);
    let samples = animator.sample_frames_with_velocities(0.0, frames);
    samples
        .iter()
        .enumerate()
        .map(|(i, (skeleton, velocities))| {
            let scene: Scene = body_surface_points(skeleton, velocities, 4)
                .iter()
                .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                .collect();
            scatter.sample(&scene, (subject * frames + i) as u64)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let slots = knob("FUSE_EDGE_FRAMES", 30);

    print_header("Cluster with per-SLO-class backpressure");
    let mut config = match ClusterConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if std::env::var(fuse_cluster::FUSE_SHARDS_ENV).is_err() {
        config.shards = 2;
    }
    // Adaptive mode on: the SLO presets seed the per-class capacities and
    // `autotune` may move them afterwards. (Equivalent to FUSE_ADAPTIVE=1.)
    config.adaptive = true;
    for class in SloClass::ALL {
        let resolved = config.backpressure.resolve(Some(class));
        println!(
            "{:<12} -> policy {:<12} queue capacity {}",
            class.name(),
            resolved.policy.to_string(),
            resolved.queue_capacity
        );
    }

    let model = build_mars_cnn(&ModelConfig::default(), 11)?;
    let mut router = ClusterRouter::new(model, config)?;
    router.open_session(SessionConfig::new(CLINICAL_SESSION).slo(SloClass::Clinical))?;
    router.open_session(SessionConfig::new(DASHBOARD_SESSION).slo(SloClass::Dashboard))?;
    println!(
        "session {CLINICAL_SESSION} (clinical)  -> shard {}",
        router.shard_of(CLINICAL_SESSION)
    );
    println!(
        "session {DASHBOARD_SESSION} (dashboard) -> shard {}",
        router.shard_of(DASHBOARD_SESSION)
    );

    print_header(&format!("Streaming {slots} cadence slots (dashboard link drops every 3rd)"));
    let clinical = subject_stream(0, Movement::Squat, slots);
    let dashboard = subject_stream(1, Movement::BothUpperLimbExtension, slots);
    let mut served = [0usize; 2];
    let mut dashboard_drops = 0usize;
    let mut dashboard_sent = 0usize;
    for (slot, clinical_frame) in clinical.iter().enumerate() {
        router.submit(CLINICAL_SESSION, clinical_frame.clone())?;
        if slot % 3 == 2 {
            // The lossy link missed this slot: advance the dashboard
            // session's delay line deterministically instead of submitting.
            router.tick(DASHBOARD_SESSION)?;
            dashboard_drops += 1;
        } else {
            router.submit(DASHBOARD_SESSION, dashboard[dashboard_sent].clone())?;
            dashboard_sent += 1;
        }
        for response in router.drain()?.responses {
            served[response.session_id as usize] += 1;
        }
    }
    println!(
        "clinical served {} frames; dashboard served {} of {} ({} slots missed)",
        served[0], served[1], dashboard_sent, dashboard_drops
    );

    print_header("Adaptive controller pass");
    let updates = router.autotune()?;
    if updates.is_empty() {
        println!("observed p99 within the hysteresis band: capacities unchanged");
    } else {
        for update in &updates {
            println!("{:<12} queue capacity -> {}", update.class.name(), update.queue_capacity);
        }
    }
    for class in SloClass::ALL {
        println!("{:<12} effective capacity {}", class.name(), router.effective_capacity(class));
    }

    print_header("Cluster metrics");
    println!("{}", router.metrics()?);
    router.shutdown();
    Ok(())
}
