//! Rehabilitation adaptation scenario — the paper's headline use case.
//!
//! A rehabilitation system is deployed for a new patient performing a
//! prescribed movement that was never part of the training data. The example
//! meta-trains a FUSE model and a supervised baseline offline, then fine-tunes
//! both with a handful of frames from the unseen patient/movement and shows
//! how quickly each adapts (and how much each forgets).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin rehab_adaptation
//! ```

use std::error::Error;

use fuse_core::experiments::adaptation;
use fuse_core::finetune::FineTuneScope;
use fuse_examples::{example_profile, print_header};

fn main() -> Result<(), Box<dyn Error>> {
    let profile = example_profile();

    print_header("Offline phase: supervised baseline vs meta-trained FUSE");
    println!(
        "held out from training: movement 'right limb extension' performed by subject 4 (index 3)"
    );
    let context = adaptation::prepare(&profile)?;
    println!(
        "offline training frames: {}   online fine-tune frames: {}   online evaluation frames: {}",
        context.train.len(),
        context.finetune.len(),
        context.new_eval.len()
    );

    print_header("Online phase: fine-tuning all layers on the unseen patient/movement");
    let result = adaptation::run_scope(&context, &profile, FineTuneScope::AllLayers)?;
    println!("{}", result.render_series("MAE per fine-tuning epoch (cm)"));

    print_header("Summary");
    let epochs = 5.min(result.fuse.epochs());
    println!(
        "after {epochs} epochs   baseline new-data MAE: {:.1} cm   FUSE new-data MAE: {:.1} cm",
        result.baseline.new_error_at(epochs).average_cm(),
        result.fuse.new_error_at(epochs).average_cm()
    );
    println!(
        "forgetting at that point   baseline original-data MAE: {:.1} cm   FUSE original-data MAE: {:.1} cm",
        result.baseline.original_error_at(epochs).average_cm(),
        result.fuse.original_error_at(epochs).average_cm()
    );
    match result.adaptation_speedup(epochs) {
        Some(speedup) => {
            println!("adaptation speed-up (baseline epochs / FUSE epochs): {speedup:.1}x")
        }
        None => println!("the baseline never reached FUSE's {epochs}-epoch accuracy in this run"),
    }
    Ok(())
}
