//! Quickstart: synthesise a small MARS-like dataset, train the baseline CNN
//! with multi-frame fusion, and report the per-axis MAE in centimetres.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin quickstart
//! ```

use std::error::Error;

use fuse_core::prelude::*;
use fuse_dataset::per_movement_split;
use fuse_examples::{example_profile, print_header};

fn main() -> Result<(), Box<dyn Error>> {
    let profile = example_profile();

    print_header("1. Synthesising a MARS-like mmWave pose dataset");
    let dataset = MarsSynthesizer::new(profile.synthesis.clone()).generate()?;
    println!(
        "frames: {}   subjects: {:?}   movements: {}   mean points/frame: {:.1}",
        dataset.len(),
        dataset.subjects(),
        dataset.movements().len(),
        dataset.mean_points_per_frame()
    );

    print_header("2. Pre-processing: multi-frame fusion (M = 1) + 8x8x5 feature maps");
    let split = per_movement_split(&dataset, SplitRatios::default_60_20_20())?;
    let fusion = FrameFusion::default();
    let builder = FeatureMapBuilder::default();
    let train = encode_dataset(&split.train, &fusion, &builder)?;
    let test = fuse_dataset::encode_dataset_with_normalizer(
        &split.test,
        &fusion,
        &builder,
        train.normalizer().clone(),
    )?;
    println!(
        "train samples: {}   test samples: {}   input dims: {:?}",
        train.len(),
        test.len(),
        train.input_dims()
    );

    print_header("3. Training the baseline CNN (2 conv + 2 FC, ~1.1M parameters)");
    let model = build_mars_cnn(&ModelConfig::default(), 42)?;
    println!("model parameters: {}", model.param_len());
    let mut trainer = Trainer::new(model, profile.trainer)?;
    let history = trainer.fit(&train, None)?;
    println!(
        "training loss: {:.4} -> {:.4} over {} epochs",
        history.train_loss.first().copied().unwrap_or(0.0),
        history.final_loss().unwrap_or(0.0),
        history.train_loss.len()
    );

    print_header("4. Evaluation on the held-out test split");
    let error = trainer.evaluate(&test)?;
    println!("test MAE: {error}");
    println!("(the paper's Table 1 reports ~3.6 cm average at full scale with 3-frame fusion)");
    Ok(())
}
