//! Multi-user serving through the sharded `fuse-cluster` router.
//!
//! Streams several concurrent subjects through a [`ClusterRouter`]: each
//! session is routed deterministically to an engine shard, frames are
//! submitted asynchronously (the submit path never blocks on inference), a
//! checkpoint is hot-swapped atomically across every shard mid-stream, and a
//! deliberate frame burst at the end shows the backpressure policy dropping
//! work *visibly* — surfaced through the cluster metrics instead of latency
//! silently piling up.
//!
//! Run with:
//!
//! ```text
//! FUSE_SHARDS=4 cargo run --release -p fuse-examples --bin cluster_serving
//! ```
//!
//! Knobs (all parsed with typed errors — a bad value aborts with a clear
//! message): `FUSE_SHARDS` (default 2), `FUSE_EDGE_FRAMES` frames per
//! session (default 30), `FUSE_SESSIONS` concurrent subjects (default 6).

use std::error::Error;

use fuse_cluster::prelude::*;
use fuse_cluster::{env_usize, DEFAULT_QUEUE_CAPACITY};
use fuse_examples::print_header;
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

const MOVEMENTS: [Movement; 4] = [
    Movement::Squat,
    Movement::LeftUpperLimbExtension,
    Movement::BothUpperLimbExtension,
    Movement::RightLimbExtension,
];

fn knob(name: &str, default: usize) -> usize {
    match env_usize(name) {
        Ok(n) => n.unwrap_or(default),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn subject_streams(subjects: usize, frames: usize) -> Vec<Vec<PointCloudFrame>> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..subjects)
        .map(|s| {
            let animator = MovementAnimator::new(
                Subject::profile(s % 4),
                MOVEMENTS[s % MOVEMENTS.len()],
                10.0,
            )
            .with_seed(s as u64);
            let samples = animator.sample_frames_with_velocities(0.0, frames);
            samples
                .iter()
                .enumerate()
                .map(|(i, (skeleton, velocities))| {
                    let scene: Scene = body_surface_points(skeleton, velocities, 4)
                        .iter()
                        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                        .collect();
                    scatter.sample(&scene, (s * frames + i) as u64)
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let frames = knob("FUSE_EDGE_FRAMES", 30);
    let sessions = knob("FUSE_SESSIONS", 6);

    print_header("Setting up the cluster");
    let mut config = match ClusterConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if std::env::var(fuse_cluster::FUSE_SHARDS_ENV).is_err() {
        config.shards = 2;
    }
    config.backpressure =
        BackpressureSpec::uniform(BackpressurePolicy::DropOldest, DEFAULT_QUEUE_CAPACITY);
    let model = build_mars_cnn(&ModelConfig::default(), 11)?;
    println!(
        "{} shards × {} sessions, policy {}, queue capacity {}",
        config.shards,
        sessions,
        config.backpressure.default.policy,
        config.backpressure.default.queue_capacity
    );
    let mut router = ClusterRouter::new(model, config)?;
    for s in 0..sessions as u64 {
        router.open_session(SessionConfig::new(s))?;
        println!("session {s} -> shard {}", router.shard_of(s));
    }

    print_header(&format!("Streaming {frames} frames per session at 10 Hz"));
    let streams = subject_streams(sessions, frames);
    let swap_at = frames / 2;
    let checkpoint_dir = std::env::temp_dir().join("fuse_cluster_serving_example");
    std::fs::create_dir_all(&checkpoint_dir)?;
    let checkpoint = checkpoint_dir.join("swap.json");
    let mut served = 0usize;
    for round in 0..frames {
        for (s, stream) in streams.iter().enumerate() {
            router.submit(s as u64, stream[round].clone())?;
        }
        if round == swap_at {
            // Fan-out hot-swap mid-stream: validated on every shard before
            // any shard commits.
            let donor = ServeEngine::new(
                build_mars_cnn(&ModelConfig::default(), 23)?,
                ServeConfig::default(),
            )?;
            donor.save_checkpoint("retrained", &checkpoint)?;
            let swap = router.hot_swap(&checkpoint)?;
            println!(
                "round {round}: hot-swapped '{}' ({} params) -> every shard at version {}",
                swap.model_name, swap.param_len, swap.version
            );
        }
        served += router.drain()?.responses.len();
    }
    println!("served {served} frames across {sessions} sessions");

    print_header("Forcing backpressure (one session floods a lockstep shard)");
    // A dedicated lockstep router (`auto_step: false`) so the overflow — and
    // therefore the printed drop count — is deterministic: the worker only
    // serves inside `drain`, so a burst past the queue capacity *must* evict.
    let mut lockstep = ClusterRouter::new(
        build_mars_cnn(&ModelConfig::default(), 11)?,
        ClusterConfig {
            backpressure: BackpressureSpec::uniform(
                BackpressurePolicy::DropOldest,
                DEFAULT_QUEUE_CAPACITY,
            ),
            auto_step: false,
            ..ClusterConfig::default()
        },
    )?;
    lockstep.open_session(SessionConfig::new(0))?;
    let burst = 3 * DEFAULT_QUEUE_CAPACITY;
    for i in 0..burst {
        lockstep.submit(0, streams[0][i % frames].clone())?;
    }
    let report = lockstep.drain()?;
    println!(
        "burst of {burst} frames: {} served, {} dropped by the {} policy",
        report.responses.len(),
        report.dropped.len(),
        BackpressurePolicy::DropOldest
    );
    println!("lockstep shard gauges:\n{}", lockstep.metrics()?);
    lockstep.shutdown();

    print_header("Cluster metrics");
    println!("{}", router.metrics()?);
    router.shutdown();
    std::fs::remove_file(&checkpoint).ok();
    Ok(())
}
