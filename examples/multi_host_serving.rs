//! Multi-host serving: a cluster whose shards live in *other processes*,
//! reached over TCP with the `fuse-net` wire protocol.
//!
//! Spawns two [`HostShard`]s on loopback listeners (standing in for two
//! machines), connects a [`ClusterRouter`] to them with
//! [`ShardSpec::Remote`], and streams several sessions through the wire:
//! every submit, flush, checkpoint fan-out and metrics snapshot crosses a
//! length-prefixed, checksummed `FNET` frame. Mid-stream, one session is
//! migrated from one host to the other — fusion history and private model
//! travel as wire payloads — and the stream keeps serving from its new home
//! with byte-identical outputs (the contract pinned by the
//! `wire_cluster` integration tests).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin multi_host_serving
//! ```
//!
//! Knobs: `FUSE_EDGE_FRAMES` frames per session (default 12),
//! `FUSE_SESSIONS` concurrent subjects (default 4).

use std::error::Error;
use std::net::TcpListener;
use std::thread::{self, JoinHandle};

use fuse_cluster::prelude::*;
use fuse_cluster::{env_usize, HostShard, ShardSpec};
use fuse_examples::print_header;
use fuse_net::{TcpTransport, Transport};
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

fn knob(name: &str, default: usize) -> usize {
    match env_usize(name) {
        Ok(n) => n.unwrap_or(default),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn model() -> fuse_nn::Sequential {
    build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds")
}

/// Binds a loopback listener and serves one [`HostShard`] on the first
/// accepted connection — one of these per "machine".
fn spawn_host(shard: usize, config: ClusterConfig) -> (std::net::SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind succeeds");
    let addr = listener.local_addr().expect("bound socket has an address");
    let handle = thread::Builder::new()
        .name(format!("host-shard-{shard}"))
        .spawn(move || {
            let (stream, peer) = listener.accept().expect("router connects");
            println!("host {shard}: serving router at {peer}");
            HostShard::new(model(), config)
                .expect("host shard builds")
                .serve(TcpTransport::from_stream(stream))
                .expect("host exits cleanly");
            println!("host {shard}: shut down");
        })
        .expect("host thread spawns");
    (addr, handle)
}

fn subject_streams(subjects: usize, frames: usize) -> Vec<Vec<PointCloudFrame>> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..subjects)
        .map(|s| {
            let animator = MovementAnimator::new(Subject::profile(s % 4), Movement::Squat, 10.0)
                .with_seed(s as u64);
            let samples = animator.sample_frames_with_velocities(0.0, frames);
            samples
                .iter()
                .enumerate()
                .map(|(i, (skeleton, velocities))| {
                    let scene: Scene = body_surface_points(skeleton, velocities, 4)
                        .iter()
                        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                        .collect();
                    scatter.sample(&scene, (s * frames + i) as u64)
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let frames = knob("FUSE_EDGE_FRAMES", 12);
    let sessions = knob("FUSE_SESSIONS", 4);

    print_header("Starting two host shards on loopback TCP");
    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
    let (addr0, host0) = spawn_host(0, config.clone());
    let (addr1, host1) = spawn_host(1, config.clone());
    println!("host 0 listening on {addr0}\nhost 1 listening on {addr1}");

    print_header("Connecting the router (every shard remote)");
    let specs: Vec<ShardSpec> = [addr0, addr1]
        .iter()
        .map(|addr| {
            let transport = TcpTransport::connect(addr).expect("router connects to host");
            ShardSpec::Remote(Box::new(transport) as Box<dyn Transport>)
        })
        .collect();
    let mut router = ClusterRouter::with_shards(model(), config, specs)?;
    for s in 0..sessions as u64 {
        router.open_session(SessionConfig::new(s))?;
        println!("session {s} -> host shard {}", router.shard_of(s));
    }

    print_header(&format!("Streaming {frames} frames per session over the wire"));
    let streams = subject_streams(sessions, frames);
    let migrate_at = frames / 2;
    let mut served = 0usize;
    for round in 0..frames {
        for (s, stream) in streams.iter().enumerate() {
            router.submit(s as u64, stream[round].clone())?;
        }
        if round == migrate_at {
            // Live migration between hosts: session 0's fusion history (and
            // private model, had it fine-tuned) crosses the wire; every
            // response after this is byte-identical to never having moved.
            let from = router.shard_of(0);
            router.migrate_session(0, 1 - from)?;
            println!(
                "round {round}: migrated session 0 host {from} -> host {}",
                router.shard_of(0)
            );
        }
        served += router.drain()?.responses.len();
    }
    println!("served {served} responses across {sessions} sessions, all over TCP");

    print_header("Cluster metrics (snapshots crossed the wire too)");
    println!("{}", router.metrics()?);

    router.shutdown();
    host0.join().expect("host 0 joins");
    host1.join().expect("host 1 joins");
    println!("both hosts exited cleanly after the shutdown frame");
    Ok(())
}
