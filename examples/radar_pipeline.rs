//! Full FMCW radar signal chain on a moving subject.
//!
//! Demonstrates the substrate underneath the dataset: a squatting subject is
//! converted into body-surface scatterers, the raw ADC cube is synthesised,
//! and the classic range-FFT → Doppler-FFT → CFAR → angle-estimation chain
//! produces the sparse point cloud the FUSE models consume. The example then
//! contrasts single-frame and fused-frame information content (Figure 2).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin radar_pipeline
//! ```

use std::error::Error;

use fuse_dataset::FrameFusion;
use fuse_examples::print_header;
use fuse_radar::{PointCloudFrame, PointCloudGenerator, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

fn main() -> Result<(), Box<dyn Error>> {
    let radar = RadarConfig::iwr1443_indoor();
    print_header("Radar configuration (TI IWR1443-like)");
    println!(
        "range resolution: {:.1} cm   max range: {:.1} m   velocity resolution: {:.2} m/s   virtual antennas: {}",
        radar.range_resolution_m() * 100.0,
        radar.max_range_m(),
        radar.velocity_resolution_mps(),
        radar.virtual_antennas()
    );

    print_header("Animating a squatting subject and running the full signal chain");
    let subject = Subject::profile(1);
    let animator = MovementAnimator::new(subject, Movement::Squat, 10.0).with_seed(7);
    let generator = PointCloudGenerator::new(radar);

    let mut frames: Vec<PointCloudFrame> = Vec::new();
    let samples = animator.sample_frames_with_velocities(0.0, 9);
    for (i, (skeleton, velocities)) in samples.iter().enumerate() {
        let surface = body_surface_points(skeleton, velocities, 3);
        let scene: Scene = surface
            .iter()
            .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
            .collect();
        let frame = generator.generate(&scene, i as u64)?;
        println!(
            "frame {i}: {} points   centroid: {:?}",
            frame.len(),
            frame.centroid().map(|c| [round2(c[0]), round2(c[1]), round2(c[2])])
        );
        frames.push(frame);
    }

    print_header("Figure 2 analogue: single frame vs fused frames");
    let k = frames.len() / 2;
    for fused_count in [1usize, 3, 5] {
        let fusion = FrameFusion::from_frame_count(fused_count);
        let points = fusion.fused_points_owned(&frames, k);
        let (min, max) = bounding(&points);
        println!(
            "{fused_count} frame(s): {:>4} points   height coverage: {:.2} m   lateral coverage: {:.2} m",
            points.len(),
            max[2] - min[2],
            max[0] - min[0]
        );
    }
    println!("\nA 512x424 RGB frame carries {} pixels; the fused mmWave frame above carries a few hundred", 512 * 424);
    println!(
        "points — the sparsity gap that motivates FUSE's multi-frame representation (paper §3.2)."
    );
    Ok(())
}

fn round2(v: f32) -> f32 {
    (v * 100.0).round() / 100.0
}

fn bounding(points: &[fuse_radar::RadarPoint]) -> ([f32; 3], [f32; 3]) {
    let mut min = [f32::INFINITY; 3];
    let mut max = [f32::NEG_INFINITY; 3];
    for p in points {
        for (a, v) in [p.x, p.y, p.z].into_iter().enumerate() {
            min[a] = min[a].min(v);
            max[a] = max[a].max(v);
        }
    }
    if points.is_empty() {
        return ([0.0; 3], [0.0; 3]);
    }
    (min, max)
}
