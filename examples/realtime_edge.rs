//! Real-time edge inference loop.
//!
//! The paper motivates mmWave pose estimation with its low computational
//! requirements (§1, §5). This example measures the end-to-end per-frame
//! latency of the deployed pipeline — point-cloud acquisition (fast scatter
//! model), multi-frame fusion, feature-map construction and CNN inference —
//! and compares it against the 100 ms frame budget of the 10 Hz radar.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin realtime_edge
//! ```

use std::error::Error;
use std::time::Instant;

use fuse_core::prelude::*;
use fuse_dataset::FrameFusion;
use fuse_examples::print_header;
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tensor::Tensor;

fn main() -> Result<(), Box<dyn Error>> {
    print_header("Setting up the deployed pipeline");
    let radar = RadarConfig::iwr1443_indoor();
    let model_config = ModelConfig::default();
    let mut model = build_mars_cnn(&model_config, 11)?;
    println!("model parameters: {}", model.param_len());

    let scatter = FastScatterModel::new(radar);
    let animator =
        MovementAnimator::new(Subject::profile(2), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(3);
    let fusion = FrameFusion::default();
    let builder = FeatureMapBuilder::default();

    print_header("Streaming 50 frames at 10 Hz");
    let frame_budget_ms = 100.0f64;
    let mut history: Vec<PointCloudFrame> = Vec::new();
    let mut latencies = Vec::new();

    let samples = animator.sample_frames_with_velocities(0.0, 50);
    for (i, (skeleton, velocities)) in samples.iter().enumerate() {
        let start = Instant::now();

        // 1. Acquire the sparse point cloud for this frame.
        let surface = body_surface_points(skeleton, velocities, 4);
        let scene: Scene = surface
            .iter()
            .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
            .collect();
        let frame = scatter.sample(&scene, i as u64);
        history.push(frame);
        if history.len() > fusion.frame_count() {
            history.remove(0);
        }

        // 2. Fuse the most recent frames and build the feature map.
        let k = history.len() - 1;
        let points = fusion.fused_points_owned(&history, k);
        let features = builder.build(&points, None)?;

        // 3. CNN inference.
        let input = Tensor::stack(&[features])?;
        let joints = model.forward(&input, false)?;
        assert_eq!(joints.dims(), &[1, 57]);

        latencies.push(start.elapsed().as_secs_f64() * 1000.0);
    }

    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let max = latencies.iter().cloned().fold(0.0f64, f64::max);
    print_header("Latency summary");
    println!("mean per-frame latency: {mean:.2} ms");
    println!("worst-case latency:     {max:.2} ms");
    println!("frame budget at 10 Hz:  {frame_budget_ms:.0} ms");
    if max < frame_budget_ms {
        println!("=> the pipeline sustains real-time operation on this CPU");
    } else {
        println!("=> the pipeline exceeds the frame budget on this CPU (try --release)");
    }
    Ok(())
}
