//! Real-time edge inference loop, served by `fuse-serve`.
//!
//! The paper motivates mmWave pose estimation with its low computational
//! requirements (§1, §5). This example streams one subject through the
//! sessionized [`ServeEngine`] — point-cloud acquisition (fast scatter
//! model), per-session multi-frame fusion, feature-map construction and CNN
//! inference — and reports the engine's per-stage latency percentiles
//! against the 100 ms frame budget of the 10 Hz radar.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin realtime_edge
//! ```
//!
//! `FUSE_EDGE_FRAMES=N` overrides the number of streamed frames (default 50;
//! CI smoke runs use a reduced count).

use std::error::Error;

use fuse_cluster::env_usize;
use fuse_examples::print_header;
use fuse_radar::{FastScatterModel, RadarConfig, Scatterer, Scene};
use fuse_serve::prelude::*;
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

fn main() -> Result<(), Box<dyn Error>> {
    // Typed env-knob parsing: a bad FUSE_EDGE_FRAMES aborts with a clear
    // message instead of a panic or a silent default.
    let frames: usize = match env_usize("FUSE_EDGE_FRAMES") {
        Ok(n) => n.unwrap_or(50),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    print_header("Setting up the serving engine");
    let radar = RadarConfig::iwr1443_indoor();
    let model_config = ModelConfig::default();
    let model = build_mars_cnn(&model_config, 11)?;
    println!("model parameters: {}", model.param_len());

    let mut engine = ServeEngine::new(model, ServeConfig::default())?;
    let subject_id = 2u64;
    engine.open_session(SessionConfig::new(subject_id))?;

    let scatter = FastScatterModel::new(radar);
    let animator =
        MovementAnimator::new(Subject::profile(2), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(3);

    print_header(&format!("Streaming {frames} frames at 10 Hz through session {subject_id}"));
    let samples = animator.sample_frames_with_velocities(0.0, frames);
    for (i, (skeleton, velocities)) in samples.iter().enumerate() {
        // 1. Acquire the sparse point cloud for this frame.
        let surface = body_surface_points(skeleton, velocities, 4);
        let scene: Scene = surface
            .iter()
            .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
            .collect();
        let frame = scatter.sample(&scene, i as u64);

        // 2. Submit to the session (fusion + feature map) and run the
        //    micro-batch for this frame period.
        engine.submit(subject_id, frame)?;
        engine.step()?;
        for response in engine.take_responses() {
            assert_eq!(response.joints.len(), 57);
        }
    }

    print_header("Latency summary");
    let report = engine.recorder().report();
    println!("{report}");
    let within = report.within_budget_fraction.unwrap_or(0.0);
    if within >= 1.0 {
        println!("=> the pipeline sustains real-time operation on this CPU");
    } else {
        println!(
            "=> {:.1}% of frames exceeded the budget on this CPU (try --release)",
            100.0 * (1.0 - within)
        );
    }
    Ok(())
}
