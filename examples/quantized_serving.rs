//! Serving an int8 weight-quantized `.fplan` artifact end to end.
//!
//! The relaxed-contract deployment story this example demonstrates:
//!
//! 1. **Producer**: build the MARS CNN, let the serving engine compile it,
//!    then export *two* artifacts — the exact float plan
//!    ([`ServeEngine::export_plan`]) and the int8 weight-quantized v2 plan
//!    ([`ServeEngine::export_quantized_plan`]), roughly a quarter the size.
//! 2. **Receiver engine**: hot-swap the quantized artifact
//!    ([`ServeEngine::hot_swap_plan`]) and serve a multi-session stream
//!    through the int8 kernels behind the `fuse-quant` device seam.
//! 3. **Edge**: load the same artifact with [`fuse_edge::EdgeSession`] and
//!    serve the same frames — no lowering stack, no compiler.
//!
//! Quantized outputs are *not* bit-identical to the float plan — that is the
//! point of the relaxed tier — so both consumers are verified against the
//! float engine with the tolerance comparator (`fuse_quant::compare`) and
//! per-sample top-1 agreement, the same harness the relaxed golden tests
//! use (see `REPRODUCIBILITY.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin quantized_serving
//! ```
//!
//! Knobs: `FUSE_QUANT_FRAMES` frames per session (default 10), plus the
//! usual `FUSE_THREADS` / `FUSE_BACKEND` kernel knobs.

use std::error::Error;

use fuse_cluster::env_usize;
use fuse_core::{build_mars_cnn, ModelConfig};
use fuse_edge::EdgeSession;
use fuse_examples::print_header;
use fuse_quant::compare::{compare, top1, CompareReport, Tolerance};
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

/// The committed serving budget for the int8 tier (see `REPRODUCIBILITY.md`).
const BUDGET: Tolerance = Tolerance { max_ulp: 0, max_abs: 5e-2, max_rel: 2e-2 };

fn knob(name: &str, default: usize) -> usize {
    match env_usize(name) {
        Ok(n) => n.unwrap_or(default),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn frame_stream(subject: usize, movement: Movement, frames: usize) -> Vec<PointCloudFrame> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    let animator = MovementAnimator::new(Subject::profile(subject), movement, 10.0).with_seed(13);
    animator
        .sample_frames_with_velocities(0.0, frames)
        .iter()
        .enumerate()
        .map(|(i, (skeleton, velocities))| {
            let scene: Scene = body_surface_points(skeleton, velocities, 4)
                .iter()
                .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                .collect();
            scatter.sample(&scene, i as u64)
        })
        .collect()
}

fn merge(worst: &mut CompareReport, report: CompareReport) {
    worst.max_abs = worst.max_abs.max(report.max_abs);
    worst.max_rel = worst.max_rel.max(report.max_rel);
    worst.max_ulp = worst.max_ulp.max(report.max_ulp);
}

/// Top-1 agreement between the float reference and the relaxed output.
///
/// A flipped top-1 is admitted only as a *genuine near-tie*: the reference
/// scores of the two competing indices must themselves sit within the
/// absolute budget, i.e. quantization noise flipped a contest the float
/// model had not decided. (The relaxed golden harness asserts *strict*
/// top-1 on the committed stream, which is verified tie-free; this example
/// streams arbitrary knob-chosen frames, so ties can occur.)
fn top1_agrees(reference: &[f32], relaxed: &[f32]) -> bool {
    let (r, q) = (top1(reference), top1(relaxed));
    if r == q {
        return true;
    }
    match (r, q) {
        (Some(a), Some(b)) => (reference[a] - reference[b]).abs() <= BUDGET.max_abs,
        _ => false,
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let frames = knob("FUSE_QUANT_FRAMES", 10);
    let dir = std::env::temp_dir().join("fuse_quantized_serving_example");
    std::fs::create_dir_all(&dir)?;
    let float_path = dir.join("mars.fplan");
    let quant_path = dir.join("mars-int8.fplan");

    print_header("Producer: compile the MARS CNN, export float + int8 artifacts");
    let model = build_mars_cnn(&ModelConfig::default(), 11)?;
    let mut float_engine = ServeEngine::new(model, ServeConfig::default())?;
    float_engine.export_plan(&float_path)?;
    float_engine.export_quantized_plan(&quant_path)?;
    let (fsize, qsize) =
        (std::fs::metadata(&float_path)?.len(), std::fs::metadata(&quant_path)?.len());
    println!(
        "float plan {fsize} bytes -> int8 plan {qsize} bytes ({:.2}x smaller)",
        fsize as f64 / qsize as f64,
    );

    print_header("Receiver: hot-swap the quantized artifact into a serving engine");
    let mut quant_engine =
        ServeEngine::new(build_mars_cnn(&ModelConfig::default(), 11)?, ServeConfig::default())?;
    quant_engine.hot_swap_plan(&quant_path)?;
    let plan = quant_engine.plan().expect("swap installs the artifact's plan");
    println!(
        "installed plan v{}: quantized={}, {} int8 weights through device '{}'",
        quant_engine.model_version(),
        plan.is_quantized(),
        plan.qweight_len(),
        plan.device_name().unwrap_or("<unbound>"),
    );

    print_header(&format!("Streaming {frames} frames x 2 sessions through both engines"));
    let sessions = [(1u64, 0usize, Movement::Squat), (2u64, 1, Movement::BothUpperLimbExtension)];
    for (id, _, _) in sessions {
        float_engine.open_session(SessionConfig::new(id))?;
        quant_engine.open_session(SessionConfig::new(id))?;
    }
    let streams: Vec<(u64, Vec<PointCloudFrame>)> = sessions
        .iter()
        .map(|&(id, subject, movement)| (id, frame_stream(subject, movement, frames)))
        .collect();
    let mut worst = CompareReport::default();
    let mut served = 0usize;
    let mut agreed = 0usize;
    for step in 0..frames {
        for (id, stream) in &streams {
            float_engine.submit(*id, stream[step].clone())?;
            quant_engine.submit(*id, stream[step].clone())?;
        }
        float_engine.step()?;
        quant_engine.step()?;
        let want = float_engine.take_responses();
        let got = quant_engine.take_responses();
        assert_eq!(want.len(), got.len(), "both engines serve the same schedule");
        for (w, g) in want.iter().zip(&got) {
            let report = compare(&w.joints, &g.joints, &BUDGET)
                .map_err(|e| format!("session {} frame {}: {e}", w.session_id, w.frame_index))?;
            merge(&mut worst, report);
            served += 1;
            agreed += usize::from(top1_agrees(&w.joints, &g.joints));
        }
    }
    println!(
        "{served}/{served} responses within budget (max_abs {:.3e}, max_rel {:.3e}); \
         top-1 agreement {agreed}/{served}",
        worst.max_abs, worst.max_rel,
    );
    assert_eq!(agreed, served, "the int8 tier must preserve every undisputed top-1 index");

    print_header("Edge: the same artifact serves standalone");
    let mut edge = EdgeSession::load(&quant_path)?;
    assert!(edge.is_quantized());
    float_engine.submit(1, streams[0].1[frames - 1].clone())?;
    let features = float_engine.session(1).expect("open").featurize_latest()?;
    float_engine.step()?;
    let want = float_engine.take_responses();
    let got = edge.infer(features.as_slice(), 1)?;
    let report = compare(&want[0].joints, got, &BUDGET)?;
    println!(
        "edge session: quantized inference within budget (max_abs {:.3e}), top-1 {:?} vs {:?}",
        report.max_abs,
        top1(got),
        top1(&want[0].joints),
    );
    assert!(
        top1_agrees(&want[0].joints, got),
        "the edge int8 tier must preserve every undisputed top-1 index"
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
