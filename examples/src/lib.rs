//! Shared helpers for the FUSE example binaries.
//!
//! The examples are intentionally small, self-contained programs that
//! exercise the public API of the workspace crates end to end. This tiny
//! support library only holds the pieces every example repeats: a reduced
//! experiment profile that finishes in well under a minute and a couple of
//! printing helpers.

use fuse_core::experiments::profile::ExperimentProfile;
use fuse_core::MetaConfig;
use fuse_dataset::SynthesisConfig;
use fuse_parallel::env::KnobDef;
use fuse_skeleton::Movement;

/// The environment knobs owned by the example binaries (see [`KnobDef`] for
/// how these feed the generated `README.md` reference table).
pub const EXAMPLE_KNOBS: &[KnobDef] = &[
    KnobDef {
        name: "FUSE_EDGE_FRAMES",
        default:
            "50 (realtime_edge) / 30 (cluster_serving) / 20 (edge_infer) / 12 (multi_host_serving)",
        accepts: "positive integer",
        description: "Frames streamed per session by the serving examples",
    },
    KnobDef {
        name: "FUSE_SESSIONS",
        default: "6",
        accepts: "positive integer",
        description:
            "Concurrent subjects simulated by the cluster_serving and multi_host_serving examples",
    },
    KnobDef {
        name: "FUSE_QUANT_FRAMES",
        default: "10",
        accepts: "positive integer",
        description: "Frames streamed per session by the quantized_serving example",
    },
];

/// An experiment profile small enough for an interactive example run
/// (a couple of subjects and movements, a handful of epochs).
pub fn example_profile() -> ExperimentProfile {
    let mut profile = ExperimentProfile::bench();
    profile.name = "example".into();
    profile.synthesis = SynthesisConfig {
        subjects: vec![0, 1, 3],
        movements: vec![
            Movement::Squat,
            Movement::LeftUpperLimbExtension,
            Movement::BothUpperLimbExtension,
            Movement::RightLimbExtension,
        ],
        frames_per_sequence: 40,
        ..SynthesisConfig::quick()
    };
    profile.trainer.epochs = 5;
    profile.meta = MetaConfig { meta_iterations: 20, ..MetaConfig::quick(20) };
    profile.finetune_epochs = 10;
    profile.finetune_frames = 15;
    profile.original_eval_cap = 120;
    profile
}

/// Prints a section header so the example output is easy to scan.
pub fn print_header(title: &str) {
    println!();
    println!("==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_profile_is_valid_and_small() {
        let profile = example_profile();
        profile.validate().unwrap();
        assert!(profile.synthesis.total_frames() < 1000);
        assert!(profile.trainer.epochs <= 10);
    }
}
