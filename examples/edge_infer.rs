//! Serving a compiled `.fplan` artifact on an edge device.
//!
//! The deployment split this example demonstrates:
//!
//! 1. **Producer** (a training or serving host): build the MARS CNN, let the
//!    serving engine lower and compile it, then export the compiled plan as a
//!    self-contained `.fplan` artifact ([`ServeEngine::export_plan`]) —
//!    signature, fused step schedule, arena layout and parameter snapshot in
//!    one versioned, checksummed binary file.
//! 2. **Edge** (the deployment target): load the artifact with
//!    [`fuse_edge::EdgeSession`] and serve frames. The edge side carries no
//!    `fuse-nn`, no lowering and no compiler — just the artifact and the
//!    kernels — and its outputs are bit-identical to the producer's.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fuse-examples --bin edge_infer
//! ```
//!
//! Knobs: `FUSE_EDGE_FRAMES` frames to stream (default 20), plus the usual
//! `FUSE_THREADS` / `FUSE_BACKEND` kernel knobs.

use std::error::Error;

use fuse_cluster::env_usize;
use fuse_core::{build_mars_cnn, ModelConfig};
use fuse_edge::EdgeSession;
use fuse_examples::print_header;
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};

fn knob(name: &str, default: usize) -> usize {
    match env_usize(name) {
        Ok(n) => n.unwrap_or(default),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn frame_stream(frames: usize) -> Vec<PointCloudFrame> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    let animator = MovementAnimator::new(Subject::profile(0), Movement::Squat, 10.0).with_seed(7);
    animator
        .sample_frames_with_velocities(0.0, frames)
        .iter()
        .enumerate()
        .map(|(i, (skeleton, velocities))| {
            let scene: Scene = body_surface_points(skeleton, velocities, 4)
                .iter()
                .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                .collect();
            scatter.sample(&scene, i as u64)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let frames = knob("FUSE_EDGE_FRAMES", 20);
    let dir = std::env::temp_dir().join("fuse_edge_infer_example");
    std::fs::create_dir_all(&dir)?;
    let artifact = dir.join("mars.fplan");
    let checkpoint = dir.join("mars.json");

    print_header("Producer: compile the MARS CNN and export the plan artifact");
    let model = build_mars_cnn(&ModelConfig::default(), 11)?;
    let mut producer = ServeEngine::new(model, ServeConfig::default())?;
    let plan = producer.plan().expect("the MARS CNN compiles to a plan");
    println!(
        "compiled plan: {} layers -> {} fused steps, input {:?}, output {:?}, max_batch {}",
        plan.signature().layer_names().len(),
        plan.step_count(),
        plan.input_meta().dims(),
        plan.output_meta().dims(),
        plan.max_batch(),
    );
    producer.export_plan(&artifact)?;
    producer.save_checkpoint("mars", &checkpoint)?;
    let artifact_len = std::fs::metadata(&artifact)?.len();
    let checkpoint_len = std::fs::metadata(&checkpoint)?.len();
    println!(
        "exported {} ({artifact_len} bytes; JSON checkpoint of the same weights: \
         {checkpoint_len} bytes, {:.1}x larger — and it carries no schedule)",
        artifact.display(),
        checkpoint_len as f64 / artifact_len as f64,
    );

    print_header("Edge: load the artifact — no fuse-nn, no lowering, no compiler");
    let mut edge = EdgeSession::load(&artifact)?;
    println!(
        "loaded plan for {:?} ({} params), input {:?} -> output {:?}",
        edge.signature().layer_names(),
        edge.signature().param_len(),
        edge.input_meta().dims(),
        edge.output_meta().dims(),
    );

    print_header(&format!("Streaming {frames} frames through both sides"));
    // The producer engine serves each frame through its in-memory plan; the
    // edge session serves the same fused features from the artifact. The
    // reproducibility contract says the two must agree bit for bit.
    producer.open_session(SessionConfig::new(0))?;
    let mut identical = 0usize;
    for frame in frame_stream(frames) {
        producer.submit(0, frame)?;
        let features = producer.session(0).expect("open").featurize_latest()?;
        producer.step()?;
        let served = producer.take_responses();
        let edge_joints = edge.infer(features.as_slice(), 1)?;
        if served[0].joints.as_slice() == edge_joints {
            identical += 1;
        }
    }
    println!("{identical}/{frames} frames bit-identical between producer and edge");
    assert_eq!(identical, frames, "edge outputs must match the producer bit for bit");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
