//! Cross-crate integration tests for the FUSE workspace.
//!
//! The interesting parts live in the `tests/` directory, where end-to-end
//! scenarios exercise the full pipeline: dataset synthesis → pre-processing →
//! training → meta-learning → online fine-tuning → evaluation, plus the full
//! radar signal chain feeding the CNN. This support library holds the
//! golden-file machinery used by the regression suite in
//! `tests/golden_trace.rs`.

pub mod golden;
