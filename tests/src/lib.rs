//! Cross-crate integration tests for the FUSE workspace.
//!
//! This crate intentionally contains no library code — the interesting parts
//! live in the `tests/` directory, where end-to-end scenarios exercise the
//! full pipeline: dataset synthesis → pre-processing → training →
//! meta-learning → online fine-tuning → evaluation, plus the full radar
//! signal chain feeding the CNN.
