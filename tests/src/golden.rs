//! Golden-file machinery for the numeric regression suite.
//!
//! A golden test serializes a trace of the pipeline's intermediate and final
//! numerics to JSON and compares it against a committed file under
//! `tests/goldens/`. The comparison is exact: every value in the trace is a
//! deterministic, bit-reproducible function of fixed seeds (the
//! `fuse-parallel` contract guarantees this for any `FUSE_THREADS`), and f32
//! values survive the JSON round-trip losslessly (f32 → f64 → shortest
//! round-trip decimal → f64 → f32).
//!
//! **Platform assumption:** the traces run through `f32::sin`/`cos`/`exp`,
//! which defer to the platform libm and may differ by an ulp across targets
//! or libc versions. The committed goldens pin the CI platform
//! (x86_64-linux, the same target the thread-matrix jobs use). On another
//! target, regenerate locally first and treat the diff against the committed
//! files as informational, not as a regression.
//!
//! Regenerate the committed files after an *intentional* numeric change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p fuse-tests --test golden_trace
//! ```

use std::fmt::Debug;
use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// Directory holding the committed golden files.
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// `true` when the run should rewrite golden files instead of checking them.
pub fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1")
}

/// Checks `actual` against the committed golden `name`.json, or rewrites the
/// file when `UPDATE_GOLDENS=1` is set.
///
/// # Panics
///
/// Panics (failing the test) when the golden file is missing, unreadable, or
/// disagrees with `actual`.
pub fn check_or_update<T>(name: &str, actual: &T)
where
    T: Serialize + Deserialize + PartialEq + Debug,
{
    let path = goldens_dir().join(format!("{name}.json"));
    let encoded = serde_json::to_string(actual).expect("golden trace encodes to JSON");
    if update_requested() {
        fs::create_dir_all(goldens_dir()).expect("goldens directory can be created");
        fs::write(&path, &encoded)
            .unwrap_or_else(|e| panic!("cannot write golden {}: {e}", path.display()));
        eprintln!("updated golden {}", path.display());
        return;
    }
    let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             `UPDATE_GOLDENS=1 cargo test -p fuse-tests --test golden_trace`",
            path.display()
        )
    });
    let expected: T = serde_json::from_str(&committed)
        .unwrap_or_else(|e| panic!("golden file {} is not valid JSON: {e}", path.display()));
    assert!(
        expected == *actual,
        "trace diverged from golden {}:\n  expected: {:?}\n  actual:   {:?}\n\
         If the numeric change is intentional, regenerate with \
         `UPDATE_GOLDENS=1 cargo test -p fuse-tests --test golden_trace`.",
        path.display(),
        expected,
        actual
    );
}

/// Compact numeric summary of one pipeline stage: enough to pin the stage's
/// numerics without committing every value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDigest {
    /// Number of scalar values summarised.
    pub count: usize,
    /// Sum of the values (f32 accumulation in index order).
    pub sum: f32,
    /// Sum of squares of the values (f32 accumulation in index order).
    pub sum_squares: f32,
    /// The first values, verbatim.
    pub head: Vec<f32>,
}

impl StageDigest {
    /// Digests a slice, keeping the first `head` values verbatim.
    pub fn of(values: &[f32], head: usize) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "golden traces must be finite");
        let mut sum = 0.0f32;
        let mut sum_squares = 0.0f32;
        for &v in values {
            sum += v;
            sum_squares += v * v;
        }
        StageDigest {
            count: values.len(),
            sum,
            sum_squares,
            head: values[..head.min(values.len())].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_summarises_in_index_order() {
        let digest = StageDigest::of(&[1.0, 2.0, 3.0], 2);
        assert_eq!(digest.count, 3);
        assert_eq!(digest.sum, 6.0);
        assert_eq!(digest.sum_squares, 14.0);
        assert_eq!(digest.head, vec![1.0, 2.0]);
        let empty = StageDigest::of(&[], 4);
        assert_eq!(empty.count, 0);
        assert!(empty.head.is_empty());
    }

    #[test]
    fn digest_round_trips_through_json_losslessly() {
        let digest = StageDigest::of(&[0.1, -2.75, 3.0e-7, f32::MIN_POSITIVE], 4);
        let json = serde_json::to_string(&digest).unwrap();
        let back: StageDigest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, digest);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn digest_rejects_non_finite_values() {
        StageDigest::of(&[1.0, f32::NAN], 1);
    }
}
