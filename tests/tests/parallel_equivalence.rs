//! Serial-vs-parallel equivalence of the training/evaluation stack.
//!
//! The `fuse-parallel` backend promises bit-identical results for any thread
//! count: parallel episodes/batches compute on private model clones and their
//! contributions are merged in index order. These tests run the same
//! fixed-seed workload with the thread count forced to 1 and to 4 inside one
//! process and compare every learned parameter bit-for-bit — the same
//! contract the CI thread matrix (`FUSE_THREADS=1` vs `4`) checks across
//! whole processes.

use fuse_core::prelude::*;
use fuse_dataset::{encode_dataset, EncodedDataset};
use fuse_parallel::{with_min_parallel_work, with_threads};

fn encoded() -> EncodedDataset {
    let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
    encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
}

/// Runs `f` with 1 thread and with 4 threads (parallel dispatch forced for
/// any input size) and returns both results.
fn serial_and_parallel<R>(f: impl Fn() -> R) -> (R, R) {
    let serial = with_threads(1, &f);
    let parallel = with_threads(4, || with_min_parallel_work(0, &f));
    (serial, parallel)
}

#[test]
fn meta_training_step_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let config = MetaConfig {
        tasks_per_iteration: 4,
        support_size: 12,
        query_size: 12,
        ..MetaConfig::quick(2)
    };
    let (serial, parallel) = serial_and_parallel(|| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 11).unwrap();
        let mut trainer = MetaTrainer::new(model, config).unwrap();
        let history = trainer.train(&data).unwrap();
        (history.query_loss.clone(), trainer.into_model().flat_params())
    });
    assert_eq!(serial.0, parallel.0, "query losses diverged between thread counts");
    assert_eq!(serial.1, parallel.1, "meta-learned parameters diverged between thread counts");
}

#[test]
fn reptile_step_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let config = MetaConfig {
        tasks_per_iteration: 3,
        support_size: 12,
        query_size: 12,
        variant: MetaVariant::Reptile,
        ..MetaConfig::quick(1)
    };
    let (serial, parallel) = serial_and_parallel(|| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 12).unwrap();
        let mut trainer = MetaTrainer::new(model, config).unwrap();
        trainer.meta_iteration(&data, 0).unwrap();
        trainer.into_model().flat_params()
    });
    assert_eq!(serial, parallel, "reptile parameters diverged between thread counts");
}

#[test]
fn evaluation_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let (serial, parallel) = serial_and_parallel(|| {
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 13).unwrap();
        let error = evaluate_model(&mut model, &data, 7).unwrap();
        let pred = predict_all(&mut model, &data, 7).unwrap();
        (error.meters, pred.as_slice().to_vec())
    });
    assert_eq!(serial.0, parallel.0, "evaluation MAE diverged between thread counts");
    assert_eq!(serial.1, parallel.1, "predictions diverged between thread counts");
}

#[test]
fn fine_tuning_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let config = FineTuneConfig { epochs: 2, batch_size: 16, ..FineTuneConfig::default() };
    let (serial, parallel) = serial_and_parallel(|| {
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 14).unwrap();
        let result = fine_tune(&mut model, &data, &data, &data, &config).unwrap();
        (result.train_loss.clone(), model.flat_params())
    });
    assert_eq!(serial.0, parallel.0, "fine-tune losses diverged between thread counts");
    assert_eq!(serial.1, parallel.1, "fine-tuned parameters diverged between thread counts");
}
