//! Serial-vs-parallel and scalar-vs-SIMD equivalence of the
//! training/evaluation/serving stack.
//!
//! The execution substrate promises bit-identical results for any thread
//! count (parallel episodes/batches compute on private model clones and
//! their contributions are merged in index order) and for any kernel
//! backend (the SIMD kernels preserve every per-element floating-point
//! order — `REPRODUCIBILITY.md`). These tests run the same fixed-seed
//! workload with the thread count forced to 1 vs 4 and the backend forced
//! to scalar vs SIMD inside one process and compare every learned parameter
//! bit-for-bit — the same contract the CI `FUSE_THREADS` × `FUSE_BACKEND`
//! matrix checks across whole processes.

use fuse_backend::{with_backend, BackendChoice};
use fuse_core::prelude::*;
use fuse_dataset::{encode_dataset, EncodedDataset};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig};
use fuse_serve::{ServeConfig, ServeEngine, ServeResponse, SessionConfig};

fn encoded() -> EncodedDataset {
    let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
    encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
}

/// Runs `f` with 1 thread and with 4 threads (parallel dispatch forced for
/// any input size) and returns both results.
fn serial_and_parallel<R>(f: impl Fn() -> R) -> (R, R) {
    let serial = with_threads(1, &f);
    let parallel = with_threads(4, || with_min_parallel_work(0, &f));
    (serial, parallel)
}

/// Runs `f` on the serial scalar reference and on the SIMD backend under
/// parallel dispatch: one comparison crosses both reproducibility contracts
/// (thread count and kernel backend).
fn scalar_and_simd<R>(f: impl Fn() -> R) -> (R, R) {
    let scalar = with_threads(1, || with_backend(BackendChoice::Scalar, &f));
    let simd =
        with_threads(4, || with_min_parallel_work(0, || with_backend(BackendChoice::Simd, &f)));
    (scalar, simd)
}

#[test]
fn meta_training_step_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let config = MetaConfig {
        tasks_per_iteration: 4,
        support_size: 12,
        query_size: 12,
        ..MetaConfig::quick(2)
    };
    let (serial, parallel) = serial_and_parallel(|| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 11).unwrap();
        let mut trainer = MetaTrainer::new(model, config).unwrap();
        let history = trainer.train(&data).unwrap();
        (history.query_loss.clone(), trainer.into_model().flat_params())
    });
    assert_eq!(serial.0, parallel.0, "query losses diverged between thread counts");
    assert_eq!(serial.1, parallel.1, "meta-learned parameters diverged between thread counts");
}

#[test]
fn reptile_step_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let config = MetaConfig {
        tasks_per_iteration: 3,
        support_size: 12,
        query_size: 12,
        variant: MetaVariant::Reptile,
        ..MetaConfig::quick(1)
    };
    let (serial, parallel) = serial_and_parallel(|| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 12).unwrap();
        let mut trainer = MetaTrainer::new(model, config).unwrap();
        trainer.meta_iteration(&data, 0).unwrap();
        trainer.into_model().flat_params()
    });
    assert_eq!(serial, parallel, "reptile parameters diverged between thread counts");
}

#[test]
fn evaluation_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let (serial, parallel) = serial_and_parallel(|| {
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 13).unwrap();
        let error = evaluate_model(&mut model, &data, 7).unwrap();
        let pred = predict_all(&mut model, &data, 7).unwrap();
        (error.meters, pred.as_slice().to_vec())
    });
    assert_eq!(serial.0, parallel.0, "evaluation MAE diverged between thread counts");
    assert_eq!(serial.1, parallel.1, "predictions diverged between thread counts");
}

/// Pre-generates a deterministic stream of point-cloud frames per session.
fn session_streams(sessions: usize, rounds: usize) -> Vec<Vec<PointCloudFrame>> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..sessions)
        .map(|s| {
            (0..rounds)
                .map(|r| {
                    // A small synthetic scene; only determinism matters here.
                    let scene = (0..12)
                        .map(|i| {
                            let z = 0.2 + 0.1 * i as f32 + 0.01 * s as f32;
                            fuse_radar::Scatterer::new(
                                [0.05 * i as f32, 2.0, z],
                                [0.0, 0.3, 0.0],
                                1.0,
                            )
                        })
                        .collect();
                    scatter.sample(&scene, (s * rounds + r) as u64)
                })
                .collect()
        })
        .collect()
}

/// Streams every session through one engine, submitting each round's frames
/// in the given session order, and returns all responses in deterministic
/// `(session, frame)` order.
fn serve_stream(streams: &[Vec<PointCloudFrame>], submit_order: &[usize]) -> Vec<ServeResponse> {
    let model = build_mars_cnn(&ModelConfig::tiny(), 33).unwrap();
    let mut engine = ServeEngine::new(model, ServeConfig::default()).unwrap();
    for s in 0..streams.len() {
        engine.open_session(SessionConfig::new(s as u64)).unwrap();
    }
    // Adapt one session online so the private-model path is covered too.
    let config = FineTuneConfig { epochs: 1, batch_size: 16, ..FineTuneConfig::default() };
    engine.adapt_session(1, &encoded(), &config).unwrap();

    let mut responses = Vec::new();
    // Rounds advance in lockstep across sessions; the submission order within
    // a round is the permutation under test (hence the 2-D indexing).
    #[allow(clippy::needless_range_loop)]
    for round in 0..streams[0].len() {
        for &s in submit_order {
            let frame = streams[s][round].clone();
            engine.submit(s as u64, frame).unwrap();
        }
        engine.step().unwrap();
        responses.extend(engine.take_responses());
    }
    responses
}

#[test]
fn serving_is_bit_identical_across_thread_counts() {
    let streams = session_streams(3, 4);
    let order = [0usize, 1, 2];
    let (serial, parallel) = serial_and_parallel(|| {
        serve_stream(&streams, &order)
            .into_iter()
            .map(|r| (r.session_id, r.frame_index, r.adapted, r.joints))
            .collect::<Vec<_>>()
    });
    assert_eq!(serial, parallel, "serving responses diverged between thread counts");
    assert!(serial.iter().any(|(_, _, adapted, _)| *adapted), "the adapted path must be covered");
}

#[test]
fn serving_is_independent_of_session_arrival_order() {
    let streams = session_streams(3, 4);
    let in_order = serve_stream(&streams, &[0, 1, 2]);
    let reversed = serve_stream(&streams, &[2, 0, 1]);
    assert_eq!(
        in_order, reversed,
        "micro-batched responses must not depend on submission interleaving"
    );
}

#[test]
fn serving_micro_batch_size_does_not_change_responses() {
    // One step per round versus one big deferred micro-batch: the engine
    // featurizes on submit, so batching granularity must not change a bit.
    let streams = session_streams(2, 3);
    let per_round = serve_stream(&streams, &[0, 1]);

    let model = build_mars_cnn(&ModelConfig::tiny(), 33).unwrap();
    let mut engine = ServeEngine::new(model, ServeConfig::default()).unwrap();
    engine.open_session(SessionConfig::new(0)).unwrap();
    engine.open_session(SessionConfig::new(1)).unwrap();
    let config = FineTuneConfig { epochs: 1, batch_size: 16, ..FineTuneConfig::default() };
    engine.adapt_session(1, &encoded(), &config).unwrap();
    for round in 0..3 {
        for (s, stream) in streams.iter().enumerate() {
            engine.submit(s as u64, stream[round].clone()).unwrap();
        }
    }
    engine.step().unwrap();
    let mut deferred = engine.take_responses();
    deferred.sort_by_key(|r| (r.session_id, r.frame_index));
    let mut per_round_sorted = per_round;
    per_round_sorted.sort_by_key(|r| (r.session_id, r.frame_index));
    let key = |r: &ServeResponse| (r.session_id, r.frame_index, r.joints.clone());
    assert_eq!(
        deferred.iter().map(key).collect::<Vec<_>>(),
        per_round_sorted.iter().map(key).collect::<Vec<_>>(),
        "batching granularity changed the numerics"
    );
}

#[test]
fn fine_tuning_is_bit_identical_across_thread_counts() {
    let data = encoded();
    let config = FineTuneConfig { epochs: 2, batch_size: 16, ..FineTuneConfig::default() };
    let (serial, parallel) = serial_and_parallel(|| {
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 14).unwrap();
        let result = fine_tune(&mut model, &data, &data, &data, &config).unwrap();
        (result.train_loss.clone(), model.flat_params())
    });
    assert_eq!(serial.0, parallel.0, "fine-tune losses diverged between thread counts");
    assert_eq!(serial.1, parallel.1, "fine-tuned parameters diverged between thread counts");
}

#[test]
fn fine_tuning_is_bit_identical_across_backends() {
    // The full optimiser surface (conv fwd/bwd, linear layers, loss, SGD)
    // on the scalar reference vs the SIMD backend under parallel dispatch:
    // every train loss and every learned parameter must match bit-for-bit.
    let data = encoded();
    let config = FineTuneConfig { epochs: 2, batch_size: 16, ..FineTuneConfig::default() };
    let (scalar, simd) = scalar_and_simd(|| {
        let mut model = build_mars_cnn(&ModelConfig::tiny(), 14).unwrap();
        let result = fine_tune(&mut model, &data, &data, &data, &config).unwrap();
        (result.train_loss.clone(), model.flat_params())
    });
    assert_eq!(scalar.0, simd.0, "fine-tune losses diverged between backends");
    assert_eq!(scalar.1, simd.1, "fine-tuned parameters diverged between backends");
}

#[test]
fn meta_training_step_is_bit_identical_across_backends() {
    let data = encoded();
    let config = MetaConfig {
        tasks_per_iteration: 3,
        support_size: 12,
        query_size: 12,
        ..MetaConfig::quick(1)
    };
    let (scalar, simd) = scalar_and_simd(|| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 11).unwrap();
        let mut trainer = MetaTrainer::new(model, config).unwrap();
        trainer.meta_iteration(&data, 0).unwrap();
        trainer.into_model().flat_params()
    });
    assert_eq!(scalar, simd, "meta-learned parameters diverged between backends");
}

#[test]
fn serving_is_bit_identical_across_backends() {
    // A sessionized serve stream (fusion, featurization, micro-batched
    // forward passes, one adapted session) must be reproduced bit-for-bit
    // by the SIMD backend — the process-level guarantee the CI
    // FUSE_BACKEND matrix checks through the committed goldens.
    let streams = session_streams(3, 4);
    let order = [0usize, 1, 2];
    let (scalar, simd) = scalar_and_simd(|| {
        serve_stream(&streams, &order)
            .into_iter()
            .map(|r| (r.session_id, r.frame_index, r.adapted, r.joints))
            .collect::<Vec<_>>()
    });
    assert_eq!(scalar, simd, "serving responses diverged between backends");
    assert!(scalar.iter().any(|(_, _, adapted, _)| *adapted), "the adapted path must be covered");
}
