//! Compiled-plan vs legacy-pipeline bit-identity.
//!
//! The op-graph compiler (`fuse-graph`) promises that a compiled
//! [`fuse_graph::ExecPlan`] — fused conv+bias+ReLU dispatches, 1×1 convs
//! collapsed to direct gemm, arena-backed intermediates — produces output
//! **bit-identical** to the layer-by-layer [`fuse_nn::Sequential::forward`]
//! walk it replaced, for every kernel backend × thread-count combination the
//! reproducibility contract covers. These tests pin that promise from fixed
//! seeds and from proptest-generated weights/inputs.

use fuse_backend::{with_backend, BackendChoice};
use fuse_core::{build_mars_cnn, ModelConfig};
use fuse_nn::layers::{Conv2d, Flatten, Linear, Relu};
use fuse_nn::{LoweringRequest, Sequential};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_tensor::{Conv2dSpec, Tensor};
use proptest::prelude::*;

/// Forward through the compiled plan and through the legacy layer walk and
/// assert the outputs are bit-identical, for every batch size up to
/// `max_batch`.
fn assert_plan_matches_model(
    model: &Sequential,
    input_dims: &[usize],
    max_batch: usize,
    seed: u64,
) {
    let mut plan =
        LoweringRequest::new(model, input_dims).lower().unwrap().compile(max_batch).unwrap();
    let mut legacy = model.clone();
    let sample_len: usize = input_dims.iter().product();
    for batch in 1..=max_batch {
        let mut dims = vec![batch];
        dims.extend_from_slice(input_dims);
        let input = Tensor::randn(&dims, 1.0, seed + batch as u64);
        let expected = legacy.forward(&input, false).unwrap();
        let out = plan.run(&input.as_slice()[..batch * sample_len], batch).unwrap();
        assert_eq!(
            out,
            expected.as_slice(),
            "plan diverged from the legacy pipeline at batch {batch}"
        );
    }
}

/// Runs `f` under every backend × thread-count leg of the CI matrix (scalar
/// and SIMD kernels, serial and forced-parallel dispatch) inside one process.
fn for_each_matrix_leg(f: impl Fn()) {
    for backend in [BackendChoice::Scalar, BackendChoice::Simd] {
        with_threads(1, || with_backend(backend, &f));
        with_threads(4, || with_min_parallel_work(0, || with_backend(backend, &f)));
    }
}

#[test]
fn mars_cnn_plan_matches_the_legacy_forward_on_every_matrix_leg() {
    let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
    for_each_matrix_leg(|| assert_plan_matches_model(&model, &[5, 8, 8], 4, 100));
}

#[test]
fn one_by_one_conv_collapse_matches_on_every_matrix_leg() {
    // k=1, s=1, p=0: the compiler rewrites this conv to a direct gemm (the
    // im2col matrix is the input verbatim), skipping the scratch copy.
    let model = Sequential::new(vec![
        Box::new(
            Conv2d::new(
                Conv2dSpec { in_channels: 3, out_channels: 6, kernel: 1, stride: 1, padding: 0 },
                21,
            )
            .unwrap(),
        ),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(Conv2dSpec::same(6, 4, 3), 22).unwrap()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(4 * 6 * 6, 9, 23).unwrap()),
    ]);
    for_each_matrix_leg(|| assert_plan_matches_model(&model, &[3, 6, 6], 3, 200));
}

#[test]
fn recompiled_plan_after_a_weight_swap_matches_the_swapped_model() {
    // The serving engine recompiles plans on hot-swap; the contract is that
    // a plan compiled from new weights matches the new model, not the old.
    let old = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
    let new = build_mars_cnn(&ModelConfig::tiny(), 99).unwrap();
    let mut old_plan = LoweringRequest::new(&old, &[5, 8, 8]).lower().unwrap().compile(2).unwrap();
    let mut new_plan = LoweringRequest::new(&new, &[5, 8, 8]).lower().unwrap().compile(2).unwrap();
    let input = Tensor::randn(&[2, 5, 8, 8], 1.0, 31);
    let mut new_model = new.clone();
    let expected = new_model.forward(&input, false).unwrap();
    assert_eq!(new_plan.run(input.as_slice(), 2).unwrap(), expected.as_slice());
    assert_ne!(
        old_plan.run(input.as_slice(), 2).unwrap(),
        expected.as_slice(),
        "differently-seeded weights must actually change the output"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random weights, random inputs, random hidden width: the compiled plan
    /// tracks the legacy pipeline bit-for-bit on both kernel backends.
    #[test]
    fn compiled_plan_is_bit_identical_for_random_models(
        seed in 0u64..1_000_000,
        hidden in 1usize..24,
        batch in 1usize..5,
    ) {
        let model = Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(2, 3, 3), seed).unwrap()),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(3 * 4 * 4, hidden, seed + 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(hidden, 5, seed + 2).unwrap()),
        ]);
        let mut plan =
            LoweringRequest::new(&model, &[2, 4, 4]).lower().unwrap().compile(4).unwrap();
        let mut legacy = model.clone();
        let input = Tensor::randn(&[batch, 2, 4, 4], 1.0, seed + 3);
        let expected = legacy.forward(&input, false).unwrap();
        for backend in [BackendChoice::Scalar, BackendChoice::Simd] {
            let out = with_backend(backend, || {
                plan.run(input.as_slice(), batch).map(<[f32]>::to_vec)
            }).unwrap();
            prop_assert_eq!(out.as_slice(), expected.as_slice(), "backend {:?} diverged", backend);
        }
    }
}
