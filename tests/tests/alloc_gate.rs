//! CI gate for the zero-allocation contract of `fuse_graph::ExecPlan::run`.
//!
//! A counting wrapper around the system allocator proves that once a plan is
//! compiled and warmed, steady-state serial execution performs **zero** heap
//! allocations: every intermediate buffer was pre-planned into the plan's
//! bump arena at compile time.
//!
//! The gate pins `FUSE_THREADS=1` via [`fuse_parallel::with_threads`]: the
//! zero-alloc contract covers the serial path (parallel dispatch may box its
//! per-band tasks, which is documented in `REPRODUCIBILITY.md`). This test
//! lives in its own integration-test binary because a `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts every allocation call.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_plan_run_makes_zero_heap_allocations() {
    use fuse_core::{build_mars_cnn, ModelConfig};
    use fuse_nn::LoweringRequest;
    use fuse_tensor::Tensor;

    let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
    let mut plan = LoweringRequest::new(&model, &[5, 8, 8]).lower().unwrap().compile(4).unwrap();
    let input = Tensor::randn(&[4, 5, 8, 8], 1.0, 9);

    fuse_parallel::with_threads(1, || {
        // Warm-up: the first run may lazily initialise thread-locals or
        // backend state; the contract is about steady state.
        let warm = plan.run(input.as_slice(), 4).unwrap().to_vec();

        let before = allocation_count();
        let out = plan.run(input.as_slice(), 4).unwrap();
        assert_eq!(out.len(), 4 * 57);
        let after = allocation_count();
        assert_eq!(
            after - before,
            0,
            "steady-state ExecPlan::run must not touch the heap (got {} allocations)",
            after - before
        );

        // And it still computes the same thing it did while warming up.
        assert_eq!(plan.run(input.as_slice(), 4).unwrap(), warm.as_slice());
    });
}

#[test]
fn smaller_batches_reuse_the_same_arena_without_allocating() {
    use fuse_core::{build_mars_cnn, ModelConfig};
    use fuse_nn::LoweringRequest;
    use fuse_tensor::Tensor;

    let model = build_mars_cnn(&ModelConfig::tiny(), 11).unwrap();
    let mut plan = LoweringRequest::new(&model, &[5, 8, 8]).lower().unwrap().compile(8).unwrap();
    let input = Tensor::randn(&[8, 5, 8, 8], 1.0, 13);

    fuse_parallel::with_threads(1, || {
        plan.run(input.as_slice(), 8).unwrap();
        let before = allocation_count();
        for batch in [1usize, 3, 8, 2] {
            let out = plan.run(&input.as_slice()[..batch * 5 * 8 * 8], batch).unwrap();
            assert_eq!(out.len(), batch * 57);
        }
        assert_eq!(
            allocation_count() - before,
            0,
            "batch-size changes below max_batch must not reallocate"
        );
    });
}
