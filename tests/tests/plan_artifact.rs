//! `.fplan` artifact round-trip, corruption handling and format stability.
//!
//! The plan artifact is the deployment contract of the compiler: a compiled
//! [`fuse_graph::ExecPlan`] serialized with [`fuse_graph::ExecPlan::to_bytes`]
//! must reload through the thin [`fuse_edge::EdgeSession`] runtime — no
//! `fuse-nn`, no lowering — and produce **bit-identical** outputs on every
//! kernel backend × thread-count leg of the CI matrix. Corrupt, truncated,
//! wrong-version or tampered artifacts must surface as *typed*
//! [`fuse_graph::GraphError`] values, never panics. And the byte format
//! itself is pinned by a committed golden fixture: an artifact written by an
//! earlier build of the same format version keeps loading.

use fuse_backend::{with_backend, BackendChoice};
use fuse_core::{build_pooled_mars_cnn, ModelConfig};
use fuse_edge::EdgeSession;
use fuse_graph::{ExecPlan, Graph, GraphError, TensorMeta, FPLAN_MIN_VERSION, FPLAN_VERSION};
use fuse_nn::{LoweringRequest, Sequential};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_serve::{ServeConfig, ServeEngine};
use fuse_tensor::{Conv2dSpec, Tensor};
use fuse_tests::golden::{goldens_dir, update_requested};

/// Runs `f` under every backend × thread-count leg of the CI matrix (scalar
/// and SIMD kernels, serial and forced-parallel dispatch) inside one process.
fn for_each_matrix_leg(f: impl Fn()) {
    for backend in [BackendChoice::Scalar, BackendChoice::Simd] {
        with_threads(1, || with_backend(backend, &f));
        with_threads(4, || with_min_parallel_work(0, || with_backend(backend, &f)));
    }
}

fn pooled_model(seed: u64) -> Sequential {
    build_pooled_mars_cnn(&ModelConfig::tiny(), 2, seed).unwrap()
}

fn pooled_plan(max_batch: usize) -> ExecPlan {
    LoweringRequest::new(&pooled_model(7), &[5, 8, 8]).lower().unwrap().compile(max_batch).unwrap()
}

#[test]
fn pooled_mars_cnn_compiles_to_a_plan_with_no_fallback() {
    // Max pooling lowers like any other op: the pooled MARS topology must
    // reach a compiled plan, not the metered legacy-walk fallback.
    let engine = ServeEngine::new(pooled_model(7), ServeConfig::default()).unwrap();
    let plan = engine.plan().expect("the pooled MARS CNN must compile to a plan");
    assert!(engine.fallback_reason().is_none(), "no fallback reason may be recorded");
    assert_eq!(engine.recorder().legacy_fallback_frames(), 0);
    // The pooling stage halves each spatial dim, so the flattened FC input
    // shrinks 4x while the output head stays at 57 joints-coordinates.
    assert_eq!(plan.output_meta().dims(), &[57]);
}

#[test]
fn fplan_round_trips_through_fuse_edge_bit_identically_on_every_matrix_leg() {
    let max_batch = 3usize;
    let bytes = pooled_plan(max_batch).to_bytes();
    let sample_len: usize = 5 * 8 * 8;
    for_each_matrix_leg(|| {
        let mut session = EdgeSession::from_bytes(&bytes).unwrap();
        let mut plan = pooled_plan(max_batch);
        let mut legacy = pooled_model(7);
        for batch in 1..=max_batch {
            let input = Tensor::randn(&[batch, 5, 8, 8], 1.0, 300 + batch as u64);
            let expected = legacy.forward(&input, false).unwrap();
            assert_eq!(
                plan.run(&input.as_slice()[..batch * sample_len], batch).unwrap(),
                expected.as_slice(),
                "in-memory plan diverged from the legacy walk at batch {batch}"
            );
            assert_eq!(
                session.infer(&input.as_slice()[..batch * sample_len], batch).unwrap(),
                expected.as_slice(),
                "reloaded artifact diverged from the legacy walk at batch {batch}"
            );
        }
    });
}

#[test]
fn exported_engine_artifact_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("fuse_plan_artifact_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pooled.fplan");
    let engine = ServeEngine::new(pooled_model(7), ServeConfig::default()).unwrap();
    engine.export_plan(&path).unwrap();
    let mut session = EdgeSession::load(&path).unwrap();
    let input = Tensor::randn(&[1, 5, 8, 8], 1.0, 400);
    let expected = pooled_model(7).forward(&input, false).unwrap();
    assert_eq!(session.infer(input.as_slice(), 1).unwrap(), expected.as_slice());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_artifacts_yield_typed_errors() {
    let bytes = pooled_plan(2).to_bytes();

    // Wrong magic: the file is simply not a plan artifact.
    let mut bad_magic = bytes.clone();
    bad_magic[..4].copy_from_slice(b"JSON");
    assert!(matches!(
        ExecPlan::from_bytes(&bad_magic),
        Err(GraphError::BadMagic { found }) if &found == b"JSON"
    ));

    // A future format version must be refused, not misparsed.
    let mut bumped = bytes.clone();
    bumped[4..8].copy_from_slice(&(FPLAN_VERSION + 1).to_le_bytes());
    assert!(matches!(
        ExecPlan::from_bytes(&bumped),
        Err(GraphError::UnsupportedVersion { found, supported })
            if found == FPLAN_VERSION + 1 && supported == FPLAN_VERSION
    ));

    // A flipped payload byte is caught by the checksum before decoding.
    let mut flipped = bytes.clone();
    let mid = bytes.len() / 2;
    flipped[mid] ^= 0xff;
    assert!(matches!(ExecPlan::from_bytes(&flipped), Err(GraphError::ChecksumMismatch { .. })));

    // A flipped checksum byte likewise.
    let mut bad_sum = bytes.clone();
    let last = bytes.len() - 1;
    bad_sum[last] ^= 0xff;
    assert!(matches!(ExecPlan::from_bytes(&bad_sum), Err(GraphError::ChecksumMismatch { .. })));

    // Truncation anywhere — inside the header, the payload or the checksum
    // trailer — is a typed error, never a panic.
    for cut in [0, 3, 8, 15, 16, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
        assert!(
            matches!(ExecPlan::from_bytes(&bytes[..cut]), Err(GraphError::Truncated { .. })),
            "cut at {cut} bytes must report truncation"
        );
    }

    // Trailing garbage after the checksum means the length field lies.
    let mut extended = bytes.clone();
    extended.extend_from_slice(b"tail");
    assert!(matches!(ExecPlan::from_bytes(&extended), Err(GraphError::Malformed(_))));

    // The reloadable original still loads after all that slicing.
    assert!(ExecPlan::from_bytes(&bytes).is_ok());
}

/// Rebuilds a complete artifact around `payload`, re-stamping the length
/// field and FNV-1a-64 checksum so payload-level corruptions reach the
/// decoder instead of tripping the checksum gate first.
fn reassemble(payload: &[u8], version: u32) -> Vec<u8> {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(b"FPLN");
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&hash.to_le_bytes());
    out
}

#[test]
fn corrupted_quantized_artifacts_yield_typed_errors() {
    let bytes = pooled_plan(2).quantize().unwrap().to_bytes();
    let payload = &bytes[16..bytes.len() - 8];

    // Cutting into the trailing int8 weight/scale tables and re-stamping the
    // checksum must surface as typed truncation from the decoder itself.
    for cut in [1usize, 3, 8] {
        let short = reassemble(&payload[..payload.len() - cut], FPLAN_VERSION);
        assert!(
            matches!(ExecPlan::from_bytes(&short), Err(GraphError::Truncated { .. })),
            "cutting {cut} bytes of the quantized tables must report truncation"
        );
    }

    // A v2 payload carrying quantized step tags cannot be passed off as v1.
    let downgraded = reassemble(payload, 1);
    assert!(matches!(ExecPlan::from_bytes(&downgraded), Err(GraphError::Malformed(_))));

    // Version bytes outside the supported window are refused in both
    // directions: v0 predates the format, FPLAN_VERSION + 1 postdates it.
    for bad in [FPLAN_MIN_VERSION - 1, FPLAN_VERSION + 1] {
        let stamped = reassemble(payload, bad);
        assert!(matches!(
            ExecPlan::from_bytes(&stamped),
            Err(GraphError::UnsupportedVersion { found, supported })
                if found == bad && supported == FPLAN_VERSION
        ));
    }

    // The untouched artifact still loads and is quantized.
    assert!(ExecPlan::from_bytes(&bytes).unwrap().is_quantized());
}

/// The deterministic miniature plan behind the committed `tiny.fplan`
/// fixture: conv → ReLU → max-pool → flatten → linear, all seeds fixed.
fn fixture_plan() -> ExecPlan {
    let cw = Tensor::randn(&[3, 2, 3, 3], 0.5, 501);
    let cb = Tensor::randn(&[3], 0.1, 502);
    let w = Tensor::randn(&[5, 12], 0.2, 503);
    let b = Tensor::randn(&[5], 0.1, 504);
    let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
    g.push_conv2d("conv", Conv2dSpec::same(2, 3, 3), cw.as_slice(), cb.as_slice()).unwrap();
    g.push_relu("relu").unwrap();
    g.push_maxpool2d("pool", 2).unwrap();
    g.push_flatten("flatten").unwrap();
    g.push_linear("fc", 12, 5, w.as_slice(), b.as_slice()).unwrap();
    g.compile(2).unwrap()
}

#[test]
fn committed_fplan_fixture_stays_loadable_and_byte_stable() {
    // The golden fixture gates byte stability of the current format: an
    // artifact written by an earlier build of the same `FPLAN_VERSION` must
    // keep loading byte-for-byte. If the encoding changes, `FPLAN_VERSION`
    // must be bumped and the fixture regenerated with `UPDATE_GOLDENS=1`
    // (committing the previous fixture as `tiny_v<N>.fplan` to keep the
    // backward-compatibility gate below honest).
    let path = goldens_dir().join("tiny.fplan");
    let bytes = fixture_plan().to_bytes();
    if update_requested() {
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("updated golden {}", path.display());
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing committed fixture {} ({e}); regenerate with UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        committed, bytes,
        "the .fplan encoding drifted from the committed fixture; an intentional \
         format change requires a FPLAN_VERSION bump and UPDATE_GOLDENS=1"
    );

    // The committed bytes still load through the edge runtime and serve the
    // same outputs as a freshly compiled plan.
    let mut session = EdgeSession::load(&path).unwrap();
    assert_eq!(session.max_batch(), 2);
    assert_eq!(session.input_meta().dims(), &[2, 4, 4]);
    let mut fresh = fixture_plan();
    for batch in 1..=2usize {
        let input = Tensor::randn(&[batch, 2, 4, 4], 1.0, 510 + batch as u64);
        assert_eq!(
            session.infer(input.as_slice(), batch).unwrap(),
            fresh.run(input.as_slice(), batch).unwrap(),
            "committed artifact diverged from a fresh compile at batch {batch}"
        );
    }
}

#[test]
fn committed_v1_fixture_still_loads_under_the_v2_reader() {
    // Backward compatibility is normative: artifacts written by v1 builds
    // (before the quantized-weight sections) must keep decoding and serving
    // bit-identically under every newer reader. `tiny_v1.fplan` is the
    // byte-frozen v1 predecessor of `tiny.fplan` — never regenerate it.
    let path = goldens_dir().join("tiny_v1.fplan");
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing frozen v1 fixture {} ({e})", path.display()));
    assert_eq!(u32::from_le_bytes(committed[4..8].try_into().unwrap()), 1, "fixture must be v1");

    let mut session = EdgeSession::from_bytes(&committed).unwrap();
    assert!(!session.is_quantized(), "v1 artifacts predate quantized sections");
    let mut fresh = fixture_plan();
    for batch in 1..=2usize {
        let input = Tensor::randn(&[batch, 2, 4, 4], 1.0, 510 + batch as u64);
        assert_eq!(
            session.infer(input.as_slice(), batch).unwrap(),
            fresh.run(input.as_slice(), batch).unwrap(),
            "v1 artifact diverged from a fresh compile at batch {batch}"
        );
    }
}
