//! Dropout / variable-cadence streaming determinism (tentpole acceptance).
//!
//! Fixed-cadence streams are pinned by `golden_trace.rs`; this suite pins
//! the *lossy* path: a producer that skips cadence slots (`tick`) between
//! frames. The contract under test:
//!
//! * a given submit/tick pattern produces a bit-exact response stream,
//!   committed as the `serve_dropout_stream` golden;
//! * that stream is identical through the cluster router for any
//!   `FUSE_THREADS` × `FUSE_SHARDS` point;
//! * migrating the session to a remote shard *mid-dropout* — while the
//!   delay line carries empty slots — over a flaky simulated link changes
//!   nothing, byte for byte (the wire codec carries the full op state);
//! * the incrementally maintained fused buffer matches the from-scratch
//!   re-fuse oracle at every step of the pattern.
//!
//! Regenerate after an intentional numeric change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p fuse-tests --test streaming_dropout
//! ```

use std::thread::{self, JoinHandle};

use serde::{Deserialize, Serialize};

use fuse_backend::{with_backend, BackendChoice};
use fuse_cluster::{ClusterConfig, ClusterRouter, HostShard, ShardSpec};
use fuse_core::prelude::*;
use fuse_net::{sim_pair, FaultConfig, FaultHandle, SimTransport};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_serve::{ServeConfig, ServeEngine, Session, SessionConfig};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tests::golden::check_or_update;

/// One slot of the lossy cadence: either a frame arrives or the producer
/// reports the slot missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Frame,
    Missing,
}

use Slot::{Frame, Missing};

/// The pinned cadence pattern: bursts of consecutive dropouts (so the
/// window actually drains), isolated drops, and stretches of clean frames.
/// Eight frames spread across fourteen cadence slots.
const CADENCE: [Slot; 14] = [
    Frame, Frame, Missing, Frame, Missing, Missing, Frame, Frame, Frame, Missing, Frame, Missing,
    Missing, Frame,
];

/// A radar scene for frame `i` of a fixed animated movement sequence (same
/// recipe as the committed `serve_session_stream` golden).
fn scene_for_frame(
    samples: &[(fuse_skeleton::Skeleton, [[f32; 3]; fuse_skeleton::JOINT_COUNT])],
    i: usize,
) -> Scene {
    let (skeleton, velocities) = &samples[i];
    body_surface_points(skeleton, velocities, 3)
        .iter()
        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
        .collect()
}

/// The frames delivered on the `Frame` slots of [`CADENCE`].
fn dropout_frames() -> Vec<PointCloudFrame> {
    let n = CADENCE.iter().filter(|s| **s == Frame).count();
    let animator =
        MovementAnimator::new(Subject::profile(1), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(4);
    let samples = animator.sample_frames_with_velocities(0.0, n);
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..n).map(|i| scatter.sample(&scene_for_frame(&samples, i), i as u64)).collect()
}

fn golden_model() -> fuse_nn::Sequential {
    build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds")
}

/// Renders a session's delay-line occupancy as e.g. `"101"` (oldest →
/// newest, `1` = slot holds a frame).
fn mask_string(session: &Session) -> String {
    session.slot_mask().iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Everything the lossy path must keep bit-stable, one entry per cadence
/// slot: how the window drained and refilled, and the exact logits of every
/// served frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DropoutStreamTrace {
    cadence: String,
    points_per_frame: Vec<usize>,
    fused_counts: Vec<usize>,
    slot_masks: Vec<String>,
    feature_maps_built: u64,
    slots_skipped: u64,
    responses: Vec<Vec<f32>>,
}

/// Replays [`CADENCE`] against a bare engine, cross-checking the
/// incremental fused buffer against the re-fuse oracle at every slot.
fn engine_dropout_trace() -> DropoutStreamTrace {
    let frames = dropout_frames();
    let mut engine =
        ServeEngine::new(golden_model(), ServeConfig::default()).expect("engine builds");
    engine.open_session(SessionConfig::new(0)).expect("session opens");

    let mut trace = DropoutStreamTrace {
        cadence: CADENCE.iter().map(|s| if *s == Frame { 'F' } else { '.' }).collect(),
        points_per_frame: frames.iter().map(|f| f.len()).collect(),
        fused_counts: Vec::new(),
        slot_masks: Vec::new(),
        feature_maps_built: 0,
        slots_skipped: 0,
        responses: Vec::new(),
    };
    let mut next_frame = 0usize;
    for slot in CADENCE {
        match slot {
            Frame => {
                engine.submit(0, frames[next_frame].clone()).expect("submit succeeds");
                next_frame += 1;
                assert_eq!(engine.step().expect("step succeeds"), 1);
                trace.responses.push(engine.take_responses().remove(0).joints);
            }
            Missing => engine.tick(0).expect("tick succeeds"),
        }
        let session = engine.session(0).expect("session open");
        assert_eq!(
            session.fused_points(),
            session.fused_points_recomputed().as_slice(),
            "incremental fused buffer diverged from the re-fuse oracle"
        );
        trace.fused_counts.push(session.fused_points().len());
        trace.slot_masks.push(mask_string(session));
    }
    let session = engine.session(0).expect("session open");
    let (built, skipped) = session.featurize_counters();
    trace.feature_maps_built = built;
    trace.slots_skipped = skipped;
    trace
}

#[test]
fn dropout_stream_matches_golden() {
    check_or_update("serve_dropout_stream", &engine_dropout_trace());
}

/// The same cadence through the cluster router: every `FUSE_THREADS` ×
/// `FUSE_SHARDS` point must serve the bare engine's bits.
#[test]
fn dropout_stream_is_bit_identical_across_threads_and_shards() {
    let run_cluster = |shards: usize| -> Vec<Vec<f32>> {
        let frames = dropout_frames();
        let config = ClusterConfig { shards, ..ClusterConfig::default() };
        let mut router = ClusterRouter::new(golden_model(), config).expect("router builds");
        router.open_session(SessionConfig::new(0)).expect("session opens");
        let mut responses = Vec::new();
        let mut next_frame = 0usize;
        for slot in CADENCE {
            match slot {
                Frame => {
                    router.submit(0, frames[next_frame].clone()).expect("submit succeeds");
                    next_frame += 1;
                    let report = router.drain().expect("drain succeeds");
                    responses.extend(report.responses.into_iter().map(|r| r.joints));
                }
                Missing => router.tick(0).expect("tick succeeds"),
            }
        }
        router.shutdown();
        responses
    };

    let reference = engine_dropout_trace().responses;
    for threads in [1usize, 4] {
        for shards in [1usize, 4] {
            let responses =
                with_threads(threads, || with_min_parallel_work(0, || run_cluster(shards)));
            assert_eq!(
                responses, reference,
                "FUSE_THREADS={threads} FUSE_SHARDS={shards} diverged from the dropout stream"
            );
        }
    }
}

/// Spawns a [`HostShard`] serving on `transport`, re-installing the calling
/// thread's kernel overrides (thread-local) on the host thread.
fn spawn_host(config: ClusterConfig, transport: SimTransport) -> JoinHandle<()> {
    let threads = fuse_parallel::available_threads();
    let min_work = fuse_parallel::min_parallel_work();
    let backend = fuse_backend::active_choice();
    thread::Builder::new()
        .name("dropout-test-host".into())
        .spawn(move || {
            with_threads(threads, || {
                with_min_parallel_work(min_work, || {
                    with_backend(backend, || {
                        HostShard::new(golden_model(), config)
                            .expect("host shard builds")
                            .serve(transport)
                            .expect("host exits cleanly");
                    })
                })
            })
        })
        .expect("host thread spawns")
}

fn assert_faults_fired(handles: &[&FaultHandle], context: &str) {
    let (mut dropped, mut duplicated, mut reordered) = (0, 0, 0);
    for handle in handles {
        let stats = handle.snapshot();
        dropped += stats.dropped;
        duplicated += stats.duplicated;
        reordered += stats.reordered;
    }
    assert!(
        dropped > 0 && duplicated > 0 && reordered > 0,
        "{context}: the sim link must exercise every fault class \
         (dropped={dropped} duplicated={duplicated} reordered={reordered})"
    );
}

/// Migration *mid-dropout*: the session moves to a remote shard over a
/// flaky link right after a missed slot, while the delay line carries empty
/// slots — the exported op state (delay-line occupancy, tick counters, the
/// fused buffer's source frames) must survive the wire codec so the rest of
/// the stream is byte-identical to never migrating.
#[test]
fn migration_mid_dropout_is_bit_identical_over_a_flaky_link() {
    // Slot 5 is the second Missing of the first dropout burst — the
    // nastiest point to move: the mask is neither full nor empty and the
    // tick counters are ahead of the frame counter.
    const MIGRATE_AT: usize = 5;
    assert_eq!(CADENCE[MIGRATE_AT], Missing, "the migration slot must sit inside a dropout burst");

    let run = || -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let reference = engine_dropout_trace().responses;

        let frames = dropout_frames();
        let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
        let (router_end, host_end) = sim_pair(FaultConfig::flaky(101), FaultConfig::flaky(202));
        let router_faults = router_end.fault_handle();
        let host_faults = host_end.fault_handle();
        let host = spawn_host(config.clone(), host_end);
        let mut router = ClusterRouter::with_shards(
            golden_model(),
            config,
            vec![ShardSpec::Local, ShardSpec::Remote(Box::new(router_end))],
        )
        .expect("router builds");
        router.open_session(SessionConfig::new(0)).expect("session opens");
        assert_eq!(router.shard_of(0), 0, "session 0 starts on the local shard");

        let mut migrated = Vec::new();
        let mut next_frame = 0usize;
        for (i, slot) in CADENCE.into_iter().enumerate() {
            match slot {
                Frame => {
                    router.submit(0, frames[next_frame].clone()).expect("submit succeeds");
                    next_frame += 1;
                    let report = router.drain().expect("drain succeeds");
                    migrated.extend(report.responses.into_iter().map(|r| r.joints));
                }
                Missing => router.tick(0).expect("tick succeeds"),
            }
            if i == MIGRATE_AT {
                router.migrate_session(0, 1).expect("migration succeeds");
                assert_eq!(router.shard_of(0), 1, "routing follows the migration");
            }
        }
        router.shutdown();
        host.join().expect("host thread joins");
        assert_faults_fired(&[&router_faults, &host_faults], "mid-dropout migration");
        (migrated, reference)
    };

    let (scalar_migrated, scalar_reference) =
        with_threads(1, || with_backend(BackendChoice::Scalar, run));
    assert_eq!(
        scalar_migrated, scalar_reference,
        "scalar leg: migrating mid-dropout must not change a single output byte"
    );

    let (simd_migrated, simd_reference) = with_threads(4, || {
        with_min_parallel_work(0, || with_backend(BackendChoice::Simd, run))
    });
    assert_eq!(
        simd_migrated, simd_reference,
        "simd leg: migrating mid-dropout must not change a single output byte"
    );
}
