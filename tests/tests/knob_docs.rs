//! The README environment-knob reference is generated, not hand-written.
//!
//! Every crate that parses a `FUSE_*` knob exports a typed
//! [`fuse_parallel::env::KnobDef`] registry next to its parser; this test
//! renders the same table `README.md` embeds and asserts it appears there
//! verbatim between the `knob-table` markers. Adding, renaming or retuning a
//! knob without regenerating the docs fails CI — the reference cannot drift
//! from the definitions.

use fuse_parallel::env::{render_knob_table, PARALLEL_KNOBS};

const BEGIN_MARKER: &str = "<!-- knob-table:begin";
const END_MARKER: &str = "<!-- knob-table:end -->";

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../README.md");
    std::fs::read_to_string(path).expect("README.md must exist at the workspace root")
}

fn rendered_reference() -> String {
    render_knob_table(&[
        PARALLEL_KNOBS,
        fuse_backend::BACKEND_KNOBS,
        fuse_cluster::CLUSTER_KNOBS,
        fuse_examples::EXAMPLE_KNOBS,
    ])
}

#[test]
fn readme_knob_table_matches_the_typed_definitions() {
    let readme = readme();
    let begin = readme.find(BEGIN_MARKER).expect("README must carry the knob-table:begin marker");
    let end = readme.find(END_MARKER).expect("README must carry the knob-table:end marker");
    assert!(begin < end, "markers out of order");
    // The generated block sits between the end of the begin-marker line and
    // the end marker.
    let after_begin = begin + readme[begin..].find('\n').expect("marker line ends") + 1;
    let embedded = &readme[after_begin..end];
    let expected = rendered_reference();
    assert_eq!(
        embedded, expected,
        "README knob table drifted from the typed KnobDef registries; \
         paste the following between the knob-table markers:\n{expected}"
    );
}

#[test]
fn every_registry_contributes_and_no_knob_repeats() {
    let table = rendered_reference();
    let expected_names = [
        "FUSE_THREADS",
        "FUSE_PAR_MIN_WORK",
        "FUSE_BACKEND",
        "FUSE_SHARDS",
        "FUSE_ADAPTIVE",
        "FUSE_SLO_DEFAULT",
        "FUSE_EDGE_FRAMES",
        "FUSE_SESSIONS",
        "FUSE_QUANT_FRAMES",
    ];
    for name in expected_names {
        assert_eq!(
            table.matches(&format!("| `{name}` |")).count(),
            1,
            "{name} must appear exactly once in the generated table"
        );
    }
    assert_eq!(
        table.lines().count(),
        2 + expected_names.len(),
        "unexpected knob row count — update this test and the README when adding knobs"
    );
}
