//! Cross-crate property-based tests: invariants that must hold across the
//! dataset pipeline and the pre-processing for *any* reasonable input.

use fuse_dataset::{
    encode_dataset, per_movement_split, FeatureMapBuilder, FrameFusion, MarsSynthesizer,
    SplitRatios, SynthesisConfig,
};
use fuse_radar::{FastScatterModel, RadarConfig, RadarPoint, Scatterer, Scene};
use fuse_skeleton::{Movement, Subject};
use proptest::prelude::*;

fn arbitrary_points(max: usize) -> impl Strategy<Value = Vec<RadarPoint>> {
    prop::collection::vec(
        (-2.0f32..2.0, 0.5f32..4.0, -0.5f32..2.2, -3.0f32..3.0, 0.0f32..10.0)
            .prop_map(|(x, y, z, d, i)| RadarPoint::new(x, y, z, d, i)),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The feature map always has the CNN input shape and finite values,
    /// regardless of how many points the (fused) frame contains.
    #[test]
    fn feature_maps_always_have_cnn_shape(points in arbitrary_points(400)) {
        let builder = FeatureMapBuilder::default();
        let tensor = builder.build(&points, None).unwrap();
        prop_assert_eq!(tensor.dims(), &[5, 8, 8]);
        prop_assert!(tensor.as_slice().iter().all(|v| v.is_finite()));
        // No slot carries higher intensity than the strongest input point.
        let max_in = points.iter().map(|p| p.intensity).fold(0.0f32, f32::max);
        let max_slot = tensor.as_slice()[4 * 64..5 * 64].iter().cloned().fold(0.0f32, f32::max);
        prop_assert!(max_slot <= max_in + 1e-5);
    }

    /// Fusing more frames never yields fewer points, and the fused set is the
    /// concatenation of the member frames (order-insensitive count check).
    #[test]
    fn fusion_point_counts_are_monotonic(seed in 0u64..500) {
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
        let scene: Scene = (0..20)
            .map(|i| Scatterer::new([0.0, 2.0, 0.1 * i as f32], [0.0, 0.1, 0.0], 1.0))
            .collect();
        let frames: Vec<_> = (0..7).map(|i| model.sample(&scene, seed.wrapping_add(i))).collect();
        let k = 3;
        let mut previous = 0usize;
        for m in 0..3usize {
            let fused = FrameFusion::new(m).fused_points_owned(&frames, k);
            prop_assert!(fused.len() >= previous);
            previous = fused.len();
        }
        let expected: usize = (2..=4).map(|i: usize| frames[i].len()).sum();
        prop_assert_eq!(FrameFusion::new(1).fused_points_owned(&frames, k).len(), expected);
    }

    /// The fast scatter model never produces points wildly outside the scene
    /// volume (beyond the documented ghost-point box) and keeps Doppler
    /// within the radar's unambiguous range.
    #[test]
    fn fast_scatter_points_stay_physical(seed in 0u64..300) {
        let config = RadarConfig::iwr1443_indoor();
        let model = FastScatterModel::new(config);
        let scene: Scene = (0..25)
            .map(|i| Scatterer::new([0.1 * (i % 5) as f32, 2.0, 0.08 * i as f32], [0.0, 0.5, 0.0], 1.0))
            .collect();
        let frame = model.sample(&scene, seed);
        prop_assert!(!frame.is_empty());
        for p in &frame.points {
            prop_assert!(p.y > 0.0 && p.y < 5.0, "depth {} out of range", p.y);
            prop_assert!(p.z > -1.5 && p.z < 3.5, "height {} out of range", p.z);
            prop_assert!(p.intensity >= 0.0);
            prop_assert!(p.doppler.abs() < 2.0 * config.max_velocity_mps() as f32);
        }
    }
}

#[test]
fn per_movement_split_never_leaks_frames_between_partitions() {
    let config = SynthesisConfig {
        subjects: vec![0, 2],
        movements: vec![Movement::Squat, Movement::LeftFrontLunge],
        frames_per_sequence: 35,
        ..SynthesisConfig::quick()
    };
    let dataset = MarsSynthesizer::new(config).generate().unwrap();
    let split = per_movement_split(&dataset, SplitRatios::default_60_20_20()).unwrap();
    // Every frame lands in exactly one partition.
    assert_eq!(split.total_len(), dataset.len());
    let key = |f: &fuse_dataset::LabeledFrame| (f.subject_id, f.movement.index(), f.sequence_index);
    let mut seen = std::collections::HashSet::new();
    for frame in split.train.iter().chain(split.validation.iter()).chain(split.test.iter()) {
        assert!(seen.insert(key(frame)), "frame {:?} appears in two partitions", key(frame));
    }
}

#[test]
fn encoded_labels_match_skeleton_scale_across_subjects() {
    // Labels must stay in metres and track the subject's height so that MAE
    // in centimetres is meaningful.
    let config = SynthesisConfig {
        subjects: vec![0, 3],
        movements: vec![Movement::Squat],
        frames_per_sequence: 20,
        ..SynthesisConfig::quick()
    };
    let dataset = MarsSynthesizer::new(config).generate().unwrap();
    let encoded =
        encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap();
    for sample in encoded.samples() {
        let heights: Vec<f32> = (0..19).map(|j| sample.label[j * 3 + 2]).collect();
        let max_height = heights.iter().cloned().fold(f32::MIN, f32::max);
        let subject = Subject::profile(sample.subject_id);
        assert!(
            max_height > 0.6 * subject.height_m && max_height < 1.1 * subject.height_m,
            "head height {max_height} implausible for subject of height {}",
            subject.height_m
        );
    }
}
