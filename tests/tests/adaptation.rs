//! Integration tests of the §4.3 adaptation experiments at reduced scale:
//! meta-training, leave-one-out splitting, online fine-tuning, and the
//! qualitative claims of Figures 3–4 (FUSE adapts; the baseline forgets).

use fuse_core::experiments::adaptation;
use fuse_core::experiments::profile::ExperimentProfile;
use fuse_core::finetune::FineTuneScope;
use fuse_core::MetaConfig;
use fuse_dataset::SynthesisConfig;
use fuse_skeleton::Movement;

/// A reduced profile: four subjects, four movements, enough frames for the
/// leave-one-out split to have meaningful training and online partitions,
/// but small enough that the test runs in well under a minute.
fn reduced_profile() -> ExperimentProfile {
    let mut profile = ExperimentProfile::bench();
    profile.name = "integration".into();
    profile.synthesis = SynthesisConfig {
        subjects: vec![0, 1, 2, 3],
        movements: vec![
            Movement::Squat,
            Movement::LeftUpperLimbExtension,
            Movement::RightUpperLimbExtension,
            Movement::RightLimbExtension,
        ],
        frames_per_sequence: 50,
        ..SynthesisConfig::quick()
    };
    profile.trainer.epochs = 12;
    profile.meta = MetaConfig {
        meta_iterations: 60,
        tasks_per_iteration: 4,
        support_size: 32,
        query_size: 32,
        ..MetaConfig::quick(60)
    };
    profile.finetune_epochs = 12;
    profile.finetune_frames = 15;
    profile.original_eval_cap = 150;
    profile.validate().expect("reduced profile is valid");
    profile
}

#[test]
fn adaptation_experiment_reproduces_the_papers_qualitative_claims() {
    let profile = reduced_profile();
    let context = adaptation::prepare(&profile).expect("preparation succeeds");

    // Neither the held-out subject nor the held-out movement (and therefore
    // not their combination) appears in the offline training data.
    assert!(context
        .train
        .samples()
        .iter()
        .all(|s| s.subject_id != 3 && s.movement != Movement::RightLimbExtension));
    // The online data is exactly the held-out combination.
    assert!(context
        .new_eval
        .samples()
        .iter()
        .chain(context.finetune.samples())
        .all(|s| s.subject_id == 3 && s.movement == Movement::RightLimbExtension));
    assert_eq!(context.finetune.len(), profile.finetune_frames);

    let result = adaptation::run_scope(&context, &profile, FineTuneScope::AllLayers)
        .expect("adaptation run succeeds");

    // Claim 1 (Figure 3b): fine-tuning improves FUSE's error on the new data.
    let fuse_initial = result.fuse.new_error_at(0).average_cm();
    let fuse_final = result.fuse.new_error_at(result.fuse.epochs()).average_cm();
    assert!(
        fuse_final < fuse_initial,
        "FUSE did not adapt to the new data: {fuse_initial:.1} cm -> {fuse_final:.1} cm"
    );

    // Claim 2 (Figure 3a): the supervised baseline starts better on the
    // original data than the generalisation-oriented FUSE model.
    let baseline_orig_initial = result.baseline.original_error_at(0).average_cm();
    let fuse_orig_initial = result.fuse.original_error_at(0).average_cm();
    assert!(
        baseline_orig_initial < fuse_orig_initial * 1.2,
        "baseline should start at least comparable on original data: baseline {baseline_orig_initial:.1} cm, FUSE {fuse_orig_initial:.1} cm"
    );

    // Claim 3 (forgetting): adapting the baseline to the new data costs it
    // accuracy on the original data, and that degradation is larger than
    // whatever degradation FUSE suffers.
    let baseline_forgetting =
        result.baseline.original_error_at(result.baseline.epochs()).average_cm()
            - baseline_orig_initial;
    let fuse_forgetting =
        result.fuse.original_error_at(result.fuse.epochs()).average_cm() - fuse_orig_initial;
    assert!(
        baseline_forgetting > fuse_forgetting - 0.5,
        "baseline should forget at least as much as FUSE: baseline {baseline_forgetting:+.1} cm, FUSE {fuse_forgetting:+.1} cm"
    );

    // The rendered series and CSV export work end to end.
    let rendered = result.render_series("integration test series");
    assert!(rendered.lines().count() >= result.fuse.epochs() + 3);
    let path = result.write_csv("integration_adaptation").expect("csv written");
    assert!(path.exists());
    std::fs::remove_file(path).ok();
}

#[test]
fn last_layer_scope_freezes_the_backbone_during_adaptation() {
    let mut profile = reduced_profile();
    profile.trainer.epochs = 6;
    profile.meta.meta_iterations = 20;
    profile.finetune_epochs = 4;
    let context = adaptation::prepare(&profile).expect("preparation succeeds");

    let backbone_before = context.fuse_model.flat_params();
    let result = adaptation::run_scope(&context, &profile, FineTuneScope::LastLayer)
        .expect("adaptation run succeeds");
    // run_scope clones the model, so the context model itself is untouched.
    assert_eq!(context.fuse_model.flat_params(), backbone_before);
    assert_eq!(result.scope, FineTuneScope::LastLayer);
    assert_eq!(result.fuse.epochs(), 4);
    assert!(result.fuse.new_data_error.iter().all(|e| e.average_cm().is_finite()));
}
