//! Multi-host serving over the `fuse-net` wire protocol: the cluster
//! acceptance tests for remote shards.
//!
//! The contract under test is the strongest one the workspace makes: putting
//! a shard on the other side of a **flaky** link — frames dropped,
//! duplicated and reordered by `fuse_net::SimTransport` — must not change a
//! single output bit. The committed serve-stream golden pins the numbers; a
//! mixed local/remote cluster must reproduce them exactly, a mid-stream
//! `migrate_session` must leave the remainder of the stream byte-identical
//! to a never-migrated reference, and the two-phase hot-swap must stay
//! all-or-nothing when one phase happens over the wire.

use std::thread::{self, JoinHandle};

use serde::Deserialize;

use fuse_backend::{with_backend, BackendChoice};
use fuse_cluster::{ClusterConfig, ClusterError, ClusterRouter, HostShard, ShardSpec};
use fuse_core::prelude::*;
use fuse_dataset::{encode_dataset, EncodedDataset};
use fuse_net::{sim_pair, FaultConfig, FaultHandle, SimTransport};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig, Scatterer, Scene};
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tests::golden::goldens_dir;

/// A radar scene for frame `i` of a fixed animated movement sequence (same
/// recipe as `golden_trace.rs`).
fn scene_for_frame(
    samples: &[(fuse_skeleton::Skeleton, [[f32; 3]; fuse_skeleton::JOINT_COUNT])],
    i: usize,
) -> Scene {
    let (skeleton, velocities) = &samples[i];
    body_surface_points(skeleton, velocities, 3)
        .iter()
        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
        .collect()
}

/// The exact five frames behind the committed `serve_session_stream` golden.
fn golden_frames() -> Vec<PointCloudFrame> {
    let animator =
        MovementAnimator::new(Subject::profile(1), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(4);
    let samples = animator.sample_frames_with_velocities(0.0, 5);
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..5).map(|i| scatter.sample(&scene_for_frame(&samples, i), i as u64)).collect()
}

fn golden_model() -> fuse_nn::Sequential {
    build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds")
}

/// Spawns a [`HostShard`] serving on `transport`, re-installing the calling
/// thread's kernel overrides (`FUSE_THREADS`/backend scopes are
/// thread-local) so the backend × thread legs exercise the host too — a real
/// deployment sets these per machine.
fn spawn_host(config: ClusterConfig, transport: SimTransport) -> JoinHandle<()> {
    let threads = fuse_parallel::available_threads();
    let min_work = fuse_parallel::min_parallel_work();
    let backend = fuse_backend::active_choice();
    thread::Builder::new()
        .name("wire-test-host".into())
        .spawn(move || {
            with_threads(threads, || {
                with_min_parallel_work(min_work, || {
                    with_backend(backend, || {
                        HostShard::new(golden_model(), config)
                            .expect("host shard builds")
                            .serve(transport)
                            .expect("host exits cleanly");
                    })
                })
            })
        })
        .expect("host thread spawns")
}

/// Asserts that a flaky link actually misbehaved — a pass on a quietly
/// perfect link would prove nothing about the recovery paths.
fn assert_faults_fired(handles: &[&FaultHandle], context: &str) {
    let (mut dropped, mut duplicated, mut reordered) = (0, 0, 0);
    for handle in handles {
        let stats = handle.snapshot();
        dropped += stats.dropped;
        duplicated += stats.duplicated;
        reordered += stats.reordered;
    }
    assert!(
        dropped > 0 && duplicated > 0 && reordered > 0,
        "{context}: the sim link must exercise every fault class \
         (dropped={dropped} duplicated={duplicated} reordered={reordered})"
    );
}

/// The committed golden's shape, reduced to the field this test replays.
/// (f32 values survive the JSON round trip losslessly — see
/// `fuse_tests::golden`.)
#[derive(Deserialize)]
struct CommittedServeStream {
    responses: Vec<Vec<f32>>,
}

fn committed_serve_stream() -> Vec<Vec<f32>> {
    let path = goldens_dir().join("serve_session_stream.json");
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    let committed: CommittedServeStream =
        serde_json::from_str(&raw).expect("golden parses as a serve-stream trace");
    committed.responses
}

/// The tentpole acceptance: a cluster with a **remote** shard behind a
/// flaky simulated link reproduces the committed serve-stream golden bit
/// for bit. Session 0 routes to shard 0 — the remote one — so every submit,
/// flush and response crosses the misbehaving wire.
#[test]
fn remote_shard_over_a_flaky_link_reproduces_the_committed_golden() {
    let frames = golden_frames();
    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };

    let (router_end, host_end) = sim_pair(FaultConfig::flaky(101), FaultConfig::flaky(202));
    let router_faults = router_end.fault_handle();
    let host_faults = host_end.fault_handle();
    let host = spawn_host(config.clone(), host_end);

    let mut router = ClusterRouter::with_shards(
        golden_model(),
        config,
        vec![ShardSpec::Remote(Box::new(router_end)), ShardSpec::Local],
    )
    .expect("router builds");
    router.open_session(SessionConfig::new(0)).expect("session opens");
    let mut responses: Vec<Vec<f32>> = Vec::new();
    for frame in &frames {
        router.submit(0, frame.clone()).expect("submit succeeds");
        let report = router.drain().expect("drain succeeds");
        responses.extend(report.responses.into_iter().map(|r| r.joints));
    }
    router.shutdown();
    host.join().expect("host thread joins");

    assert_eq!(
        responses,
        committed_serve_stream(),
        "a remote shard over a flaky link must serve the committed golden bit for bit"
    );
    assert_faults_fired(&[&router_faults, &host_faults], "golden replay");
}

fn encoded() -> EncodedDataset {
    let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
    encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
}

fn quick_finetune() -> FineTuneConfig {
    FineTuneConfig { epochs: 1, batch_size: 16, ..FineTuneConfig::default() }
}

/// One response reduced to its deterministic observable key.
type Observed = (u64, bool, Vec<f32>);

/// Satellite: a session fine-tunes on its source shard, migrates over a
/// flaky wire to a **remote** shard mid-stream, and the remainder of the
/// stream is bit-identical to a never-migrated reference — on every
/// backend × thread leg.
#[test]
fn migration_over_a_flaky_link_is_bit_identical_to_never_migrating() {
    let frames = golden_frames();
    let data = encoded();

    let run = |tag: &str| -> (Vec<Observed>, Vec<Observed>) {
        // Never-migrated reference: a bare engine serving the same schedule.
        let mut engine =
            ServeEngine::new(golden_model(), ServeConfig::default()).expect("engine builds");
        engine.open_session(SessionConfig::new(0)).expect("session opens");
        let mut reference: Vec<Observed> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            if i == 2 {
                engine.adapt_session(0, &data, &quick_finetune()).expect("adapt succeeds");
            }
            engine.submit(0, frame.clone()).expect("submit succeeds");
            engine.step().expect("step succeeds");
            reference.extend(
                engine.take_responses().into_iter().map(|r| (r.frame_index, r.adapted, r.joints)),
            );
        }

        // The migrating run: fine-tune on local shard 0, then move the
        // session — private model and fusion history — across the flaky
        // wire onto remote shard 1 and keep streaming.
        let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
        let (router_end, host_end) = sim_pair(FaultConfig::flaky(7), FaultConfig::flaky(13));
        let router_faults = router_end.fault_handle();
        let host_faults = host_end.fault_handle();
        let host = spawn_host(config.clone(), host_end);
        let mut router = ClusterRouter::with_shards(
            golden_model(),
            config,
            vec![ShardSpec::Local, ShardSpec::Remote(Box::new(router_end))],
        )
        .expect("router builds");
        router.open_session(SessionConfig::new(0)).expect("session opens");
        assert_eq!(router.shard_of(0), 0, "session 0 starts on the local shard");
        let mut migrated: Vec<Observed> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            if i == 2 {
                router.adapt_session(0, &data, &quick_finetune()).expect("adapt succeeds");
                router.migrate_session(0, 1).expect("migration succeeds");
                assert_eq!(router.shard_of(0), 1, "routing follows the migration");
            }
            router.submit(0, frame.clone()).expect("submit succeeds");
            migrated.extend(
                router
                    .drain()
                    .expect("drain succeeds")
                    .responses
                    .into_iter()
                    .map(|r| (r.frame_index, r.adapted, r.joints)),
            );
        }
        router.shutdown();
        host.join().expect("host thread joins");
        assert_faults_fired(&[&router_faults, &host_faults], tag);
        (migrated, reference)
    };

    let (scalar_migrated, scalar_reference) =
        with_threads(1, || with_backend(BackendChoice::Scalar, || run("scalar leg")));
    assert_eq!(
        scalar_migrated, scalar_reference,
        "scalar leg: migrating mid-stream must not change a single output byte"
    );

    let (simd_migrated, simd_reference) = with_threads(4, || {
        with_min_parallel_work(0, || with_backend(BackendChoice::Simd, || run("simd leg")))
    });
    assert_eq!(
        simd_migrated, simd_reference,
        "simd leg: migrating mid-stream must not change a single output byte"
    );
    assert_eq!(
        scalar_migrated, simd_migrated,
        "the migrated stream must be bit-identical across backend \u{d7} thread legs"
    );
}

/// The two-phase fan-out hot-swap stays atomic when one shard is remote:
/// a good checkpoint commits everywhere (bit-identical to a lone donor
/// engine), a corrupt one aborts everywhere, and the abort changes nothing —
/// all with the checkpoint bytes travelling as wire payloads.
#[test]
fn fan_out_hot_swap_commits_and_aborts_atomically_across_the_wire() {
    let dir = std::env::temp_dir().join("fuse_wire_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");
    let donor =
        ServeEngine::new(build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(), ServeConfig::default())
            .unwrap();
    donor.save_checkpoint("donor", &good).unwrap();
    std::fs::write(&bad, "{\"model_name\":\"x\"").unwrap();

    let frames = golden_frames();
    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
    let (router_end, host_end) = sim_pair(FaultConfig::flaky(31), FaultConfig::flaky(47));
    let host = spawn_host(config.clone(), host_end);
    let mut router = ClusterRouter::with_shards(
        golden_model(),
        config,
        vec![ShardSpec::Remote(Box::new(router_end)), ShardSpec::Local],
    )
    .expect("router builds");
    router.open_session(SessionConfig::new(0)).expect("remote-shard session opens");
    router.open_session(SessionConfig::new(1)).expect("local-shard session opens");

    // Phase one validates on both shards — one ack crossing the flaky wire —
    // before phase two commits anywhere.
    let swap = router.hot_swap(&good).expect("swap commits");
    assert_eq!(swap.model_name, "donor");
    assert_eq!(swap.version, 1);
    let metrics = router.metrics().expect("metrics snapshot");
    assert!(
        metrics.shards.iter().all(|s| s.model_version == 1),
        "local and remote shards must move to the new version together"
    );

    // Both shards now serve the donor's weights, bit for bit.
    router.submit(0, frames[0].clone()).expect("submit succeeds");
    router.submit(1, frames[0].clone()).expect("submit succeeds");
    let responses = router.drain().expect("drain succeeds").responses;
    assert_eq!(responses.len(), 2);
    let mut reference =
        ServeEngine::new(build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(), ServeConfig::default())
            .unwrap();
    reference.open_session(SessionConfig::new(0)).unwrap();
    reference.submit(0, frames[0].clone()).unwrap();
    reference.step().unwrap();
    let expected = reference.take_responses();
    for got in &responses {
        assert_eq!(
            got.joints, expected[0].joints,
            "a swapped remote shard must match the donor bit for bit"
        );
    }

    // A corrupt checkpoint aborts on both shards; serving is unchanged.
    // The probe needs a *fresh* session (fusion history would legitimately
    // change session 0's output on a repeated frame); id 2 routes to the
    // remote shard.
    let err = router.hot_swap(&bad).unwrap_err();
    assert!(matches!(err, ClusterError::SwapAborted { .. }), "got {err:?}");
    let metrics = router.metrics().expect("metrics snapshot");
    assert!(
        metrics.shards.iter().all(|s| s.model_version == 1),
        "an aborted swap must not bump any shard's version"
    );
    router.open_session(SessionConfig::new(2)).expect("probe session opens");
    router.submit(2, frames[0].clone()).expect("submit succeeds");
    let after = router.drain().expect("drain succeeds").responses;
    assert_eq!(
        after[0].joints, expected[0].joints,
        "an aborted swap must not change what the remote shard serves"
    );

    router.shutdown();
    host.join().expect("host thread joins");
    std::fs::remove_dir_all(&dir).ok();
}
