//! Golden-trace regression tests: fixed-seed end-to-end traces of the
//! radar → fusion → feature-map → CNN chain, checked against committed JSON
//! files under `tests/goldens/`.
//!
//! These pin the *numeric* behaviour a serving deployment must preserve —
//! any refactor of the kernels, the signal chain, the fusion/feature code or
//! the serving engine that changes a single bit of the outputs fails here.
//! After an intentional numeric change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p fuse-tests --test golden_trace
//! ```
//!
//! The traces are thread-count independent (`fuse-parallel` bit-identity
//! contract), so the same goldens hold under `FUSE_THREADS=1` and `=4`.

use serde::{Deserialize, Serialize};

use fuse_cluster::{ClusterConfig, ClusterRouter};
use fuse_core::prelude::*;
use fuse_dataset::encode_dataset;
use fuse_radar::{
    cfar_ca_2d, AdcCube, CfarConfig, FastScatterModel, PointCloudFrame, PointCloudGenerator,
    RadarConfig, RangeDopplerMap, Scatterer, Scene,
};
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tensor::Tensor;
use fuse_tests::golden::{check_or_update, StageDigest};

/// A radar scene for frame `i` of a fixed animated movement sequence.
fn scene_for_frame(
    samples: &[(fuse_skeleton::Skeleton, [[f32; 3]; fuse_skeleton::JOINT_COUNT])],
    i: usize,
) -> Scene {
    let (skeleton, velocities) = &samples[i];
    body_surface_points(skeleton, velocities, 3)
        .iter()
        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
        .collect()
}

fn point_features(frames: &[PointCloudFrame]) -> Vec<f32> {
    frames.iter().flat_map(|f| f.points.iter().flat_map(|p| p.features())).collect()
}

/// Trace of the full FMCW signal chain feeding the CNN:
/// ADC cube → range-Doppler FFTs → CFAR → point cloud → fusion → feature map
/// → logits, all from fixed seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FullChainTrace {
    adc_samples: usize,
    adc_chirps: usize,
    adc_antennas: usize,
    adc_rms: f32,
    rd_range_bins: usize,
    rd_doppler_bins: usize,
    rd_peak_range_bin: usize,
    rd_peak_doppler_bin: usize,
    rd_peak_magnitude: f32,
    cfar_detections: usize,
    cfar_strongest_magnitude: f32,
    points_per_frame: Vec<usize>,
    points: StageDigest,
    fused_count: usize,
    feature_map: StageDigest,
    logits: Vec<f32>,
}

#[test]
fn full_chain_trace_matches_golden() {
    let animator = MovementAnimator::new(Subject::profile(2), Movement::Squat, 10.0).with_seed(1);
    let samples = animator.sample_frames_with_velocities(0.0, 3);
    let config = RadarConfig::test_small();

    // Signal-chain intermediates for the middle frame.
    let scene = scene_for_frame(&samples, 1);
    let cube = AdcCube::synthesize(&config, &scene, 1).expect("cube synthesis succeeds");
    let map = RangeDopplerMap::from_cube(&cube).expect("fft succeeds");
    let (peak_range, peak_doppler) = map.peak_cell().expect("map has a peak");
    let detections = cfar_ca_2d(&map, &CfarConfig::default()).expect("cfar succeeds");
    let strongest = detections.iter().map(|d| d.magnitude).fold(0.0f32, f32::max);

    // Full chain per frame, then fusion + feature map + CNN on the last frame.
    let generator = PointCloudGenerator::new(config);
    let frames: Vec<PointCloudFrame> = (0..3)
        .map(|i| generator.generate(&scene_for_frame(&samples, i), i as u64).expect("chain runs"))
        .collect();
    let fusion = FrameFusion::default();
    let fused = fusion.fused_points_owned(&frames, 2);
    let builder = FeatureMapBuilder::default();
    let features = builder.build(&fused, None).expect("feature map builds");
    let input = Tensor::stack(std::slice::from_ref(&features)).expect("stack succeeds");
    let mut model = build_mars_cnn(&ModelConfig::tiny(), 7).expect("model builds");
    let logits = model.forward(&input, false).expect("forward succeeds");

    let trace = FullChainTrace {
        adc_samples: cube.samples(),
        adc_chirps: cube.chirps(),
        adc_antennas: cube.antennas(),
        adc_rms: cube.rms(),
        rd_range_bins: map.range_bins(),
        rd_doppler_bins: map.doppler_bins(),
        rd_peak_range_bin: peak_range,
        rd_peak_doppler_bin: peak_doppler,
        rd_peak_magnitude: map.magnitude_at(peak_range, peak_doppler),
        cfar_detections: detections.len(),
        cfar_strongest_magnitude: strongest,
        points_per_frame: frames.iter().map(|f| f.len()).collect(),
        points: StageDigest::of(&point_features(&frames), 20),
        fused_count: fused.len(),
        feature_map: StageDigest::of(features.as_slice(), 16),
        logits: logits.as_slice().to_vec(),
    };
    check_or_update("full_chain_small", &trace);
}

/// Trace of a five-frame serving-session stream on the fast scatter model:
/// the exact responses (all 57 logits per frame) the `fuse-serve` engine
/// produces for a fixed subject, seed and model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeStreamTrace {
    points_per_frame: Vec<usize>,
    fused_counts: Vec<usize>,
    model_version: u64,
    responses: Vec<Vec<f32>>,
}

#[test]
fn serve_session_stream_matches_golden() {
    let animator =
        MovementAnimator::new(Subject::profile(1), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(4);
    let samples = animator.sample_frames_with_velocities(0.0, 5);
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());

    let model = build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds");
    let mut engine = ServeEngine::new(model, ServeConfig::default()).expect("engine builds");
    engine.open_session(SessionConfig::new(0)).expect("session opens");

    let mut trace = ServeStreamTrace {
        points_per_frame: Vec::new(),
        fused_counts: Vec::new(),
        model_version: 0,
        responses: Vec::new(),
    };
    for i in 0..5 {
        let frame = scatter.sample(&scene_for_frame(&samples, i), i as u64);
        trace.points_per_frame.push(frame.len());
        engine.submit(0, frame).expect("submit succeeds");
        trace.fused_counts.push(engine.session(0).expect("session open").fused_points().len());
        assert_eq!(engine.step().expect("step succeeds"), 1);
        let responses = engine.take_responses();
        trace.responses.push(responses[0].joints.clone());
    }
    trace.model_version = engine.model_version();
    check_or_update("serve_session_stream", &trace);
}

/// The serve golden stream replayed through the `fuse-cluster` router: the
/// per-session response sequence must be **bit-identical** to the committed
/// golden for any shard count — `FUSE_SHARDS=4` serves the same bits as
/// `FUSE_SHARDS=1`, which serves the same bits as the bare engine (the
/// cluster acceptance criterion).
#[test]
fn cluster_reproduces_the_serve_golden_stream_for_any_shard_count() {
    let animator =
        MovementAnimator::new(Subject::profile(1), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(4);
    let samples = animator.sample_frames_with_velocities(0.0, 5);
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    let frames: Vec<PointCloudFrame> =
        (0..5).map(|i| scatter.sample(&scene_for_frame(&samples, i), i as u64)).collect();

    // The committed-golden reference: the bare engine, pinned by
    // `serve_session_stream_matches_golden` above.
    let model = build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds");
    let mut engine = ServeEngine::new(model, ServeConfig::default()).expect("engine builds");
    engine.open_session(SessionConfig::new(0)).expect("session opens");
    let mut reference: Vec<Vec<f32>> = Vec::new();
    for frame in &frames {
        engine.submit(0, frame.clone()).expect("submit succeeds");
        engine.step().expect("step succeeds");
        reference.extend(engine.take_responses().into_iter().map(|r| r.joints));
    }

    for shards in [1usize, 4] {
        let model = build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds");
        let config = ClusterConfig { shards, ..ClusterConfig::default() };
        let mut router = ClusterRouter::new(model, config).expect("router builds");
        router.open_session(SessionConfig::new(0)).expect("session opens");
        let mut responses: Vec<Vec<f32>> = Vec::new();
        for frame in &frames {
            router.submit(0, frame.clone()).expect("submit succeeds");
            let report = router.drain().expect("drain succeeds");
            responses.extend(report.responses.into_iter().map(|r| r.joints));
        }
        router.shutdown();
        assert_eq!(
            responses, reference,
            "FUSE_SHARDS={shards} diverged from the golden serve stream"
        );
    }
}

/// Trace of a short online fine-tune/adaptation run: per-epoch losses and
/// MAE plus a digest of the adapted parameters, all from fixed seeds. This
/// pins the optimiser surface (Adam updates, batch shuffling, loss
/// accumulation) ahead of multi-backend work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FineTuneTrace {
    epochs: usize,
    train_loss: Vec<f32>,
    new_data_error_cm: Vec<f32>,
    original_data_error_cm: Vec<f32>,
    params: StageDigest,
}

#[test]
fn finetune_trace_matches_golden() {
    let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().expect("synthesis");
    let encoded = encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default())
        .expect("encoding succeeds");
    let mut model = build_mars_cnn(&ModelConfig::tiny(), 17).expect("model builds");
    let config = FineTuneConfig { epochs: 2, batch_size: 16, ..FineTuneConfig::default() };
    let result =
        fine_tune(&mut model, &encoded, &encoded, &encoded, &config).expect("fine-tune succeeds");

    let trace = FineTuneTrace {
        epochs: result.epochs(),
        train_loss: result.train_loss.clone(),
        new_data_error_cm: result.new_data_error.iter().map(|e| e.average_cm()).collect(),
        original_data_error_cm: result.original_data_error.iter().map(|e| e.average_cm()).collect(),
        params: StageDigest::of(&model.flat_params(), 16),
    };
    check_or_update("finetune_small", &trace);
}
