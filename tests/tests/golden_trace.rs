//! Golden-trace regression tests: fixed-seed end-to-end traces of the
//! radar → fusion → feature-map → CNN chain, checked against committed JSON
//! files under `tests/goldens/`.
//!
//! These pin the *numeric* behaviour a serving deployment must preserve —
//! any refactor of the kernels, the signal chain, the fusion/feature code or
//! the serving engine that changes a single bit of the outputs fails here.
//! After an intentional numeric change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p fuse-tests --test golden_trace
//! ```
//!
//! The traces are thread-count independent (`fuse-parallel` bit-identity
//! contract), so the same goldens hold under `FUSE_THREADS=1` and `=4`.

use serde::{Deserialize, Serialize};

use fuse_core::prelude::*;
use fuse_radar::{
    cfar_ca_2d, AdcCube, CfarConfig, FastScatterModel, PointCloudFrame, PointCloudGenerator,
    RadarConfig, RangeDopplerMap, Scatterer, Scene,
};
use fuse_serve::{ServeConfig, ServeEngine};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tensor::Tensor;
use fuse_tests::golden::{check_or_update, StageDigest};

/// A radar scene for frame `i` of a fixed animated movement sequence.
fn scene_for_frame(
    samples: &[(fuse_skeleton::Skeleton, [[f32; 3]; fuse_skeleton::JOINT_COUNT])],
    i: usize,
) -> Scene {
    let (skeleton, velocities) = &samples[i];
    body_surface_points(skeleton, velocities, 3)
        .iter()
        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
        .collect()
}

fn point_features(frames: &[PointCloudFrame]) -> Vec<f32> {
    frames.iter().flat_map(|f| f.points.iter().flat_map(|p| p.features())).collect()
}

/// Trace of the full FMCW signal chain feeding the CNN:
/// ADC cube → range-Doppler FFTs → CFAR → point cloud → fusion → feature map
/// → logits, all from fixed seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FullChainTrace {
    adc_samples: usize,
    adc_chirps: usize,
    adc_antennas: usize,
    adc_rms: f32,
    rd_range_bins: usize,
    rd_doppler_bins: usize,
    rd_peak_range_bin: usize,
    rd_peak_doppler_bin: usize,
    rd_peak_magnitude: f32,
    cfar_detections: usize,
    cfar_strongest_magnitude: f32,
    points_per_frame: Vec<usize>,
    points: StageDigest,
    fused_count: usize,
    feature_map: StageDigest,
    logits: Vec<f32>,
}

#[test]
fn full_chain_trace_matches_golden() {
    let animator = MovementAnimator::new(Subject::profile(2), Movement::Squat, 10.0).with_seed(1);
    let samples = animator.sample_frames_with_velocities(0.0, 3);
    let config = RadarConfig::test_small();

    // Signal-chain intermediates for the middle frame.
    let scene = scene_for_frame(&samples, 1);
    let cube = AdcCube::synthesize(&config, &scene, 1).expect("cube synthesis succeeds");
    let map = RangeDopplerMap::from_cube(&cube).expect("fft succeeds");
    let (peak_range, peak_doppler) = map.peak_cell().expect("map has a peak");
    let detections = cfar_ca_2d(&map, &CfarConfig::default()).expect("cfar succeeds");
    let strongest = detections.iter().map(|d| d.magnitude).fold(0.0f32, f32::max);

    // Full chain per frame, then fusion + feature map + CNN on the last frame.
    let generator = PointCloudGenerator::new(config);
    let frames: Vec<PointCloudFrame> = (0..3)
        .map(|i| generator.generate(&scene_for_frame(&samples, i), i as u64).expect("chain runs"))
        .collect();
    let fusion = FrameFusion::default();
    let fused = fusion.fused_points_owned(&frames, 2);
    let builder = FeatureMapBuilder::default();
    let features = builder.build(&fused, None).expect("feature map builds");
    let input = Tensor::stack(std::slice::from_ref(&features)).expect("stack succeeds");
    let mut model = build_mars_cnn(&ModelConfig::tiny(), 7).expect("model builds");
    let logits = model.forward(&input, false).expect("forward succeeds");

    let trace = FullChainTrace {
        adc_samples: cube.samples(),
        adc_chirps: cube.chirps(),
        adc_antennas: cube.antennas(),
        adc_rms: cube.rms(),
        rd_range_bins: map.range_bins(),
        rd_doppler_bins: map.doppler_bins(),
        rd_peak_range_bin: peak_range,
        rd_peak_doppler_bin: peak_doppler,
        rd_peak_magnitude: map.magnitude_at(peak_range, peak_doppler),
        cfar_detections: detections.len(),
        cfar_strongest_magnitude: strongest,
        points_per_frame: frames.iter().map(|f| f.len()).collect(),
        points: StageDigest::of(&point_features(&frames), 20),
        fused_count: fused.len(),
        feature_map: StageDigest::of(features.as_slice(), 16),
        logits: logits.as_slice().to_vec(),
    };
    check_or_update("full_chain_small", &trace);
}

/// Trace of a five-frame serving-session stream on the fast scatter model:
/// the exact responses (all 57 logits per frame) the `fuse-serve` engine
/// produces for a fixed subject, seed and model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeStreamTrace {
    points_per_frame: Vec<usize>,
    fused_counts: Vec<usize>,
    model_version: u64,
    responses: Vec<Vec<f32>>,
}

#[test]
fn serve_session_stream_matches_golden() {
    let animator =
        MovementAnimator::new(Subject::profile(1), Movement::BothUpperLimbExtension, 10.0)
            .with_seed(4);
    let samples = animator.sample_frames_with_velocities(0.0, 5);
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());

    let model = build_mars_cnn(&ModelConfig::tiny(), 21).expect("model builds");
    let mut engine = ServeEngine::new(model, ServeConfig::default()).expect("engine builds");
    engine.open_session(0).expect("session opens");

    let mut trace = ServeStreamTrace {
        points_per_frame: Vec::new(),
        fused_counts: Vec::new(),
        model_version: 0,
        responses: Vec::new(),
    };
    for i in 0..5 {
        let frame = scatter.sample(&scene_for_frame(&samples, i), i as u64);
        trace.points_per_frame.push(frame.len());
        engine.submit(0, frame).expect("submit succeeds");
        trace.fused_counts.push(engine.session(0).expect("session open").fused_points().len());
        let responses = engine.step().expect("step succeeds");
        assert_eq!(responses.len(), 1);
        trace.responses.push(responses[0].joints.clone());
    }
    trace.model_version = engine.model_version();
    check_or_update("serve_session_stream", &trace);
}
