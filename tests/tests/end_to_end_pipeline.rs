//! End-to-end integration tests: dataset synthesis → pre-processing →
//! supervised training → evaluation, plus the full radar signal chain feeding
//! the CNN.

use fuse_core::prelude::*;
use fuse_dataset::{encode_dataset, encode_dataset_with_normalizer, per_movement_split};
use fuse_radar::{PointCloudGenerator, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use fuse_tensor::Tensor;

fn small_synthesis() -> SynthesisConfig {
    SynthesisConfig {
        subjects: vec![0, 3],
        movements: vec![
            Movement::Squat,
            Movement::RightLimbExtension,
            Movement::BothUpperLimbExtension,
        ],
        frames_per_sequence: 50,
        ..SynthesisConfig::quick()
    }
}

#[test]
fn supervised_training_learns_pose_from_synthetic_mmwave_data() {
    let dataset = MarsSynthesizer::new(small_synthesis()).generate().expect("synthesis succeeds");
    let split =
        per_movement_split(&dataset, SplitRatios::default_60_20_20()).expect("split succeeds");
    let fusion = FrameFusion::default();
    let builder = FeatureMapBuilder::default();
    let train = encode_dataset(&split.train, &fusion, &builder).expect("encode train");
    let test =
        encode_dataset_with_normalizer(&split.test, &fusion, &builder, train.normalizer().clone())
            .expect("encode test");

    let model = build_mars_cnn(&ModelConfig::default(), 7).expect("model builds");
    let mut trainer = Trainer::new(
        model,
        TrainerConfig { epochs: 20, batch_size: 64, learning_rate: 1e-3, seed: 0 },
    )
    .expect("trainer config valid");
    let before = trainer.evaluate(&test).expect("evaluation succeeds");
    let history = trainer.fit(&train, None).expect("training succeeds");
    let after = trainer.evaluate(&test).expect("evaluation succeeds");

    // Training must reduce both the loss and the held-out error substantially.
    assert!(history.final_loss().unwrap() < 0.5 * history.train_loss[0]);
    assert!(
        after.average_cm() < 0.6 * before.average_cm(),
        "test MAE did not improve enough: {:.1} cm -> {:.1} cm",
        before.average_cm(),
        after.average_cm()
    );
    // A trained model on this reduced dataset should reach the decimetre
    // range (the paper reaches ~4-7 cm at full scale with 40k frames and 150
    // epochs; this test uses ~300 frames and 20 epochs).
    assert!(after.average_cm() < 30.0, "trained MAE too high: {:.1} cm", after.average_cm());
}

#[test]
fn full_radar_chain_feeds_the_cnn() {
    // Animate a subject, run the *full* FMCW chain (not the fast model), and
    // push the resulting point cloud through fusion, feature maps and the CNN.
    let animator = MovementAnimator::new(Subject::profile(2), Movement::Squat, 10.0).with_seed(1);
    let generator = PointCloudGenerator::new(RadarConfig::test_small());
    let samples = animator.sample_frames_with_velocities(0.0, 5);

    let mut frames = Vec::new();
    for (i, (skeleton, velocities)) in samples.iter().enumerate() {
        let scene: Scene = body_surface_points(skeleton, velocities, 3)
            .iter()
            .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
            .collect();
        let frame = generator.generate(&scene, i as u64).expect("signal chain succeeds");
        assert!(!frame.is_empty(), "frame {i} has no detections");
        frames.push(frame);
    }

    let fusion = FrameFusion::default();
    let builder = FeatureMapBuilder::default();
    let points = fusion.fused_points_owned(&frames, 2);
    assert!(points.len() > frames[2].len(), "fusion should add points");
    let features = builder.build(&points, None).expect("feature map builds");
    let input = Tensor::stack(&[features]).expect("stack succeeds");

    let mut model = build_mars_cnn(&ModelConfig::default(), 3).expect("model builds");
    let joints = model.forward(&input, false).expect("inference succeeds");
    assert_eq!(joints.dims(), &[1, 57]);
    assert!(joints.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn fusion_improves_over_single_frame_at_matched_budget() {
    // The Table 1 trend at integration-test scale: train the same model with
    // the same budget on single-frame and 3-frame-fused representations; the
    // fused representation should not be worse.
    let dataset = MarsSynthesizer::new(small_synthesis()).generate().expect("synthesis succeeds");
    let split =
        per_movement_split(&dataset, SplitRatios::default_60_20_20()).expect("split succeeds");
    let builder = FeatureMapBuilder::default();
    let config = TrainerConfig { epochs: 15, batch_size: 64, learning_rate: 1e-3, seed: 0 };

    let mut results = Vec::new();
    for frames in [1usize, 3] {
        let fusion = FrameFusion::from_frame_count(frames);
        let train = encode_dataset(&split.train, &fusion, &builder).expect("encode train");
        let test = encode_dataset_with_normalizer(
            &split.test,
            &fusion,
            &builder,
            train.normalizer().clone(),
        )
        .expect("encode test");
        let model = build_mars_cnn(&ModelConfig::default(), 7).expect("model builds");
        let mut trainer = Trainer::new(model, config).expect("trainer valid");
        trainer.fit(&train, None).expect("training succeeds");
        results.push(trainer.evaluate(&test).expect("evaluation succeeds").average_cm());
    }
    let (single, fused3) = (results[0], results[1]);
    assert!(
        fused3 < single * 1.05,
        "3-frame fusion should not degrade accuracy: single {single:.1} cm, fused {fused3:.1} cm"
    );
}

#[test]
fn model_checkpoint_round_trips_through_serialization() {
    let dataset =
        MarsSynthesizer::new(SynthesisConfig::tiny()).generate().expect("synthesis succeeds");
    let enc = encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default())
        .expect("encode succeeds");

    let model = build_mars_cnn(&ModelConfig::tiny(), 5).expect("model builds");
    let mut trainer = Trainer::new(model, TrainerConfig::quick(3)).expect("trainer valid");
    trainer.fit(&enc, None).expect("training succeeds");

    let dir = std::env::temp_dir().join("fuse_integration_ckpt");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.json");
    fuse_nn::Checkpoint::capture(trainer.model(), "integration-test")
        .write_json(&path)
        .expect("save succeeds");

    let mut restored = build_mars_cnn(&ModelConfig::tiny(), 99).expect("model builds");
    fuse_nn::Checkpoint::read(&path)
        .and_then(|c| c.apply_to(&mut restored))
        .expect("load succeeds");
    let (inputs, _) = enc.gather(&[0, 1, 2]).expect("gather succeeds");
    let a = trainer.model_mut().forward(&inputs, false).expect("forward succeeds");
    let b = restored.forward(&inputs, false).expect("forward succeeds");
    assert_eq!(a, b, "restored model must reproduce the trained model's predictions");
    std::fs::remove_file(path).ok();
}
