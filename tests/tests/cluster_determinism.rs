//! Determinism and backpressure contracts of the `fuse-cluster` router.
//!
//! The cluster extends the PR-2/PR-3 bit-reproducibility contract across
//! process-internal concurrency: a session lives entirely on one shard, the
//! kernels underneath are batch-composition independent, and
//! [`ClusterRouter::drain`] re-sequences by `(session, frame)` — so the
//! externally observable response stream must be **bit-identical** for any
//! shard count (`FUSE_SHARDS` 1/2/4), any kernel thread count
//! (`FUSE_THREADS` 1/4), and any submission interleaving.
//!
//! Backpressure decisions are pinned by golden cases in lockstep mode
//! (`auto_step: false`), where drops and merges are a pure function of the
//! submit/drain schedule.

use fuse_cluster::{
    BackpressurePolicy, BackpressureSpec, ClusterConfig, ClusterError, ClusterRouter,
};
use fuse_core::prelude::*;
use fuse_dataset::{encode_dataset, EncodedDataset};
use fuse_parallel::{with_min_parallel_work, with_threads};
use fuse_radar::{FastScatterModel, PointCloudFrame, RadarConfig};
use fuse_serve::{ServeConfig, ServeEngine, SessionConfig};

/// One response reduced to its deterministic observable key.
type Observed = (u64, u64, bool, Vec<f32>);

fn observed(responses: &[fuse_serve::ServeResponse]) -> Vec<Observed> {
    responses.iter().map(|r| (r.session_id, r.frame_index, r.adapted, r.joints.clone())).collect()
}

fn encoded() -> EncodedDataset {
    let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
    encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
}

/// Pre-generates a deterministic stream of point-cloud frames per session.
fn session_streams(sessions: usize, rounds: usize) -> Vec<Vec<PointCloudFrame>> {
    let scatter = FastScatterModel::new(RadarConfig::iwr1443_indoor());
    (0..sessions)
        .map(|s| {
            (0..rounds)
                .map(|r| {
                    let scene = (0..12)
                        .map(|i| {
                            let z = 0.2 + 0.1 * i as f32 + 0.01 * s as f32;
                            fuse_radar::Scatterer::new(
                                [0.05 * i as f32, 2.0, z],
                                [0.0, 0.3, 0.0],
                                1.0,
                            )
                        })
                        .collect();
                    scatter.sample(&scene, (s * rounds + r) as u64)
                })
                .collect()
        })
        .collect()
}

/// Streams every session through a router with the given shard count,
/// submitting each round's frames in `submit_order`, draining every round,
/// and returns the full observable response stream. One session is adapted
/// online so the private-model path is covered.
fn cluster_stream(
    shards: usize,
    streams: &[Vec<PointCloudFrame>],
    submit_order: &[usize],
) -> Vec<Observed> {
    let model = build_mars_cnn(&ModelConfig::tiny(), 33).unwrap();
    let config = ClusterConfig { shards, ..ClusterConfig::default() };
    let mut router = ClusterRouter::new(model, config).unwrap();
    for s in 0..streams.len() {
        router.open_session(SessionConfig::new(s as u64)).unwrap();
    }
    router.adapt_session(1, &encoded(), &quick_finetune()).unwrap();

    let mut responses = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for round in 0..streams[0].len() {
        for &s in submit_order {
            router.submit(s as u64, streams[s][round].clone()).unwrap();
        }
        responses.extend(observed(&router.drain().unwrap().responses));
    }
    router.shutdown();
    responses
}

fn quick_finetune() -> FineTuneConfig {
    FineTuneConfig { epochs: 1, batch_size: 16, ..FineTuneConfig::default() }
}

/// The same workload through a bare `ServeEngine` — the single-process
/// reference the cluster must reproduce bit-for-bit.
fn engine_stream(streams: &[Vec<PointCloudFrame>]) -> Vec<Observed> {
    let model = build_mars_cnn(&ModelConfig::tiny(), 33).unwrap();
    let mut engine = ServeEngine::new(model, ServeConfig::default()).unwrap();
    for s in 0..streams.len() {
        engine.open_session(SessionConfig::new(s as u64)).unwrap();
    }
    engine.adapt_session(1, &encoded(), &quick_finetune()).unwrap();

    let mut responses = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for round in 0..streams[0].len() {
        for (s, stream) in streams.iter().enumerate() {
            engine.submit(s as u64, stream[round].clone()).unwrap();
        }
        engine.step().unwrap();
        responses.extend(observed(&engine.take_responses()));
    }
    responses
}

#[test]
fn cluster_is_bit_identical_across_shard_counts_and_thread_counts() {
    let streams = session_streams(5, 3);
    let order = [0usize, 1, 2, 3, 4];
    // The reference: one bare engine, serial kernels.
    let reference = with_threads(1, || engine_stream(&streams));
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let run = with_threads(threads, || {
                with_min_parallel_work(0, || cluster_stream(shards, &streams, &order))
            });
            assert_eq!(
                run, reference,
                "shards={shards} threads={threads} diverged from the single-engine reference"
            );
        }
    }
}

#[test]
fn cluster_is_independent_of_arrival_interleaving() {
    let streams = session_streams(4, 3);
    let in_order = cluster_stream(2, &streams, &[0, 1, 2, 3]);
    // Adversarial interleavings: reversed, and a shard-hostile order that
    // alternates between shards and front-loads the last session.
    for order in [[3usize, 2, 1, 0], [3, 1, 0, 2], [1, 3, 0, 2]] {
        assert_eq!(
            cluster_stream(2, &streams, &order),
            in_order,
            "submission order {order:?} changed the observable stream"
        );
    }
}

/// Lockstep router for the backpressure golden cases: one session, a tiny
/// queue capacity, no autonomous stepping.
fn backpressure_router(policy: BackpressurePolicy, queue_capacity: usize) -> ClusterRouter {
    let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
    let config = ClusterConfig {
        shards: 2,
        backpressure: BackpressureSpec::uniform(policy, queue_capacity),
        auto_step: false,
        ..ClusterConfig::default()
    };
    let mut router = ClusterRouter::new(model, config).unwrap();
    router.open_session(SessionConfig::new(1)).unwrap();
    router
}

fn flood(router: &mut ClusterRouter, frames: &[PointCloudFrame]) {
    for frame in frames {
        router.submit(1, frame.clone()).unwrap();
    }
}

#[test]
fn drop_oldest_golden_case() {
    // Capacity 3, 8 frames in one burst: every enqueue past the third evicts
    // the then-oldest frame, so frames 0..=4 are dropped and 5..=7 served.
    let frames = &session_streams(1, 8)[0];
    let mut router = backpressure_router(BackpressurePolicy::DropOldest, 3);
    flood(&mut router, frames);
    let report = router.drain().unwrap();
    assert_eq!(report.dropped, [(1, 0), (1, 1), (1, 2), (1, 3), (1, 4)]);
    assert!(report.merged.is_empty());
    let served: Vec<u64> = report.responses.iter().map(|r| r.frame_index).collect();
    assert_eq!(served, [5, 6, 7], "the freshest frames survive DropOldest");

    // The drops are surfaced in the cluster metrics (the SLO accounting
    // channel), attributed to the session's shard.
    let metrics = router.metrics().unwrap();
    assert_eq!(metrics.dropped_frames(), 5);
    assert_eq!(metrics.merged_frames(), 0);
    assert_eq!(metrics.shards[1].dropped_frames, 5, "session 1 lives on shard 1");
    assert_eq!(metrics.shards[0].dropped_frames, 0);
    assert_eq!(metrics.responses(), 3);
    router.shutdown();
}

#[test]
fn merge_frames_golden_case() {
    // Capacity 3, 8 frames in one burst: each overflow collapses the queue
    // to its newest frame. The survivors differ from DropOldest — merging
    // coalesces whole bursts, dropping evicts one frame at a time.
    let frames = &session_streams(1, 8)[0];
    let mut router = backpressure_router(BackpressurePolicy::MergeFrames, 3);
    flood(&mut router, frames);
    let report = router.drain().unwrap();
    assert_eq!(report.merged, [(1, 0), (1, 1), (1, 2), (1, 3), (1, 4), (1, 5)]);
    assert!(report.dropped.is_empty());
    let served: Vec<u64> = report.responses.iter().map(|r| r.frame_index).collect();
    assert_eq!(served, [6, 7], "each burst is represented by its newest frame");

    let metrics = router.metrics().unwrap();
    assert_eq!(metrics.merged_frames(), 6);
    assert_eq!(metrics.dropped_frames(), 0);
    assert_eq!(metrics.shards[1].merged_frames, 6);
    router.shutdown();
}

#[test]
fn block_policy_serves_everything() {
    // Same flood, Block policy: nothing is lost — the shard serves backlog
    // before accepting new frames, trading submit latency for completeness.
    let frames = &session_streams(1, 8)[0];
    let mut router = backpressure_router(BackpressurePolicy::Block, 3);
    flood(&mut router, frames);
    let report = router.drain().unwrap();
    assert!(report.dropped.is_empty());
    assert!(report.merged.is_empty());
    let served: Vec<u64> = report.responses.iter().map(|r| r.frame_index).collect();
    assert_eq!(served, [0, 1, 2, 3, 4, 5, 6, 7], "Block loses nothing");

    let metrics = router.metrics().unwrap();
    assert_eq!(metrics.dropped_frames() + metrics.merged_frames(), 0);
    assert!(metrics.blocked_submits() >= 1, "the blocked submits are accounted");
    router.shutdown();
}

#[test]
fn backpressure_golden_cases_are_stable_across_shard_and_thread_counts() {
    // The lockstep drop/merge decisions depend only on the per-session
    // schedule, so the same flood must produce the same evictions for any
    // shard count and kernel thread count.
    let frames = session_streams(1, 8).remove(0);
    let run = |shards: usize| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let config = ClusterConfig {
            shards,
            backpressure: BackpressureSpec::uniform(BackpressurePolicy::DropOldest, 3),
            auto_step: false,
            ..ClusterConfig::default()
        };
        let mut router = ClusterRouter::new(model, config).unwrap();
        router.open_session(SessionConfig::new(1)).unwrap();
        flood(&mut router, &frames);
        let report = router.drain().unwrap();
        (observed(&report.responses), report.dropped)
    };
    let reference = with_threads(1, || run(1));
    for shards in [2usize, 4] {
        for threads in [1usize, 4] {
            let result = with_threads(threads, || with_min_parallel_work(0, || run(shards)));
            assert_eq!(result, reference, "shards={shards} threads={threads}");
        }
    }
}

#[test]
fn fan_out_hot_swap_is_atomic_across_shards() {
    let dir = std::env::temp_dir().join("fuse_cluster_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");

    let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
    let donor =
        ServeEngine::new(build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(), ServeConfig::default())
            .unwrap();
    donor.save_checkpoint("donor", &good).unwrap();
    std::fs::write(&bad, "{\"model_name\":\"x\"").unwrap();

    let config = ClusterConfig { shards: 4, ..ClusterConfig::default() };
    let mut router = ClusterRouter::new(model, config).unwrap();
    for id in 0..4u64 {
        router.open_session(SessionConfig::new(id)).unwrap();
    }

    // A valid checkpoint commits on every shard, versions bumped together.
    let swap = router.hot_swap(&good).unwrap();
    assert_eq!(swap.model_name, "donor");
    assert_eq!(swap.version, 1);
    let metrics = router.metrics().unwrap();
    assert!(metrics.shards.iter().all(|s| s.model_version == 1), "all shards moved together");

    // A corrupt checkpoint aborts on every shard: versions and predictions
    // unchanged — all-or-nothing. Fresh sessions before and after the abort
    // see the same frame, so equal joints prove no shard changed weights
    // (session ids only affect routing, never the prediction).
    let frames = session_streams(1, 1);
    router.open_session(SessionConfig::new(10)).unwrap();
    router.submit(10, frames[0][0].clone()).unwrap();
    let before = router.drain().unwrap().responses;
    let err = router.hot_swap(&bad).unwrap_err();
    assert!(matches!(err, ClusterError::SwapAborted { .. }), "got {err:?}");
    let metrics = router.metrics().unwrap();
    assert!(metrics.shards.iter().all(|s| s.model_version == 1), "no shard committed");
    router.open_session(SessionConfig::new(11)).unwrap();
    router.submit(11, frames[0][0].clone()).unwrap();
    let after = router.drain().unwrap().responses;
    assert_eq!(before[0].joints, after[0].joints, "an aborted swap must not change predictions");
    assert_ne!(router.shard_of(10), router.shard_of(11), "the probe covers two distinct shards");

    // The served responses carry the committed version.
    assert!(before[0].model_version == 1 && after[0].model_version == 1);
    router.shutdown();
    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}

#[test]
fn fan_out_plan_artifact_swap_matches_the_donor_across_shards() {
    let dir = std::env::temp_dir().join("fuse_cluster_plan_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("donor.fplan");
    let bad = dir.join("bad.fplan");

    let donor =
        ServeEngine::new(build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(), ServeConfig::default())
            .unwrap();
    donor.export_plan(&good).unwrap();
    std::fs::write(&bad, b"FPLNgarbage").unwrap();

    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
    let mut router =
        ClusterRouter::new(build_mars_cnn(&ModelConfig::tiny(), 7).unwrap(), config).unwrap();
    router.open_session(SessionConfig::new(0)).unwrap();
    router.open_session(SessionConfig::new(1)).unwrap();

    // The artifact commits on every shard together, no recompilation.
    let swap = router.hot_swap_plan(&good).unwrap();
    assert_eq!(swap.model_name, "donor", "the swap is named after the artifact file");
    assert_eq!(swap.version, 1);
    let metrics = router.metrics().unwrap();
    assert!(metrics.shards.iter().all(|s| s.model_version == 1), "all shards moved together");

    // Every shard now serves the donor's exported plan: the cluster's
    // responses must be bit-identical to a lone donor engine's.
    let frames = session_streams(2, 1);
    router.submit(0, frames[0][0].clone()).unwrap();
    router.submit(1, frames[1][0].clone()).unwrap();
    let responses = router.drain().unwrap().responses;

    let mut reference =
        ServeEngine::new(build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(), ServeConfig::default())
            .unwrap();
    for (i, id) in [0u64, 1].into_iter().enumerate() {
        reference.open_session(SessionConfig::new(id)).unwrap();
        reference.submit(id, frames[i][0].clone()).unwrap();
    }
    reference.step().unwrap();
    let expected = reference.take_responses();
    assert_eq!(responses.len(), 2);
    for (got, want) in responses.iter().zip(&expected) {
        assert_eq!(
            got.joints, want.joints,
            "plan-artifact shards must match the donor bit for bit"
        );
    }

    // A corrupt artifact aborts everywhere — all-or-nothing, like checkpoints.
    let err = router.hot_swap_plan(&bad).unwrap_err();
    assert!(matches!(err, ClusterError::SwapAborted { .. }), "got {err:?}");
    let metrics = router.metrics().unwrap();
    assert!(metrics.shards.iter().all(|s| s.model_version == 1), "no shard committed");
    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adapted_sessions_keep_private_models_across_cluster_swaps() {
    let dir = std::env::temp_dir().join("fuse_cluster_adapt_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    let donor =
        ServeEngine::new(build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(), ServeConfig::default())
            .unwrap();
    donor.save_checkpoint("donor", &path).unwrap();

    // Two identically seeded routers running the same workload; only one
    // hot-swaps. The adapted session's private model must be unaffected by
    // the swap, while the base-model session must see the new weights.
    let data = encoded();
    let frames = session_streams(2, 1);
    let run = |swap: bool| {
        let model = build_mars_cnn(&ModelConfig::tiny(), 33).unwrap();
        let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
        let mut router = ClusterRouter::new(model, config).unwrap();
        router.open_session(SessionConfig::new(0)).unwrap();
        router.open_session(SessionConfig::new(1)).unwrap();
        router.adapt_session(1, &data, &quick_finetune()).unwrap();
        if swap {
            router.hot_swap(&path).unwrap();
        }
        router.submit(0, frames[0][0].clone()).unwrap();
        router.submit(1, frames[1][0].clone()).unwrap();
        let responses = router.drain().unwrap().responses;
        router.shutdown();
        responses
    };
    let unswapped = run(false);
    let swapped = run(true);

    assert!(swapped[1].adapted, "session 1 keeps serving from its private model");
    assert_eq!(unswapped[1].joints, swapped[1].joints, "the private model survives the swap");
    assert_ne!(unswapped[0].joints, swapped[0].joints, "the base session sees the new weights");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unserved_frames_are_returned_on_close_and_counted() {
    let frames = &session_streams(1, 4)[0];
    let mut router = backpressure_router(BackpressurePolicy::Block, 8);
    flood(&mut router, frames);
    let closed = router.close_session(1).unwrap();
    assert_eq!(closed.unserved_frames, [0, 1, 2, 3], "queued work is reported, not lost");
    assert_eq!(closed.shard, 1);
    assert!(router.drain().unwrap().responses.is_empty());
    router.shutdown();
}
