//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the API this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, [`any`], and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the ordinary assert
//!   message; the run is deterministic, so the case is reproducible.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of its
//!   fully-qualified name, so runs are stable across processes and machines.
//! * **Case counts honour the environment.** `PROPTEST_CASES` overrides the
//!   configured count outright, and when `CI` is set the count is capped so
//!   pipelines stay fast (see [`resolve_cases`]).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Maximum cases per test when `CI` is set and `PROPTEST_CASES` is not.
const CI_CASE_CAP: u32 = 16;

/// Resolves the effective case count for a test run.
///
/// Priority: `PROPTEST_CASES` (absolute override) > `CI` (cap at
/// `CI_CASE_CAP`) > the configured count.
pub fn resolve_cases(configured: u32) -> u32 {
    if let Ok(env) = std::env::var("PROPTEST_CASES") {
        if let Ok(n) = env.trim().parse::<u32>() {
            return n.max(1);
        }
    }
    if std::env::var_os("CI").is_some() {
        configured.min(CI_CASE_CAP)
    } else {
        configured
    }
}

/// Builds the deterministic RNG for a named test.
///
/// The seed is an FNV-1a hash of the test's fully-qualified name, so every
/// test gets an independent but reproducible stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values for which `predicate` holds, retrying up to a bound.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, predicate, whence }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    predicate: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($T:ident => $idx:tt),+)),*) => {$(
        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A => 0, B => 1),
    (A => 0, B => 1, C => 2),
    (A => 0, B => 1, C => 2, D => 3),
    (A => 0, B => 1, C => 2, D => 3, E => 4),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        // Finite, sign-symmetric values; the workspace's properties assume
        // finite inputs.
        (rng.gen::<f32>() - 0.5) * 2.0e3
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        (rng.gen::<f64>() - 0.5) * 2.0e3
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::{Range, RangeInclusive};

    use rand::rngs::StdRng;
    use rand::Rng;

    use super::Strategy;

    /// Accepted size specifications for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max: range.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange { min: *range.start(), max: *range.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` or `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    pub mod prop {
        //! Mirror of the real crate's `prelude::prop` namespace.
        pub use crate::collection;
    }
}

/// Defines a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// evaluates the body for `cases` generated inputs (see [`resolve_cases`]).
#[macro_export]
macro_rules! proptest {
    (@cfg($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::resolve_cases(config.cases);
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        let mut c = crate::test_rng("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut diff = false;
        for _ in 0..4 {
            diff |= a.next_u64() != c.next_u64();
        }
        assert!(diff);
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_rng("sizes");
        let exact = prop::collection::vec(0.0f32..1.0, 7);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 7);
        let ranged = prop::collection::vec(0.0f32..1.0, 2..5);
        for _ in 0..50 {
            let len = Strategy::generate(&ranged, &mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: ranges stay in bounds, tuples and maps compose.
        #[test]
        fn generated_values_respect_strategies(
            x in -5.0f32..5.0,
            n in 1usize..9,
            pair in (0u64..10, 0u64..10),
            mapped in (0usize..4).prop_map(|i| i * 2),
            flag in any::<bool>(),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(mapped % 2 == 0 && mapped <= 6);
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    proptest! {
        /// Default-config form (no inner attribute) also expands.
        #[test]
        fn default_config_form_works(v in prop::collection::vec(0.0f32..1.0, 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
