//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored value-model `serde` crate, parsing the item's token stream by
//! hand (no `syn`/`quote` available offline). Supported shapes are the ones
//! this workspace uses:
//!
//! * structs with named fields,
//! * enums with unit variants (including explicit discriminants), and
//! * enums with struct variants (externally tagged, like real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` or `enum` item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant: unit (`fields == None`) or struct-like.
struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected item name")?;
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive stand-in: generic type `{name}` is unsupported"));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde_derive stand-in: `{name}` must have a braced body (tuple/unit items unsupported)"
            ))
        }
    };

    match keyword.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = ident_at(&tokens, i).ok_or("expected field name")?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        skip_until_comma(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected variant name")?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                Some(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde_derive stand-in: tuple variant `{name}` is unsupported"
                ));
            }
            _ => None,
        };
        // Skip an explicit discriminant (`= 3`) and the trailing comma.
        skip_until_comma(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances past every token up to and including the next top-level comma.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            if p.as_char() == ',' {
                *i += 1;
                return;
            }
        }
        *i += 1;
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Some(fields) => {
                            let bindings = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Map(vec![(\n\
                                     ::std::string::String::from({vname:?}),\n\
                                     ::serde::Value::Map(vec![{entries}]),\n\
                                 )]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(value, {name:?}, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                .map(|(vname, fields)| {
                    let scope = format!("{name}::{vname}");
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::field(inner, {scope:?}, {f:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(format!(\n\
                                 \"expected variant tag for {name}, found {{}}\", ::serde::kind_name(other)))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
