//! Offline stand-in for the `serde_json` crate.
//!
//! Provides [`to_string`] and [`from_str`] over the vendored `serde` value
//! model: a compact JSON writer and a recursive-descent JSON parser. This is
//! enough for the workspace's checkpoint and dataset (de)serialization.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error produced while encoding or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// A JSON-specific result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// This stand-in writes non-finite floats as `null` instead of failing, so
/// encoding itself is infallible; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing input, or a shape mismatch
/// between the JSON and the target type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            out.push_str(&v.to_string());
        }
        Value::U64(v) => {
            out.push_str(&v.to_string());
        }
        Value::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip float formatting is valid JSON,
                // except that whole numbers print without a fraction — which
                // JSON also allows.
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<()> {
        let c = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect a trailing \uXXXX low surrogate.
                    if !(self.eat_literal("\\u")) {
                        return Err(Error::new("unpaired surrogate in \\u escape"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate in \\u escape"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::new("invalid unicode scalar in \\u escape"))?,
                );
            }
            other => {
                return Err(Error::new(format!("invalid escape character `{}`", other as char)))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f32).unwrap(), "-1.5");
        assert_eq!(from_str::<f32>("-1.5").unwrap(), -1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }

    #[test]
    fn vectors_round_trip_exactly() {
        let v: Vec<f32> = vec![0.1, -2.75, 3.0e-7, 123456.78, f32::MIN_POSITIVE];
        let json = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_round_trips_losslessly() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = String::from("line\nquote\"backslash\\tab\tunicode \u{1F600} end");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Escaped unicode input parses too.
        let parsed: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, "\u{1F600}");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<f32>>("[1,").is_err());
        assert!(from_str::<f32>("1.5 garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_encode_as_null_and_decode_as_nan() {
        let json = to_string(&f32::NAN).unwrap();
        assert_eq!(json, "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }
}
