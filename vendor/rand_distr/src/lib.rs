//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the subset of the 0.4 API this workspace uses: the
//! [`Distribution`] trait plus [`Normal`] (Box–Muller) and [`Uniform`]
//! distributions over `f32`/`f64`.

use std::fmt;

use rand::RngCore;

/// Types that can generate samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when constructing a [`Normal`] with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean is not finite.
    MeanTooSmall,
    /// The standard deviation is negative or not finite.
    BadVariance,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Conversions between a float type and `f64`, for generic distributions.
pub trait Float: Copy {
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
}

impl Float for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl Float for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

/// The normal (Gaussian) distribution `N(mean, std^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] when `mean` is not finite or `std_dev` is
    /// negative or not finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.to_f64().is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> F {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller in f64; one sample per draw keeps the distribution
        // stateless (no cached spare), which the Distribution API requires.
        let u1 = loop {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u > 0.0 {
                break u;
            }
        };
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// The uniform distribution over an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Uniform over the half-open interval `[low, high)`.
    pub fn new(low: F, high: F) -> Self {
        Uniform { low, high }
    }

    /// Uniform over the closed interval `[low, high]`.
    ///
    /// With floating-point sampling the closed and half-open variants are
    /// indistinguishable in practice; both map a unit sample affinely.
    pub fn new_inclusive(low: F, high: F) -> Self {
        Uniform { low, high }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let (lo, hi) = (self.low.to_f64(), self.high.to_f64());
        F::from_f64(lo + unit * (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_matches_moments() {
        let dist = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let dist = Uniform::new_inclusive(-2.0f32, 5.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5000 {
            let x = dist.sample(&mut rng);
            assert!((-2.0..=5.0).contains(&x));
        }
    }
}
