//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the 0.5 API the bench harnesses use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop: a short warm-up
//! estimates the per-iteration cost, then a timed batch sized to the target
//! measurement window produces the reported mean. No statistics, plots or
//! baselines — but the numbers are honest and the output is one line per
//! benchmark, which is what CI and quick kernel comparisons need.
//!
//! Environment knobs: `CRITERION_MEASURE_MS` (measurement window per
//! benchmark, default 300 ms; CI sets a small value to smoke-run cheaply).

use std::fmt;
use std::time::{Duration, Instant};

/// Formatted identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
    measure_window: Duration,
}

impl Bencher {
    /// Measures `routine`, running it enough times to fill the measurement
    /// window, and records the total elapsed time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: estimate per-iteration cost with an adaptive doubling loop.
        let warmup_target = self.measure_window.min(Duration::from_millis(100));
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= warmup_target || batch >= 1 << 40 {
                break elapsed / (batch as u32).max(1);
            }
            batch = batch.saturating_mul(2);
        };

        // Measurement: one batch sized to the window.
        let iterations = if per_iter.is_zero() {
            batch
        } else {
            (self.measure_window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 40) as u64
        };
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(routine());
        }
        self.measured = Some((start.elapsed(), iterations));
    }
}

fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

fn human_time(per_iter_ns: f64) -> String {
    if per_iter_ns < 1_000.0 {
        format!("{per_iter_ns:.1} ns")
    } else if per_iter_ns < 1_000_000.0 {
        format!("{:.2} µs", per_iter_ns / 1_000.0)
    } else if per_iter_ns < 1_000_000_000.0 {
        format!("{:.2} ms", per_iter_ns / 1_000_000.0)
    } else {
        format!("{:.3} s", per_iter_ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { measured: None, measure_window: measure_window() };
    f(&mut bencher);
    match bencher.measured {
        Some((elapsed, iterations)) => {
            let per_iter_ns = elapsed.as_nanos() as f64 / iterations as f64;
            println!(
                "{name:<48} time: {:>12}   ({iterations} iterations)",
                human_time(per_iter_ns)
            );
        }
        None => println!("{name:<48} (no measurement recorded)"),
    }
}

/// The benchmark driver handed to every registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut |b| f(b, input));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut b = Bencher { measured: None, measure_window: Duration::from_millis(5) };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        let (elapsed, iterations) = b.measured.expect("measurement recorded");
        assert!(iterations >= 1);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("fft", 256).to_string(), "fft/256");
    }

    #[test]
    fn human_time_picks_sensible_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
    }
}
