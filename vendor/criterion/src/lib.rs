//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the 0.5 API the bench harnesses use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a calibrated wall-clock loop: a short warm-up estimates the
//! per-iteration cost, then the measurement window is split into several
//! equally sized batches and the reported figure is the **median** of the
//! per-batch means — robust against scheduler noise without criterion's full
//! statistics machinery. Output is one line per benchmark, which is what CI
//! and quick kernel comparisons need.
//!
//! Environment knobs:
//!
//! * `CRITERION_MEASURE_MS` — measurement window per benchmark, default
//!   300 ms; CI sets a small value to smoke-run cheaply.
//! * `CRITERION_SAMPLES` — number of batches the window is split into
//!   (default 7, minimum 3). The median is taken across batches.
//! * `CRITERION_JSON` — when set, every benchmark appends one JSON line
//!   (`{"name":...,"median_ns":...,"iterations":...,"samples":...}`) to the
//!   file at this path. `fuse-bench`'s `bench_report` binary folds these
//!   lines into the `BENCH_pr.json` telemetry artifact CI uploads.

use std::fmt;
use std::io::Write;
use std::time::{Duration, Instant};

/// Formatted identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One completed measurement: per-batch mean times and total iterations.
struct Measurement {
    /// Mean ns/iteration of each sample batch.
    sample_means_ns: Vec<f64>,
    /// Total iterations across all sample batches.
    iterations: u64,
}

impl Measurement {
    /// Median of the per-batch means, in nanoseconds per iteration.
    fn median_ns(&self) -> f64 {
        let mut sorted = self.sample_means_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    measured: Option<Measurement>,
    measure_window: Duration,
    samples: usize,
}

impl Bencher {
    /// Measures `routine`: a warm-up estimates the per-iteration cost, then
    /// the measurement window is split into `samples` equal batches whose
    /// per-iteration means feed the reported median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: estimate per-iteration cost with an adaptive doubling loop.
        let warmup_target = self.measure_window.min(Duration::from_millis(100));
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= warmup_target || batch >= 1 << 40 {
                break elapsed / (batch as u32).max(1);
            }
            batch = batch.saturating_mul(2);
        };

        // Measurement: `samples` batches, each sized to an equal share of the
        // window, so one preempted batch cannot skew the reported median.
        let batch_window = self.measure_window / self.samples as u32;
        let batch_iterations = if per_iter.is_zero() {
            batch.max(1)
        } else {
            (batch_window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 40) as u64
        };
        let mut sample_means_ns = Vec::with_capacity(self.samples);
        let mut iterations = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch_iterations {
                std::hint::black_box(routine());
            }
            sample_means_ns.push(start.elapsed().as_nanos() as f64 / batch_iterations as f64);
            iterations += batch_iterations;
        }
        self.measured = Some(Measurement { sample_means_ns, iterations });
    }
}

fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

fn sample_count() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(7)
        .max(3)
}

/// Minimal JSON string escaping for benchmark names (quotes and backslashes;
/// names are plain identifiers in practice).
fn json_escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Appends one JSON line per measurement to the `CRITERION_JSON` file, if
/// configured. Errors are reported to stderr but never fail the bench run.
fn append_json_line(name: &str, measurement: &Measurement) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"{}\",\"median_ns\":{:.3},\"iterations\":{},\"samples\":{}}}\n",
        json_escape(name),
        measurement.median_ns(),
        measurement.iterations,
        measurement.sample_means_ns.len(),
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(err) = result {
        eprintln!("criterion: failed to append to CRITERION_JSON ({path}): {err}");
    }
}

fn human_time(per_iter_ns: f64) -> String {
    if per_iter_ns < 1_000.0 {
        format!("{per_iter_ns:.1} ns")
    } else if per_iter_ns < 1_000_000.0 {
        format!("{:.2} µs", per_iter_ns / 1_000.0)
    } else if per_iter_ns < 1_000_000_000.0 {
        format!("{:.2} ms", per_iter_ns / 1_000_000.0)
    } else {
        format!("{:.3} s", per_iter_ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher =
        Bencher { measured: None, measure_window: measure_window(), samples: sample_count() };
    f(&mut bencher);
    match bencher.measured {
        Some(measurement) => {
            let median_ns = measurement.median_ns();
            println!(
                "{name:<48} time: {:>12}   ({} iterations, median of {})",
                human_time(median_ns),
                measurement.iterations,
                measurement.sample_means_ns.len(),
            );
            append_json_line(name, &measurement);
        }
        None => println!("{name:<48} (no measurement recorded)"),
    }
}

/// The benchmark driver handed to every registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut |b| f(b, input));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut b =
            Bencher { measured: None, measure_window: Duration::from_millis(5), samples: 3 };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        let measurement = b.measured.expect("measurement recorded");
        assert!(measurement.iterations >= 3);
        assert_eq!(measurement.sample_means_ns.len(), 3);
        assert!(measurement.median_ns() >= 0.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let odd = Measurement { sample_means_ns: vec![10.0, 1000.0, 12.0], iterations: 3 };
        assert_eq!(odd.median_ns(), 12.0);
        let even = Measurement { sample_means_ns: vec![10.0, 20.0, 1000.0, 12.0], iterations: 4 };
        assert_eq!(even.median_ns(), 16.0);
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(json_escape("gemm/64"), "gemm/64");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("fft", 256).to_string(), "fft/256");
    }

    #[test]
    fn human_time_picks_sensible_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
    }
}
