//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements exactly the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! generator from upstream's ChaCha12, but with the same contract the
//! workspace relies on: deterministic per seed, uniform, and fast.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (the high half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width range: every u64 is in range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64 - start as i64) as u64 + 1;
                (start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_int_sample_range!(isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // guaranteeing a non-zero state for every seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    use super::RngCore;

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(5..10usize);
            assert!((5..10).contains(&i));
            let f = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
