//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy streaming framework; this vendored
//! replacement trades that generality for a tiny, dependency-free core that
//! supports exactly what the workspace needs: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, and JSON round-trips through
//! the sibling `serde_json` stand-in.
//!
//! Serialization goes through an owned [`Value`] tree (the same data model
//! JSON uses), so a type is serializable if it can produce a `Value` and
//! deserializable if it can be rebuilt from one.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit an `i64`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (order preserved for stable output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries when this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the sequence elements when this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field in a map value.
    pub fn get_field<'a>(&'a self, name: &str) -> Option<&'a Value> {
        self.as_map()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the serde data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the serde data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetches a required struct field from a map value (used by the derive).
///
/// # Errors
///
/// Returns [`Error`] when `value` is not a map or lacks the field.
pub fn field<'a>(value: &'a Value, type_name: &str, name: &str) -> Result<&'a Value, Error> {
    match value {
        Value::Map(_) => value
            .get_field(name)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` for {type_name}"))),
        other => {
            Err(Error::custom(format!("expected map for {type_name}, found {}", kind_name(other))))
        }
    }
}

/// Human-readable name of a value's kind, for error messages.
pub fn kind_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and std containers.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", kind_name(other)))),
        }
    }
}

macro_rules! serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            kind_name(other)
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serde_signed!(i8, i16, i32, i64, isize);

macro_rules! serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) if *v >= 0 => *v as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            kind_name(other)
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    // JSON has no NaN/inf literal; non-finite floats are
                    // written as null and come back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", kind_name(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, found {}", kind_name(other)))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq().ok_or_else(|| {
            Error::custom(format!("expected sequence, found {}", kind_name(value)))
        })?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected sequence of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| Error::custom("array length mismatch after parsing"))
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected sequence, found {}", kind_name(value)))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        // Sort for deterministic output: HashMap iteration order is random.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, found {}", kind_name(value))))?;
        entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [[1.0f32, 2.0, 3.0]; 4];
        assert_eq!(<[[f32; 3]; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn cross_width_integer_coercion() {
        // A u64-encoded small number deserializes as i64 and vice versa.
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
        assert_eq!(u64::from_value(&Value::I64(9)).unwrap(), 9);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_value(&Value::I64(1)).is_err());
        assert!(Vec::<f32>::from_value(&Value::Bool(false)).is_err());
        assert!(<[f32; 2]>::from_value(&vec![1.0f32].to_value()).is_err());
    }
}
