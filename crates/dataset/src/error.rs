//! Error type for the dataset pipeline.

use std::error::Error;
use std::fmt;

use fuse_tensor::TensorError;

/// Error returned by fallible dataset operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The synthesis or split configuration is invalid.
    InvalidConfig(String),
    /// A label vector did not have the expected 57 values.
    InvalidLabel {
        /// Number of values found.
        found: usize,
    },
    /// The requested split produced an empty partition.
    EmptySplit(String),
    /// Dataset (de)serialisation failed.
    Io(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Tensor(e) => write!(f, "tensor error: {e}"),
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset configuration: {msg}"),
            DatasetError::InvalidLabel { found } => {
                write!(f, "label vector has {found} values, expected 57")
            }
            DatasetError::EmptySplit(which) => {
                write!(f, "split produced an empty partition: {which}")
            }
            DatasetError::Io(msg) => write!(f, "dataset io error: {msg}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DatasetError {
    fn from(e: TensorError) -> Self {
        DatasetError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(DatasetError::from(TensorError::EmptyTensor).source().is_some());
        assert!(DatasetError::InvalidLabel { found: 3 }.to_string().contains("57"));
        assert!(DatasetError::EmptySplit("train".into()).to_string().contains("train"));
    }
}
