//! Synthesis of the MARS-like dataset.

use fuse_radar::{FastScatterModel, RadarConfig, Scatterer, Scene};
use fuse_skeleton::{body_surface_points, Movement, MovementAnimator, Subject};
use serde::{Deserialize, Serialize};

use crate::error::DatasetError;
use crate::frame::{Dataset, LabeledFrame};
use crate::Result;

/// Configuration for dataset synthesis.
///
/// The defaults mirror the MARS collection protocol: four subjects, ten
/// movements, 10 Hz frames. The number of frames per `(subject, movement)`
/// sequence controls the overall dataset size (the real MARS dataset has
/// ~1,000 frames per sequence, i.e. ~40k frames total).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    /// Subject profile indices to include (0–3).
    pub subjects: Vec<usize>,
    /// Movements to include.
    pub movements: Vec<Movement>,
    /// Number of frames per `(subject, movement)` sequence.
    pub frames_per_sequence: usize,
    /// Radar frame rate in Hz (the paper uses 10 Hz).
    pub frame_rate_hz: f32,
    /// Radar configuration used by the point-cloud model.
    pub radar: RadarConfig,
    /// Surface sampling density (scatterers per bone).
    pub points_per_bone: usize,
    /// Master random seed.
    pub seed: u64,
}

impl SynthesisConfig {
    /// Paper-scale configuration: 4 subjects × 10 movements × 1,000 frames
    /// ≈ 40k frames (use with `FUSE_FULL_EXPERIMENT=1`).
    pub fn full() -> Self {
        SynthesisConfig {
            subjects: vec![0, 1, 2, 3],
            movements: Movement::ALL.to_vec(),
            frames_per_sequence: 1000,
            frame_rate_hz: 10.0,
            radar: RadarConfig::iwr1443_indoor(),
            points_per_bone: 4,
            seed: 2022,
        }
    }

    /// Quick configuration used by the default experiment profile:
    /// 4 subjects × 10 movements × 120 frames = 4,800 frames.
    pub fn quick() -> Self {
        SynthesisConfig { frames_per_sequence: 120, ..SynthesisConfig::full() }
    }

    /// Tiny configuration for unit tests and doc examples
    /// (2 subjects × 2 movements × 30 frames).
    pub fn tiny() -> Self {
        SynthesisConfig {
            subjects: vec![0, 1],
            movements: vec![Movement::Squat, Movement::RightLimbExtension],
            frames_per_sequence: 30,
            frame_rate_hz: 10.0,
            radar: RadarConfig::iwr1443_indoor(),
            points_per_bone: 3,
            seed: 7,
        }
    }

    /// Total number of frames this configuration will produce.
    pub fn total_frames(&self) -> usize {
        self.subjects.len() * self.movements.len() * self.frames_per_sequence
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for empty subject/movement
    /// lists, zero-length sequences or a non-positive frame rate.
    pub fn validate(&self) -> Result<()> {
        if self.subjects.is_empty() || self.movements.is_empty() {
            return Err(DatasetError::InvalidConfig(
                "subjects and movements must be non-empty".into(),
            ));
        }
        if self.subjects.iter().any(|&s| s >= 4) {
            return Err(DatasetError::InvalidConfig("subject indices must be in 0..4".into()));
        }
        if self.frames_per_sequence == 0 {
            return Err(DatasetError::InvalidConfig("frames_per_sequence must be nonzero".into()));
        }
        if self.frame_rate_hz <= 0.0 {
            return Err(DatasetError::InvalidConfig("frame_rate_hz must be positive".into()));
        }
        if self.points_per_bone == 0 {
            return Err(DatasetError::InvalidConfig("points_per_bone must be nonzero".into()));
        }
        self.radar.validate().map_err(|e| DatasetError::InvalidConfig(format!("radar config: {e}")))
    }
}

/// Generates a MARS-like dataset from the skeleton and radar models.
#[derive(Debug, Clone)]
pub struct MarsSynthesizer {
    config: SynthesisConfig,
}

impl MarsSynthesizer {
    /// Creates a synthesizer for the given configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        MarsSynthesizer { config }
    }

    /// The synthesis configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Generates the dataset.
    ///
    /// Every frame is produced by animating the subject's skeleton, placing
    /// surface scatterers on the body segments and sampling a sparse point
    /// cloud with the calibrated [`FastScatterModel`]. Labels are the 57
    /// joint coordinates of the same instant. The result is deterministic for
    /// a given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn generate(&self) -> Result<Dataset> {
        self.config.validate()?;
        let model = FastScatterModel::new(self.config.radar);
        let mut frames = Vec::with_capacity(self.config.total_frames());

        for &subject_id in &self.config.subjects {
            let subject = Subject::profile(subject_id);
            for &movement in &self.config.movements {
                let sequence_seed = self
                    .config
                    .seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((subject_id as u64) << 32 | movement.index() as u64);
                let animator = MovementAnimator::new(subject, movement, self.config.frame_rate_hz)
                    .with_seed(sequence_seed);
                let samples =
                    animator.sample_frames_with_velocities(0.0, self.config.frames_per_sequence);

                for (index, (skeleton, velocities)) in samples.iter().enumerate() {
                    let surface =
                        body_surface_points(skeleton, velocities, self.config.points_per_bone);
                    let scene: Scene = surface
                        .iter()
                        .map(|p| Scatterer::new(p.position, p.velocity, p.reflectivity))
                        .collect();
                    let frame_seed =
                        sequence_seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    let mut cloud = model.sample(&scene, frame_seed);
                    cloud.index = index;
                    cloud.timestamp_s = index as f64 / self.config.frame_rate_hz as f64;
                    frames.push(LabeledFrame::new(
                        cloud,
                        skeleton.to_label_vec(),
                        subject_id,
                        movement,
                        index,
                    )?);
                }
            }
        }
        Ok(Dataset::from_frames(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_has_expected_structure() {
        let config = SynthesisConfig::tiny();
        let dataset = MarsSynthesizer::new(config.clone()).generate().unwrap();
        assert_eq!(dataset.len(), config.total_frames());
        assert_eq!(dataset.subjects(), vec![0, 1]);
        assert_eq!(dataset.movements().len(), 2);
        // Sequences are complete and ordered.
        let seq = dataset.sequence(0, Movement::Squat);
        assert_eq!(seq.len(), 30);
        for (i, f) in seq.iter().enumerate() {
            assert_eq!(f.sequence_index, i);
        }
    }

    #[test]
    fn frames_are_sparse_like_mmwave() {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let mean_points = dataset.mean_points_per_frame();
        // The feature maps are padded to 64 slots; actual detections per
        // frame average ~32 (see FastScatterModel). Allow a generous band.
        assert!(mean_points > 15.0 && mean_points < 80.0, "mean points {mean_points}");
    }

    #[test]
    fn labels_are_plausible_joint_coordinates() {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        for frame in dataset.iter().take(50) {
            assert_eq!(frame.label.len(), 57);
            // Depth (y) coordinates should be near the stand distance; height
            // (z) within human range.
            for joint in 0..19 {
                let y = frame.label[joint * 3 + 1];
                let z = frame.label[joint * 3 + 2];
                assert!(y > 0.5 && y < 3.5, "joint depth {y}");
                assert!(z > -0.2 && z < 2.2, "joint height {z}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let b = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        assert_eq!(a, b);
        let mut different = SynthesisConfig::tiny();
        different.seed += 1;
        let c = MarsSynthesizer::new(different).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn point_cloud_tracks_the_subject_laterally() {
        // Use two subjects standing at different lateral offsets and check the
        // point-cloud centroids differ accordingly.
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let s0_frames = dataset.filter(|f| f.subject_id == 0);
        let s1_frames = dataset.filter(|f| f.subject_id == 1);
        let centroid_x = |d: &Dataset| {
            let mut sum = 0.0f32;
            let mut count = 0usize;
            for f in d.iter() {
                if let Some(c) = f.cloud.centroid() {
                    sum += c[0];
                    count += 1;
                }
            }
            sum / count as f32
        };
        let dx = (centroid_x(&s0_frames) - Subject::profile(0).lateral_offset_m).abs();
        let dx1 = (centroid_x(&s1_frames) - Subject::profile(1).lateral_offset_m).abs();
        assert!(dx < 0.15, "subject 0 centroid offset {dx}");
        assert!(dx1 < 0.15, "subject 1 centroid offset {dx1}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = SynthesisConfig::tiny();
        config.subjects.clear();
        assert!(MarsSynthesizer::new(config).generate().is_err());

        let mut config = SynthesisConfig::tiny();
        config.frames_per_sequence = 0;
        assert!(config.validate().is_err());

        let mut config = SynthesisConfig::tiny();
        config.subjects = vec![9];
        assert!(config.validate().is_err());

        let mut config = SynthesisConfig::tiny();
        config.frame_rate_hz = 0.0;
        assert!(config.validate().is_err());

        let mut config = SynthesisConfig::tiny();
        config.points_per_bone = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn full_and_quick_configs_scale_as_documented() {
        assert_eq!(SynthesisConfig::full().total_frames(), 40_000);
        assert_eq!(SynthesisConfig::quick().total_frames(), 4_800);
        SynthesisConfig::full().validate().unwrap();
        SynthesisConfig::quick().validate().unwrap();
    }
}
