//! Saving and loading datasets.
//!
//! Synthesising the full 40k-frame dataset takes a little while, so the
//! experiment harness can persist it to disk and reload it across runs.

use std::fs;
use std::path::Path;

use crate::error::DatasetError;
use crate::frame::Dataset;
use crate::Result;

/// Saves a dataset as JSON.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] when encoding or writing fails.
pub fn save_dataset_json(dataset: &Dataset, path: &Path) -> Result<()> {
    let json = serde_json::to_string(dataset)
        .map_err(|e| DatasetError::Io(format!("encode dataset: {e}")))?;
    fs::write(path, json).map_err(|e| DatasetError::Io(format!("write {}: {e}", path.display())))
}

/// Loads a dataset previously saved with [`save_dataset_json`].
///
/// # Errors
///
/// Returns [`DatasetError::Io`] when reading or decoding fails.
pub fn load_dataset_json(path: &Path) -> Result<Dataset> {
    let json = fs::read_to_string(path)
        .map_err(|e| DatasetError::Io(format!("read {}: {e}", path.display())))?;
    serde_json::from_str(&json).map_err(|e| DatasetError::Io(format!("decode dataset: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MarsSynthesizer, SynthesisConfig};

    #[test]
    fn save_and_load_round_trips() {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let dir = std::env::temp_dir().join("fuse_dataset_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        save_dataset_json(&dataset, &path).unwrap();
        let restored = load_dataset_json(&path).unwrap();
        assert_eq!(restored, dataset);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_on_missing_or_corrupt_file() {
        assert!(load_dataset_json(Path::new("/nonexistent/fuse-dataset.json")).is_err());
        let dir = std::env::temp_dir().join("fuse_dataset_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(load_dataset_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
