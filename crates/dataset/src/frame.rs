//! Labelled frames and dataset containers.

use fuse_radar::PointCloudFrame;
use fuse_skeleton::Movement;
use serde::{Deserialize, Serialize};

use crate::error::DatasetError;
use crate::Result;

/// Dimensionality of the label vector: 19 joints × 3 coordinates.
pub const LABEL_DIM: usize = 57;

/// One labelled sample: a radar point-cloud frame plus the 19-joint ground
/// truth that a Kinect V2 would have produced for the same instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledFrame {
    /// The radar point cloud for this frame.
    pub cloud: PointCloudFrame,
    /// Ground-truth joint coordinates, `(x, y, z)` interleaved, 57 values in
    /// metres.
    pub label: Vec<f32>,
    /// Subject performing the movement (0–3).
    pub subject_id: usize,
    /// The rehabilitation movement being performed.
    pub movement: Movement,
    /// Index of this frame within its `(subject, movement)` sequence.
    pub sequence_index: usize,
}

impl LabeledFrame {
    /// Creates a labelled frame, validating the label dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidLabel`] unless the label has 57 values.
    pub fn new(
        cloud: PointCloudFrame,
        label: Vec<f32>,
        subject_id: usize,
        movement: Movement,
        sequence_index: usize,
    ) -> Result<Self> {
        if label.len() != LABEL_DIM {
            return Err(DatasetError::InvalidLabel { found: label.len() });
        }
        Ok(LabeledFrame { cloud, label, subject_id, movement, sequence_index })
    }

    /// Number of radar points in this frame.
    pub fn point_count(&self) -> usize {
        self.cloud.len()
    }
}

/// A collection of labelled frames.
///
/// Frames are stored grouped by `(subject, movement)` sequence and ordered by
/// `sequence_index` within each group, which is what the multi-frame fusion
/// step relies on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    frames: Vec<LabeledFrame>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset { frames: Vec::new() }
    }

    /// Creates a dataset from frames, sorting them into canonical
    /// `(subject, movement, sequence_index)` order.
    pub fn from_frames(mut frames: Vec<LabeledFrame>) -> Self {
        frames.sort_by_key(|f| (f.subject_id, f.movement.index(), f.sequence_index));
        Dataset { frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when the dataset has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The frames in canonical order.
    pub fn frames(&self) -> &[LabeledFrame] {
        &self.frames
    }

    /// Iterates over the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledFrame> {
        self.frames.iter()
    }

    /// Adds a frame, keeping canonical order.
    pub fn push(&mut self, frame: LabeledFrame) {
        self.frames.push(frame);
        self.frames.sort_by_key(|f| (f.subject_id, f.movement.index(), f.sequence_index));
    }

    /// Subject identifiers present in the dataset, sorted and deduplicated.
    pub fn subjects(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.frames.iter().map(|f| f.subject_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Movements present in the dataset, in dataset order.
    pub fn movements(&self) -> Vec<Movement> {
        let mut present: Vec<Movement> = Vec::new();
        for m in Movement::ALL {
            if self.frames.iter().any(|f| f.movement == m) {
                present.push(m);
            }
        }
        present
    }

    /// Returns a new dataset containing only the frames accepted by the
    /// predicate.
    pub fn filter(&self, predicate: impl Fn(&LabeledFrame) -> bool) -> Dataset {
        Dataset { frames: self.frames.iter().filter(|f| predicate(f)).cloned().collect() }
    }

    /// The frames of one `(subject, movement)` sequence, in temporal order.
    pub fn sequence(&self, subject_id: usize, movement: Movement) -> Vec<&LabeledFrame> {
        self.frames
            .iter()
            .filter(|f| f.subject_id == subject_id && f.movement == movement)
            .collect()
    }

    /// Merges two datasets into a new one.
    pub fn merged(&self, other: &Dataset) -> Dataset {
        let mut frames = self.frames.clone();
        frames.extend(other.frames.iter().cloned());
        Dataset::from_frames(frames)
    }

    /// Mean number of points per frame.
    pub fn mean_points_per_frame(&self) -> f32 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(|f| f.point_count() as f32).sum::<f32>() / self.frames.len() as f32
    }
}

impl FromIterator<LabeledFrame> for Dataset {
    fn from_iter<I: IntoIterator<Item = LabeledFrame>>(iter: I) -> Self {
        Dataset::from_frames(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_radar::RadarPoint;

    fn frame(subject: usize, movement: Movement, index: usize) -> LabeledFrame {
        let cloud = PointCloudFrame::new(index, index as f64 * 0.1, vec![RadarPoint::default(); 4]);
        LabeledFrame::new(cloud, vec![0.0; LABEL_DIM], subject, movement, index).unwrap()
    }

    #[test]
    fn label_dimension_is_validated() {
        let cloud = PointCloudFrame::default();
        assert!(matches!(
            LabeledFrame::new(cloud, vec![0.0; 56], 0, Movement::Squat, 0),
            Err(DatasetError::InvalidLabel { found: 56 })
        ));
    }

    #[test]
    fn from_frames_sorts_canonically() {
        let dataset = Dataset::from_frames(vec![
            frame(1, Movement::Squat, 5),
            frame(0, Movement::Squat, 3),
            frame(0, Movement::Squat, 1),
            frame(0, Movement::LeftFrontLunge, 0),
        ]);
        let order: Vec<(usize, usize, usize)> = dataset
            .frames()
            .iter()
            .map(|f| (f.subject_id, f.movement.index(), f.sequence_index))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn subjects_and_movements_are_deduplicated() {
        let dataset = Dataset::from_frames(vec![
            frame(2, Movement::Squat, 0),
            frame(2, Movement::Squat, 1),
            frame(0, Movement::LeftSideLunge, 0),
        ]);
        assert_eq!(dataset.subjects(), vec![0, 2]);
        assert_eq!(dataset.movements(), vec![Movement::Squat, Movement::LeftSideLunge]);
    }

    #[test]
    fn filter_and_sequence_access() {
        let dataset = Dataset::from_frames(vec![
            frame(0, Movement::Squat, 0),
            frame(0, Movement::Squat, 1),
            frame(1, Movement::Squat, 0),
            frame(0, Movement::LeftFrontLunge, 0),
        ]);
        let squats = dataset.filter(|f| f.movement == Movement::Squat);
        assert_eq!(squats.len(), 3);
        let seq = dataset.sequence(0, Movement::Squat);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[1].sequence_index, 1);
    }

    #[test]
    fn merge_and_statistics() {
        let a = Dataset::from_frames(vec![frame(0, Movement::Squat, 0)]);
        let b = Dataset::from_frames(vec![frame(1, Movement::Squat, 0)]);
        let merged = a.merged(&b);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.mean_points_per_frame(), 4.0);
        assert_eq!(Dataset::new().mean_points_per_frame(), 0.0);
    }

    #[test]
    fn collect_from_iterator() {
        let dataset: Dataset = (0..5).map(|i| frame(0, Movement::Squat, i)).collect();
        assert_eq!(dataset.len(), 5);
    }
}
