//! Dataset splits: the default per-movement 60/20/20 split and the
//! leave-one-out split used by the adaptation experiments (§4.3).

use fuse_skeleton::Movement;
use serde::{Deserialize, Serialize};

use crate::error::DatasetError;
use crate::frame::Dataset;
use crate::Result;

/// Train/validation/test ratios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitRatios {
    /// Fraction of frames assigned to the training split.
    pub train: f32,
    /// Fraction of frames assigned to the validation split.
    pub validation: f32,
    /// Fraction of frames assigned to the test split.
    pub test: f32,
}

impl SplitRatios {
    /// The paper's default split: 60 % train, 20 % validation, 20 % test.
    pub fn default_60_20_20() -> Self {
        SplitRatios { train: 0.6, validation: 0.2, test: 0.2 }
    }

    /// Validates that the ratios are positive and sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] otherwise.
    pub fn validate(&self) -> Result<()> {
        if self.train <= 0.0 || self.validation < 0.0 || self.test <= 0.0 {
            return Err(DatasetError::InvalidConfig("split ratios must be positive".into()));
        }
        let sum = self.train + self.validation + self.test;
        if (sum - 1.0).abs() > 1e-3 {
            return Err(DatasetError::InvalidConfig(format!(
                "split ratios sum to {sum}, expected 1.0"
            )));
        }
        Ok(())
    }
}

impl Default for SplitRatios {
    fn default() -> Self {
        SplitRatios::default_60_20_20()
    }
}

/// A dataset partitioned into train/validation/test subsets.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetSplit {
    /// Training frames.
    pub train: Dataset,
    /// Validation frames.
    pub validation: Dataset,
    /// Test frames.
    pub test: Dataset,
}

impl DatasetSplit {
    /// Total number of frames across the three partitions.
    pub fn total_len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }
}

/// Splits every `(subject, movement)` sequence individually into contiguous
/// train/validation/test segments ("each movement data is individually split
/// into 60 % training, 20 % validation, and 20 % test sets", §4.1).
///
/// Contiguous (rather than shuffled) segments are used so that the fused
/// multi-frame samples of the test segment never contain training frames —
/// shuffling frame-level assignments would leak information across splits
/// through the fusion window.
///
/// # Errors
///
/// Returns an error when the ratios are invalid or the dataset is empty.
pub fn per_movement_split(dataset: &Dataset, ratios: SplitRatios) -> Result<DatasetSplit> {
    ratios.validate()?;
    if dataset.is_empty() {
        return Err(DatasetError::EmptySplit("input dataset".into()));
    }
    let mut split = DatasetSplit::default();
    let mut train = Vec::new();
    let mut validation = Vec::new();
    let mut test = Vec::new();

    for subject in dataset.subjects() {
        for movement in dataset.movements() {
            let sequence = dataset.sequence(subject, movement);
            if sequence.is_empty() {
                continue;
            }
            let n = sequence.len();
            let train_end = ((n as f32 * ratios.train).round() as usize).min(n);
            let val_end = ((n as f32 * (ratios.train + ratios.validation)).round() as usize).min(n);
            for (i, frame) in sequence.into_iter().enumerate() {
                if i < train_end {
                    train.push(frame.clone());
                } else if i < val_end {
                    validation.push(frame.clone());
                } else {
                    test.push(frame.clone());
                }
            }
        }
    }
    split.train = Dataset::from_frames(train);
    split.validation = Dataset::from_frames(validation);
    split.test = Dataset::from_frames(test);
    if split.train.is_empty() {
        return Err(DatasetError::EmptySplit("train".into()));
    }
    if split.test.is_empty() {
        return Err(DatasetError::EmptySplit("test".into()));
    }
    Ok(split)
}

/// The worst-case adaptation split of §4.3.1: the training data excludes *all*
/// frames of one held-out movement and one held-out subject; the online data
/// `D_test` contains only the frames where the held-out subject performs the
/// held-out movement (an entirely unseen user-movement combination).
///
/// Frames involving the held-out subject *or* movement (but not both) are
/// discarded, so no information about either leaks into offline training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaveOneOutSplit {
    /// The movement excluded from offline training.
    pub held_out_movement: Movement,
    /// The subject excluded from offline training.
    pub held_out_subject: usize,
}

impl LeaveOneOutSplit {
    /// The exact configuration of the paper's §4.3 experiment: hold out the
    /// "right limb extension" movement and user 4 (index 3).
    pub fn paper_default() -> Self {
        LeaveOneOutSplit { held_out_movement: Movement::RightLimbExtension, held_out_subject: 3 }
    }

    /// Creates a split holding out the given movement and subject.
    pub fn new(held_out_movement: Movement, held_out_subject: usize) -> Self {
        LeaveOneOutSplit { held_out_movement, held_out_subject }
    }

    /// Applies the split, returning `(train, online)` datasets where `online`
    /// is the paper's `D_test` (seen only during fine-tuning and evaluation).
    ///
    /// # Errors
    ///
    /// Returns an error when either partition would be empty (e.g. the
    /// dataset does not contain the held-out combination at all).
    pub fn apply(&self, dataset: &Dataset) -> Result<(Dataset, Dataset)> {
        let held_movement = self.held_out_movement;
        let held_subject = self.held_out_subject;
        let train = dataset.filter(|f| f.movement != held_movement && f.subject_id != held_subject);
        let online =
            dataset.filter(|f| f.movement == held_movement && f.subject_id == held_subject);
        if train.is_empty() {
            return Err(DatasetError::EmptySplit("leave-one-out train".into()));
        }
        if online.is_empty() {
            return Err(DatasetError::EmptySplit("leave-one-out online (D_test)".into()));
        }
        Ok((train, online))
    }

    /// Splits the online dataset `D_test` into the frames used for
    /// fine-tuning (the first `finetune_frames`, 200 in the paper) and the
    /// frames used only for evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error when there are not enough frames to leave at least
    /// one evaluation frame.
    pub fn split_online(
        &self,
        online: &Dataset,
        finetune_frames: usize,
    ) -> Result<(Dataset, Dataset)> {
        if online.len() <= finetune_frames {
            return Err(DatasetError::InvalidConfig(format!(
                "online set has {} frames, cannot reserve {finetune_frames} for fine-tuning",
                online.len()
            )));
        }
        let finetune =
            Dataset::from_frames(online.frames().iter().take(finetune_frames).cloned().collect());
        let evaluation =
            Dataset::from_frames(online.frames().iter().skip(finetune_frames).cloned().collect());
        Ok((finetune, evaluation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MarsSynthesizer, SynthesisConfig};

    fn dataset() -> Dataset {
        let mut config = SynthesisConfig::tiny();
        config.subjects = vec![0, 3];
        config.movements = vec![Movement::Squat, Movement::RightLimbExtension];
        config.frames_per_sequence = 40;
        MarsSynthesizer::new(config).generate().unwrap()
    }

    #[test]
    fn ratios_validate() {
        SplitRatios::default().validate().unwrap();
        assert!(SplitRatios { train: 0.5, validation: 0.2, test: 0.2 }.validate().is_err());
        assert!(SplitRatios { train: 0.0, validation: 0.5, test: 0.5 }.validate().is_err());
    }

    #[test]
    fn per_movement_split_has_expected_proportions() {
        let data = dataset();
        let split = per_movement_split(&data, SplitRatios::default()).unwrap();
        assert_eq!(split.total_len(), data.len());
        let train_frac = split.train.len() as f32 / data.len() as f32;
        let test_frac = split.test.len() as f32 / data.len() as f32;
        assert!((train_frac - 0.6).abs() < 0.05, "train fraction {train_frac}");
        assert!((test_frac - 0.2).abs() < 0.05, "test fraction {test_frac}");
    }

    #[test]
    fn per_movement_split_keeps_segments_contiguous() {
        let data = dataset();
        let split = per_movement_split(&data, SplitRatios::default()).unwrap();
        // Within one sequence, every training index is smaller than every test index.
        let train_max = split
            .train
            .sequence(0, Movement::Squat)
            .iter()
            .map(|f| f.sequence_index)
            .max()
            .unwrap();
        let test_min =
            split.test.sequence(0, Movement::Squat).iter().map(|f| f.sequence_index).min().unwrap();
        assert!(train_max < test_min);
    }

    #[test]
    fn per_movement_split_covers_every_sequence() {
        let data = dataset();
        let split = per_movement_split(&data, SplitRatios::default()).unwrap();
        for subject in data.subjects() {
            for movement in data.movements() {
                assert!(!split.train.sequence(subject, movement).is_empty());
                assert!(!split.test.sequence(subject, movement).is_empty());
            }
        }
    }

    #[test]
    fn split_rejects_empty_dataset_and_bad_ratios() {
        assert!(per_movement_split(&Dataset::new(), SplitRatios::default()).is_err());
        let data = dataset();
        assert!(per_movement_split(&data, SplitRatios { train: 0.7, validation: 0.2, test: 0.2 })
            .is_err());
    }

    #[test]
    fn leave_one_out_excludes_subject_and_movement_from_training() {
        let data = dataset();
        let split = LeaveOneOutSplit::paper_default();
        let (train, online) = split.apply(&data).unwrap();
        assert!(train.iter().all(|f| f.subject_id != 3));
        assert!(train.iter().all(|f| f.movement != Movement::RightLimbExtension));
        assert!(online
            .iter()
            .all(|f| f.subject_id == 3 && f.movement == Movement::RightLimbExtension));
        // In this tiny dataset: train = subject 0 squat (40 frames), online = 40 frames.
        assert_eq!(train.len(), 40);
        assert_eq!(online.len(), 40);
        // Discarded frames (subject 0 right-limb + subject 3 squat) are in neither set.
        assert_eq!(train.len() + online.len(), data.len() - 80);
    }

    #[test]
    fn leave_one_out_online_split_reserves_finetune_frames() {
        let data = dataset();
        let split = LeaveOneOutSplit::paper_default();
        let (_, online) = split.apply(&data).unwrap();
        let (finetune, eval) = split.split_online(&online, 10).unwrap();
        assert_eq!(finetune.len(), 10);
        assert_eq!(eval.len(), online.len() - 10);
        // Fine-tune frames precede evaluation frames in time.
        let ft_max = finetune.iter().map(|f| f.sequence_index).max().unwrap();
        let ev_min = eval.iter().map(|f| f.sequence_index).min().unwrap();
        assert!(ft_max < ev_min);
        assert!(split.split_online(&online, online.len()).is_err());
    }

    #[test]
    fn leave_one_out_errors_when_combination_is_missing() {
        let data = dataset()
            .filter(|f| !(f.subject_id == 3 && f.movement == Movement::RightLimbExtension));
        assert!(LeaveOneOutSplit::paper_default().apply(&data).is_err());
    }
}
