//! Multi-frame point-cloud fusion (§3.2, Eq. 3).
//!
//! The paper's first contribution: instead of feeding the network one sparse
//! frame `f[k]`, FUSE concatenates the points of `2M + 1` consecutive frames
//! `F[k] = { f[k-M], ..., f[k], ..., f[k+M] }`, enriching the representation
//! without touching the downstream model.

use fuse_radar::{PointCloudFrame, RadarPoint};
use serde::{Deserialize, Serialize};

/// Multi-frame fusion operator with half-window `M`.
///
/// `M = 0` reproduces the single-frame baseline, `M = 1` fuses three frames
/// and `M = 2` fuses five frames — the three settings of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameFusion {
    half_window: usize,
}

impl FrameFusion {
    /// Creates a fusion operator with half-window `M` (Eq. 3).
    pub fn new(half_window: usize) -> Self {
        FrameFusion { half_window }
    }

    /// Convenience constructor from the total number of fused frames
    /// (1, 3, 5, ...). Even counts are rounded down to the nearest odd count.
    pub fn from_frame_count(frames: usize) -> Self {
        FrameFusion { half_window: frames.saturating_sub(1) / 2 }
    }

    /// The half-window `M`.
    pub fn half_window(&self) -> usize {
        self.half_window
    }

    /// Total number of frames fused per sample (`2M + 1`).
    pub fn frame_count(&self) -> usize {
        2 * self.half_window + 1
    }

    /// Fuses the frames around index `k` of a temporally ordered sequence.
    ///
    /// Frames outside the sequence boundary are simply skipped (the first and
    /// last `M` samples of a sequence fuse fewer frames), matching how a
    /// streaming implementation behaves at the start of a recording.
    pub fn fused_points(&self, sequence: &[&PointCloudFrame], k: usize) -> Vec<RadarPoint> {
        let mut points = Vec::new();
        if sequence.is_empty() || k >= sequence.len() {
            return points;
        }
        let start = k.saturating_sub(self.half_window);
        let end = (k + self.half_window).min(sequence.len() - 1);
        for frame in &sequence[start..=end] {
            points.extend_from_slice(&frame.points);
        }
        points
    }

    /// Fuses owned frames (convenience wrapper over [`FrameFusion::fused_points`]).
    pub fn fused_points_owned(&self, sequence: &[PointCloudFrame], k: usize) -> Vec<RadarPoint> {
        let refs: Vec<&PointCloudFrame> = sequence.iter().collect();
        self.fused_points(&refs, k)
    }
}

impl Default for FrameFusion {
    /// The paper's recommended setting: fuse three frames (`M = 1`).
    fn default() -> Self {
        FrameFusion { half_window: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with(n: usize, tag: f32) -> PointCloudFrame {
        let points = (0..n).map(|i| RadarPoint::new(tag, i as f32, 0.0, 0.0, 1.0)).collect();
        PointCloudFrame::new(0, 0.0, points)
    }

    #[test]
    fn frame_count_mapping() {
        assert_eq!(FrameFusion::new(0).frame_count(), 1);
        assert_eq!(FrameFusion::new(1).frame_count(), 3);
        assert_eq!(FrameFusion::new(2).frame_count(), 5);
        assert_eq!(FrameFusion::from_frame_count(1).half_window(), 0);
        assert_eq!(FrameFusion::from_frame_count(3).half_window(), 1);
        assert_eq!(FrameFusion::from_frame_count(5).half_window(), 2);
        assert_eq!(FrameFusion::from_frame_count(4).half_window(), 1);
        assert_eq!(FrameFusion::default().frame_count(), 3);
    }

    #[test]
    fn interior_frame_fuses_the_full_window() {
        let frames: Vec<PointCloudFrame> = (0..7).map(|i| frame_with(10, i as f32)).collect();
        let fusion = FrameFusion::new(1);
        let fused = fusion.fused_points_owned(&frames, 3);
        assert_eq!(fused.len(), 30);
        // Points from frames 2, 3 and 4 (tags) are all present.
        let tags: std::collections::BTreeSet<i32> = fused.iter().map(|p| p.x as i32).collect();
        assert_eq!(tags, [2, 3, 4].into_iter().collect());
    }

    #[test]
    fn boundary_frames_fuse_fewer_frames() {
        let frames: Vec<PointCloudFrame> = (0..5).map(|i| frame_with(8, i as f32)).collect();
        let fusion = FrameFusion::new(2);
        assert_eq!(fusion.fused_points_owned(&frames, 0).len(), 8 * 3); // frames 0..=2
        assert_eq!(fusion.fused_points_owned(&frames, 2).len(), 8 * 5); // full window
        assert_eq!(fusion.fused_points_owned(&frames, 4).len(), 8 * 3); // frames 2..=4
    }

    #[test]
    fn zero_window_is_the_single_frame_baseline() {
        let frames: Vec<PointCloudFrame> = (0..4).map(|i| frame_with(5, i as f32)).collect();
        let fusion = FrameFusion::new(0);
        for k in 0..4 {
            let fused = fusion.fused_points_owned(&frames, k);
            assert_eq!(fused.len(), 5);
            assert!(fused.iter().all(|p| (p.x - k as f32).abs() < 1e-6));
        }
    }

    #[test]
    fn fusion_multiplies_information_content() {
        // The motivating observation of §3.2: fused frames carry several times
        // more points than a single frame.
        let frames: Vec<PointCloudFrame> = (0..9).map(|i| frame_with(64, i as f32)).collect();
        let single = FrameFusion::new(0).fused_points_owned(&frames, 4).len();
        let fused3 = FrameFusion::new(1).fused_points_owned(&frames, 4).len();
        let fused5 = FrameFusion::new(2).fused_points_owned(&frames, 4).len();
        assert_eq!(fused3, 3 * single);
        assert_eq!(fused5, 5 * single);
    }

    #[test]
    fn out_of_range_and_empty_sequences_are_handled() {
        let fusion = FrameFusion::new(1);
        assert!(fusion.fused_points(&[], 0).is_empty());
        let frames = vec![frame_with(3, 0.0)];
        assert!(fusion.fused_points_owned(&frames, 5).is_empty());
    }
}
