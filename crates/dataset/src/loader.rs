//! Encoding of labelled frames into model-ready tensors and mini-batches.

use fuse_skeleton::Movement;
use fuse_tensor::{Normalizer, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::DatasetError;
use crate::feature::FeatureMapBuilder;
use crate::frame::{Dataset, LABEL_DIM};
use crate::fusion::FrameFusion;
use crate::Result;

/// One encoded training sample: the CNN input tensor and its label.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedSample {
    /// Input feature map `[C, H, W]`.
    pub input: Tensor,
    /// Ground-truth joint coordinates (57 values, metres).
    pub label: Vec<f32>,
    /// Subject that produced this sample.
    pub subject_id: usize,
    /// Movement being performed.
    pub movement: Movement,
    /// Index of the frame within its sequence.
    pub sequence_index: usize,
}

/// A dataset encoded into tensors, ready for training and evaluation.
///
/// Feature maps are computed once (fusion + selection + normalisation) and
/// reused across epochs, mirroring how the reference implementation caches
/// its pre-processed arrays.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    samples: Vec<EncodedSample>,
    normalizer: Normalizer,
    input_dims: [usize; 3],
}

impl EncodedDataset {
    /// Reassembles a dataset from its parts — the inverse of the
    /// [`EncodedDataset::samples`] / [`EncodedDataset::normalizer`] /
    /// [`EncodedDataset::input_dims`] accessors. The wire codec uses this to
    /// reconstruct an adaptation set shipped to a remote host shard; the
    /// parts are taken verbatim (samples are assumed to already be encoded
    /// with `normalizer` over `input_dims`-shaped feature maps).
    pub fn from_parts(
        samples: Vec<EncodedSample>,
        normalizer: Normalizer,
        input_dims: [usize; 3],
    ) -> Self {
        EncodedDataset { samples, normalizer, input_dims }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The encoded samples.
    pub fn samples(&self) -> &[EncodedSample] {
        &self.samples
    }

    /// The per-channel normaliser used for the feature maps.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Input dimensions `[C, H, W]` of every sample.
    pub fn input_dims(&self) -> [usize; 3] {
        self.input_dims
    }

    /// Stacks the samples at `indices` into `(inputs [N, C, H, W], labels [N, 57])`.
    ///
    /// # Errors
    ///
    /// Returns an error when `indices` is empty or out of range.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Tensor)> {
        if indices.is_empty() {
            return Err(DatasetError::EmptySplit("batch".into()));
        }
        let mut inputs = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len() * LABEL_DIM);
        for &i in indices {
            let sample = self.samples.get(i).ok_or(DatasetError::InvalidConfig(format!(
                "sample index {i} out of range ({} samples)",
                self.samples.len()
            )))?;
            inputs.push(sample.input.clone());
            labels.extend_from_slice(&sample.label);
        }
        let inputs = Tensor::stack(&inputs)?;
        let labels = Tensor::from_vec(labels, &[indices.len(), LABEL_DIM])?;
        Ok((inputs, labels))
    }

    /// Stacks the entire dataset into `(inputs, labels)` tensors.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty.
    pub fn full_tensors(&self) -> Result<(Tensor, Tensor)> {
        let indices: Vec<usize> = (0..self.samples.len()).collect();
        self.gather(&indices)
    }

    /// Draws `count` sample indices uniformly at random (with replacement if
    /// `count` exceeds the dataset size). Used by the meta-learning task
    /// sampler.
    pub fn sample_indices(&self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        if self.samples.is_empty() {
            return Vec::new();
        }
        if count <= self.samples.len() {
            let mut indices: Vec<usize> = (0..self.samples.len()).collect();
            indices.shuffle(&mut rng);
            indices.truncate(count);
            indices
        } else {
            use rand::Rng;
            (0..count).map(|_| rng.gen_range(0..self.samples.len())).collect()
        }
    }

    /// Iterates over shuffled mini-batches of `batch_size` samples.
    pub fn batches(&self, batch_size: usize, seed: u64) -> BatchIterator<'_> {
        let mut indices: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        BatchIterator { dataset: self, indices, batch_size: batch_size.max(1), position: 0 }
    }
}

/// Iterator over mini-batches of an [`EncodedDataset`].
#[derive(Debug)]
pub struct BatchIterator<'a> {
    dataset: &'a EncodedDataset,
    indices: Vec<usize>,
    batch_size: usize,
    position: usize,
}

impl Iterator for BatchIterator<'_> {
    type Item = (Tensor, Tensor);

    fn next(&mut self) -> Option<Self::Item> {
        if self.position >= self.indices.len() {
            return None;
        }
        let end = (self.position + self.batch_size).min(self.indices.len());
        let batch = &self.indices[self.position..end];
        self.position = end;
        // gather only fails for empty/out-of-range batches, which cannot
        // happen for indices we constructed ourselves.
        self.dataset.gather(batch).ok()
    }
}

/// Encodes a dataset by fitting the feature normaliser on the dataset itself.
///
/// Use [`encode_dataset_with_normalizer`] to encode validation/test/online
/// data with statistics fitted on the training split (the paper's protocol).
///
/// # Errors
///
/// Returns an error when the dataset is empty.
pub fn encode_dataset(
    dataset: &Dataset,
    fusion: &FrameFusion,
    builder: &FeatureMapBuilder,
) -> Result<EncodedDataset> {
    let fused = fuse_all(dataset, fusion);
    let point_sets: Vec<_> = fused.iter().map(|(points, _, _, _)| points.clone()).collect();
    let normalizer = builder.fit_normalizer(&point_sets)?;
    encode_fused(dataset, fused, builder, normalizer)
}

/// Encodes a dataset with a pre-fitted normaliser (training-split statistics).
///
/// # Errors
///
/// Returns an error when the dataset is empty.
pub fn encode_dataset_with_normalizer(
    dataset: &Dataset,
    fusion: &FrameFusion,
    builder: &FeatureMapBuilder,
    normalizer: Normalizer,
) -> Result<EncodedDataset> {
    let fused = fuse_all(dataset, fusion);
    encode_fused(dataset, fused, builder, normalizer)
}

type FusedFrame = (Vec<fuse_radar::RadarPoint>, usize, Movement, usize);

fn fuse_all(dataset: &Dataset, fusion: &FrameFusion) -> Vec<FusedFrame> {
    let mut fused = Vec::with_capacity(dataset.len());
    for subject in dataset.subjects() {
        for movement in dataset.movements() {
            let sequence = dataset.sequence(subject, movement);
            if sequence.is_empty() {
                continue;
            }
            let clouds: Vec<&fuse_radar::PointCloudFrame> =
                sequence.iter().map(|f| &f.cloud).collect();
            for (k, frame) in sequence.iter().enumerate() {
                fused.push((
                    fusion.fused_points(&clouds, k),
                    subject,
                    movement,
                    frame.sequence_index,
                ));
            }
        }
    }
    fused
}

fn encode_fused(
    dataset: &Dataset,
    fused: Vec<FusedFrame>,
    builder: &FeatureMapBuilder,
    normalizer: Normalizer,
) -> Result<EncodedDataset> {
    if dataset.is_empty() {
        return Err(DatasetError::EmptySplit("dataset to encode".into()));
    }
    let mut samples = Vec::with_capacity(fused.len());
    let mut fused_iter = fused.into_iter();
    for subject in dataset.subjects() {
        for movement in dataset.movements() {
            for frame in dataset.sequence(subject, movement) {
                let (points, s, m, idx) =
                    fused_iter.next().expect("fused frames align with dataset iteration order");
                debug_assert_eq!((s, m, idx), (subject, movement, frame.sequence_index));
                let input = builder.build(&points, Some(&normalizer))?;
                samples.push(EncodedSample {
                    input,
                    label: frame.label.clone(),
                    subject_id: subject,
                    movement,
                    sequence_index: frame.sequence_index,
                });
            }
        }
    }
    Ok(EncodedDataset { samples, normalizer, input_dims: builder.input_dims() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MarsSynthesizer, SynthesisConfig};

    fn encoded() -> EncodedDataset {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        encode_dataset(&dataset, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap()
    }

    #[test]
    fn encoding_preserves_sample_count_and_dims() {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let enc = encoded();
        assert_eq!(enc.len(), dataset.len());
        assert_eq!(enc.input_dims(), [5, 8, 8]);
        for s in enc.samples() {
            assert_eq!(s.input.dims(), &[5, 8, 8]);
            assert_eq!(s.label.len(), 57);
        }
    }

    #[test]
    fn gather_and_full_tensors_have_matching_shapes() {
        let enc = encoded();
        let (x, y) = enc.gather(&[0, 5, 9]).unwrap();
        assert_eq!(x.dims(), &[3, 5, 8, 8]);
        assert_eq!(y.dims(), &[3, 57]);
        let (x_all, y_all) = enc.full_tensors().unwrap();
        assert_eq!(x_all.dims()[0], enc.len());
        assert_eq!(y_all.dims(), &[enc.len(), 57]);
        assert!(enc.gather(&[]).is_err());
        assert!(enc.gather(&[enc.len()]).is_err());
    }

    #[test]
    fn batches_cover_the_whole_dataset_once() {
        let enc = encoded();
        let mut seen = 0usize;
        for (x, y) in enc.batches(16, 3) {
            assert_eq!(x.dims()[0], y.dims()[0]);
            assert!(x.dims()[0] <= 16);
            seen += x.dims()[0];
        }
        assert_eq!(seen, enc.len());
    }

    #[test]
    fn batch_shuffling_is_seeded() {
        let enc = encoded();
        let a: Vec<usize> = enc.batches(8, 1).map(|(x, _)| x.dims()[0]).collect();
        let b: Vec<usize> = enc.batches(8, 1).map(|(x, _)| x.dims()[0]).collect();
        assert_eq!(a, b);
        let first_a = enc.batches(8, 1).next().unwrap().1;
        let first_c = enc.batches(8, 2).next().unwrap().1;
        assert_ne!(first_a, first_c);
    }

    #[test]
    fn sample_indices_supports_oversampling() {
        let enc = encoded();
        let few = enc.sample_indices(10, 7);
        assert_eq!(few.len(), 10);
        assert_eq!(few, enc.sample_indices(10, 7));
        let many = enc.sample_indices(enc.len() + 50, 7);
        assert_eq!(many.len(), enc.len() + 50);
        assert!(many.iter().all(|&i| i < enc.len()));
    }

    #[test]
    fn normalizer_from_train_can_encode_other_splits() {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let split =
            crate::split::per_movement_split(&dataset, crate::split::SplitRatios::default())
                .unwrap();
        let fusion = FrameFusion::default();
        let builder = FeatureMapBuilder::default();
        let train_enc = encode_dataset(&split.train, &fusion, &builder).unwrap();
        let test_enc = encode_dataset_with_normalizer(
            &split.test,
            &fusion,
            &builder,
            train_enc.normalizer().clone(),
        )
        .unwrap();
        assert_eq!(test_enc.normalizer(), train_enc.normalizer());
        assert_eq!(test_enc.len(), split.test.len());
    }

    #[test]
    fn fusion_setting_changes_the_encoded_features() {
        let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let builder = FeatureMapBuilder::default();
        let single = encode_dataset(&dataset, &FrameFusion::new(0), &builder).unwrap();
        let fused = encode_dataset(&dataset, &FrameFusion::new(1), &builder).unwrap();
        // Fused maps fill more of the 64 slots than single-frame maps on average.
        let occupancy = |enc: &EncodedDataset| {
            let mut filled = 0usize;
            let mut total = 0usize;
            for s in enc.samples() {
                let i_channel = &s.input.as_slice()[4 * 64..5 * 64];
                filled += i_channel.iter().filter(|&&v| v != 0.0).count();
                total += 64;
            }
            filled as f32 / total as f32
        };
        assert!(occupancy(&fused) > occupancy(&single), "fusion did not increase slot occupancy");
    }

    #[test]
    fn encoding_empty_dataset_fails() {
        let err =
            encode_dataset(&Dataset::new(), &FrameFusion::default(), &FeatureMapBuilder::default());
        assert!(err.is_err());
    }
}
