//! # fuse-dataset
//!
//! Synthetic MARS-like mmWave pose dataset and the FUSE pre-processing
//! pipeline.
//!
//! The paper evaluates on the MARS dataset: 40,083 labelled point-cloud
//! frames of four subjects performing ten rehabilitation movements in front
//! of a TI IWR1443 radar, with 19-joint Kinect V2 labels at 10 Hz. That data
//! is not redistributable, so this crate synthesises an equivalent dataset
//! from the [`fuse_skeleton`] motion models and the [`fuse_radar`] point-cloud
//! simulator, then implements the pipeline the paper builds on top of it:
//!
//! * [`synth`] — dataset synthesis (subjects × movements × frames);
//! * [`fusion`] — multi-frame point-cloud fusion (Eq. 3, §3.2);
//! * [`feature`] — 8×8×C feature-map construction and normalisation;
//! * [`split`] — per-movement 60/20/20 splits and the leave-one-out split of
//!   §4.3;
//! * [`loader`] — encoded tensors and mini-batch iteration;
//! * [`io`] — (de)serialisation of datasets.
//!
//! ```
//! use fuse_dataset::{MarsSynthesizer, SynthesisConfig, FrameFusion, FeatureMapBuilder};
//!
//! let dataset = MarsSynthesizer::new(SynthesisConfig::tiny()).generate()?;
//! assert!(dataset.len() > 0);
//! let fusion = FrameFusion::new(1); // fuse 3 frames
//! let builder = FeatureMapBuilder::default();
//! let encoded = fuse_dataset::encode_dataset(&dataset, &fusion, &builder)?;
//! assert_eq!(encoded.samples()[0].input.dims(), &[5, 8, 8]);
//! # Ok::<(), fuse_dataset::DatasetError>(())
//! ```

pub mod error;
pub mod feature;
pub mod frame;
pub mod fusion;
pub mod io;
pub mod loader;
pub mod split;
pub mod synth;

pub use error::DatasetError;
pub use feature::FeatureMapBuilder;
pub use frame::{Dataset, LabeledFrame, LABEL_DIM};
pub use fusion::FrameFusion;
pub use loader::{
    encode_dataset, encode_dataset_with_normalizer, BatchIterator, EncodedDataset, EncodedSample,
};
pub use split::{per_movement_split, DatasetSplit, LeaveOneOutSplit, SplitRatios};
pub use synth::{MarsSynthesizer, SynthesisConfig};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DatasetError>;
