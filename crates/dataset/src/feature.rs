//! Feature-map construction: from a fused point set to the CNN input tensor.
//!
//! Following the MARS pre-processing that the baseline model expects, the
//! (possibly fused) point set is reduced to a fixed-size `C × H × W` tensor:
//! the strongest `H·W` points are kept, sorted spatially, and their five
//! features (x, y, z, Doppler, intensity) become the channels. The tensor
//! dimensions are identical for every fusion setting, which is the paper's
//! fair-comparison requirement (§4.1): fusion changes *which* points are
//! available, not the model input size.

use fuse_radar::RadarPoint;
use fuse_tensor::{Normalizer, Tensor};
use serde::{Deserialize, Serialize};

use crate::Result;

/// Number of per-point features (x, y, z, Doppler, intensity).
pub const POINT_FEATURES: usize = 5;

/// Builds fixed-size feature maps from point sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMapBuilder {
    height: usize,
    width: usize,
}

impl FeatureMapBuilder {
    /// Creates a builder with an `height × width` grid (the MARS baseline
    /// uses 8 × 8 = 64 points).
    pub fn new(height: usize, width: usize) -> Self {
        FeatureMapBuilder { height, width }
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of points retained per sample.
    pub fn capacity(&self) -> usize {
        self.height * self.width
    }

    /// Number of input channels of the resulting tensor.
    pub fn channels(&self) -> usize {
        POINT_FEATURES
    }

    /// Input dimensions `[C, H, W]` of the tensor produced by
    /// [`FeatureMapBuilder::build`].
    pub fn input_dims(&self) -> [usize; 3] {
        [POINT_FEATURES, self.height, self.width]
    }

    /// Selects and orders the points that will fill the grid: the strongest
    /// `capacity()` points by intensity, then sorted by height (z), depth (y)
    /// and lateral position (x) so that nearby grid cells hold nearby points.
    fn select_points(&self, points: &[RadarPoint]) -> Vec<RadarPoint> {
        let mut selected: Vec<RadarPoint> = points.to_vec();
        selected.sort_by(|a, b| {
            b.intensity.partial_cmp(&a.intensity).unwrap_or(std::cmp::Ordering::Equal)
        });
        selected.truncate(self.capacity());
        selected.sort_by(|a, b| {
            (a.z, a.y, a.x).partial_cmp(&(b.z, b.y, b.x)).unwrap_or(std::cmp::Ordering::Equal)
        });
        selected
    }

    /// Builds the `[C, H, W]` feature tensor for a point set.
    ///
    /// Missing points (sparser frames than the grid capacity) are left as
    /// zeros. When a `normalizer` fitted on training statistics is given, the
    /// per-point features are z-scored before being written into the grid.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (which indicate a bug rather than bad
    /// data).
    pub fn build(&self, points: &[RadarPoint], normalizer: Option<&Normalizer>) -> Result<Tensor> {
        let selected = self.select_points(points);
        let mut tensor = Tensor::zeros(&[POINT_FEATURES, self.height, self.width]);
        let plane = self.height * self.width;
        let data = tensor.as_mut_slice();
        for (slot, point) in selected.iter().enumerate() {
            let features = point.features();
            for (c, &value) in features.iter().enumerate() {
                let v = match normalizer {
                    Some(n) => n.apply_value(c, value),
                    None => value,
                };
                data[c * plane + slot] = v;
            }
        }
        Ok(tensor)
    }

    /// Builds a `[N, C, H, W]` batch tensor from multiple point sets.
    ///
    /// # Errors
    ///
    /// Returns an error when `point_sets` is empty.
    pub fn build_batch(
        &self,
        point_sets: &[Vec<RadarPoint>],
        normalizer: Option<&Normalizer>,
    ) -> Result<Tensor> {
        let mut samples = Vec::with_capacity(point_sets.len());
        for points in point_sets {
            samples.push(self.build(points, normalizer)?);
        }
        Ok(Tensor::stack(&samples)?)
    }

    /// Fits a per-channel [`Normalizer`] over all points of the given point
    /// sets (training split only, per §4.1).
    ///
    /// # Errors
    ///
    /// Returns an error when there are no points at all.
    pub fn fit_normalizer(&self, point_sets: &[Vec<RadarPoint>]) -> Result<Normalizer> {
        let total: usize = point_sets.iter().map(|s| s.len()).sum();
        if total == 0 {
            return Ok(Normalizer::identity(POINT_FEATURES));
        }
        let mut data = Vec::with_capacity(total * POINT_FEATURES);
        for set in point_sets {
            for p in set {
                data.extend_from_slice(&p.features());
            }
        }
        let matrix = Tensor::from_vec(data, &[total, POINT_FEATURES])?;
        Ok(Normalizer::fit(&matrix)?)
    }
}

impl Default for FeatureMapBuilder {
    /// The MARS/FUSE baseline geometry: an 8 × 8 grid of 64 points.
    fn default() -> Self {
        FeatureMapBuilder { height: 8, width: 8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f32, intensity: f32) -> RadarPoint {
        RadarPoint::new(x, 2.0, 1.0, 0.1, intensity)
    }

    #[test]
    fn default_geometry_matches_the_paper() {
        let builder = FeatureMapBuilder::default();
        assert_eq!(builder.input_dims(), [5, 8, 8]);
        assert_eq!(builder.capacity(), 64);
        assert_eq!(builder.channels(), 5);
    }

    #[test]
    fn sparse_frames_are_zero_padded() {
        let builder = FeatureMapBuilder::default();
        let points = vec![point(1.0, 5.0), point(2.0, 3.0)];
        let tensor = builder.build(&points, None).unwrap();
        assert_eq!(tensor.dims(), &[5, 8, 8]);
        // Exactly two slots of the x channel are populated.
        let x_channel = &tensor.as_slice()[0..64];
        let nonzero = x_channel.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 2);
        // Intensity channel carries the original intensities.
        let i_channel = &tensor.as_slice()[4 * 64..5 * 64];
        let total: f32 = i_channel.iter().sum();
        assert!((total - 8.0).abs() < 1e-5);
    }

    #[test]
    fn dense_point_sets_keep_the_strongest_points() {
        let builder = FeatureMapBuilder::default();
        // 100 points: the 64 strongest have intensity >= 36.
        let points: Vec<RadarPoint> = (0..100).map(|i| point(i as f32, i as f32)).collect();
        let tensor = builder.build(&points, None).unwrap();
        let i_channel = &tensor.as_slice()[4 * 64..5 * 64];
        assert!(i_channel.iter().all(|&v| v >= 36.0));
        assert_eq!(i_channel.iter().filter(|&&v| v > 0.0).count(), 64);
    }

    #[test]
    fn output_dims_are_independent_of_point_count() {
        let builder = FeatureMapBuilder::default();
        for n in [0usize, 1, 64, 200] {
            let points: Vec<RadarPoint> = (0..n).map(|i| point(i as f32, 1.0)).collect();
            let tensor = builder.build(&points, None).unwrap();
            assert_eq!(tensor.dims(), &[5, 8, 8]);
        }
    }

    #[test]
    fn spatial_sorting_orders_slots_by_height() {
        let builder = FeatureMapBuilder::new(2, 2);
        let points = vec![
            RadarPoint::new(0.0, 2.0, 1.5, 0.0, 1.0),
            RadarPoint::new(0.0, 2.0, 0.2, 0.0, 1.0),
            RadarPoint::new(0.0, 2.0, 1.0, 0.0, 1.0),
        ];
        let tensor = builder.build(&points, None).unwrap();
        let z_channel = &tensor.as_slice()[2 * 4..3 * 4];
        assert_eq!(z_channel[0], 0.2);
        assert_eq!(z_channel[1], 1.0);
        assert_eq!(z_channel[2], 1.5);
        assert_eq!(z_channel[3], 0.0);
    }

    #[test]
    fn batch_building_stacks_samples() {
        let builder = FeatureMapBuilder::default();
        let sets = vec![vec![point(1.0, 1.0)], vec![point(2.0, 1.0)], vec![]];
        let batch = builder.build_batch(&sets, None).unwrap();
        assert_eq!(batch.dims(), &[3, 5, 8, 8]);
        assert!(builder.build_batch(&[], None).is_err());
    }

    #[test]
    fn normalizer_standardises_channels() {
        let builder = FeatureMapBuilder::default();
        let sets: Vec<Vec<RadarPoint>> = (0..10)
            .map(|i| (0..20).map(|j| RadarPoint::new(i as f32, j as f32, 1.0, 0.5, 2.0)).collect())
            .collect();
        let normalizer = builder.fit_normalizer(&sets).unwrap();
        assert_eq!(normalizer.channels(), 5);
        // Constant channels (z here) do not blow up.
        let tensor = builder.build(&sets[0], Some(&normalizer)).unwrap();
        assert!(tensor.as_slice().iter().all(|v| v.is_finite()));
        // Empty input produces the identity normalizer.
        let identity = builder.fit_normalizer(&[]).unwrap();
        assert_eq!(identity.means(), &[0.0; 5]);
    }
}
