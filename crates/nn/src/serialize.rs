//! Saving and loading model parameters.
//!
//! One versioned [`Checkpoint`] type is the single persistence surface: it
//! captures a model's flattened parameters plus a layout fingerprint, encodes
//! to human-readable JSON (`{to_json, from_json}`) or a compact checksummed
//! binary container (`{to_binary, from_binary}`, roughly 10× smaller — f32s
//! as 4 raw bytes instead of decimal text), and applies itself back to a
//! model through one validated, typed error path ([`Checkpoint::apply_to`]).

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::sequential::Sequential;
use crate::Result;

/// The four magic bytes opening every binary checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FCKP";

/// The binary checkpoint format version this build writes and the only one
/// it reads. Bump on any layout change; readers reject other versions.
pub const CHECKPOINT_VERSION: u32 = 1;

/// On-disk representation of a model checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Free-form model identifier (e.g. `"mars-cnn"`, `"fuse-meta"`).
    pub model_name: String,
    /// Number of scalar parameters — used as a layout sanity check.
    pub param_len: usize,
    /// Layer names in execution order — used as a layout sanity check.
    pub layer_names: Vec<String>,
    /// The flattened parameter vector.
    pub params: Vec<f32>,
}

impl Checkpoint {
    /// Snapshots a model's parameters and layout fingerprint.
    pub fn capture(model: &Sequential, model_name: &str) -> Checkpoint {
        Checkpoint {
            model_name: model_name.to_string(),
            param_len: model.param_len(),
            layer_names: model.layer_names().iter().map(|s| s.to_string()).collect(),
            params: model.flat_params(),
        }
    }

    /// Encodes the checkpoint as a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when encoding fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| NnError::Serialization(format!("encode checkpoint: {e}")))
    }

    /// Decodes a checkpoint from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when the document is not a valid
    /// checkpoint (including truncated JSON).
    pub fn from_json(json: &str) -> Result<Checkpoint> {
        serde_json::from_str(json)
            .map_err(|e| NnError::Serialization(format!("decode checkpoint: {e}")))
    }

    /// Encodes the checkpoint into the compact binary container:
    ///
    /// ```text
    /// magic "FCKP" | version u32 | payload | FNV-1a-64 checksum u64
    /// ```
    ///
    /// All integers little-endian; `f32` values stored as the little-endian
    /// bytes of their IEEE-754 bit patterns, so the round trip is bit-exact.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.params.len() * 4 + 256);
        put_str(&mut payload, &self.model_name);
        payload.extend_from_slice(&(self.param_len as u64).to_le_bytes());
        payload.extend_from_slice(&(self.layer_names.len() as u32).to_le_bytes());
        for name in &self.layer_names {
            put_str(&mut payload, name);
        }
        payload.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for &p in &self.params {
            payload.extend_from_slice(&p.to_bits().to_le_bytes());
        }

        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        let checksum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a checkpoint from the binary container.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] naming what is wrong — bad magic,
    /// unsupported version, truncation, or a checksum mismatch. Never
    /// panics.
    pub fn from_binary(bytes: &[u8]) -> Result<Checkpoint> {
        if bytes.len() < 8 + 8 {
            return Err(NnError::Serialization(format!(
                "binary checkpoint truncated: {} bytes is shorter than any valid container",
                bytes.len()
            )));
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != CHECKPOINT_MAGIC {
            return Err(NnError::Serialization(format!(
                "not a binary checkpoint: magic bytes {magic:?} != b\"FCKP\""
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(NnError::Serialization(format!(
                "binary checkpoint format v{version} unsupported (this build reads v{CHECKPOINT_VERSION})"
            )));
        }
        let payload = &bytes[8..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(NnError::Serialization(format!(
                "binary checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }

        let mut pos = 0usize;
        let model_name = take_str(payload, &mut pos)?;
        let param_len = take_u64(payload, &mut pos)? as usize;
        let name_count = take_u32(payload, &mut pos)? as usize;
        let mut layer_names = Vec::with_capacity(name_count.min(1024));
        for _ in 0..name_count {
            layer_names.push(take_str(payload, &mut pos)?);
        }
        let value_count = take_u64(payload, &mut pos)? as usize;
        let available = payload.len() - pos;
        if value_count.checked_mul(4).map(|need| need > available).unwrap_or(true) {
            return Err(NnError::Serialization(format!(
                "binary checkpoint truncated: {value_count} parameters recorded, {available} bytes remain"
            )));
        }
        let mut params = Vec::with_capacity(value_count);
        for _ in 0..value_count {
            let raw = take_u32(payload, &mut pos)?;
            params.push(f32::from_bits(raw));
        }
        if pos != payload.len() {
            return Err(NnError::Serialization(format!(
                "binary checkpoint has {} trailing payload bytes",
                payload.len() - pos
            )));
        }
        Ok(Checkpoint { model_name, param_len, layer_names, params })
    }

    /// Writes the checkpoint to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when encoding or writing fails.
    pub fn write_json(&self, path: &Path) -> Result<()> {
        fs::write(path, self.to_json()?)
            .map_err(|e| NnError::Serialization(format!("write {}: {e}", path.display())))
    }

    /// Writes the checkpoint to `path` in the binary container format.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when writing fails.
    pub fn write_binary(&self, path: &Path) -> Result<()> {
        fs::write(path, self.to_binary())
            .map_err(|e| NnError::Serialization(format!("write {}: {e}", path.display())))
    }

    /// Reads a checkpoint from `path`, auto-detecting the format: files
    /// opening with the `FCKP` magic decode as binary, anything else as
    /// JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when the file cannot be read or
    /// decoded in its detected format.
    pub fn read(path: &Path) -> Result<Checkpoint> {
        let bytes = fs::read(path)
            .map_err(|e| NnError::Serialization(format!("read {}: {e}", path.display())))?;
        if bytes.starts_with(&CHECKPOINT_MAGIC) {
            Checkpoint::from_binary(&bytes)
        } else {
            let json = std::str::from_utf8(&bytes).map_err(|e| {
                NnError::Serialization(format!(
                    "{} is neither binary nor UTF-8 JSON: {e}",
                    path.display()
                ))
            })?;
            Checkpoint::from_json(json)
        }
    }

    /// Decodes a checkpoint from an in-memory buffer, auto-detecting the
    /// format the same way [`Checkpoint::read`] does for files: buffers
    /// opening with the `FCKP` magic decode as binary, anything else as
    /// JSON. This is the entry point for checkpoints that arrive as wire
    /// payloads rather than files.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when the buffer cannot be decoded
    /// in its detected format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint> {
        if bytes.starts_with(&CHECKPOINT_MAGIC) {
            Checkpoint::from_binary(bytes)
        } else {
            let json = std::str::from_utf8(bytes).map_err(|e| {
                NnError::Serialization(format!("checkpoint is neither binary nor UTF-8 JSON: {e}"))
            })?;
            Checkpoint::from_json(json)
        }
    }

    /// Applies the checkpoint to a model with a matching architecture.
    ///
    /// The model is only modified when every validation passes: a failed
    /// apply leaves the previous parameters in place.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when the checkpoint's
    /// parameter vector or its `param_len` field does not fit the model, and
    /// [`NnError::ArchitectureMismatch`] when the recorded `layer_names`
    /// differ from the model's layers.
    pub fn apply_to(&self, model: &mut Sequential) -> Result<()> {
        if self.params.len() != model.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: model.param_len(),
                actual: self.params.len(),
            });
        }
        // A param_len field disagreeing with the vector it describes is its
        // own mismatch; report the lying field, not the (fitting) vector
        // length.
        if self.param_len != model.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: model.param_len(),
                actual: self.param_len,
            });
        }
        let model_layers: Vec<String> = model.layer_names().iter().map(|s| s.to_string()).collect();
        if self.layer_names != model_layers {
            return Err(NnError::ArchitectureMismatch {
                expected: model_layers,
                actual: self.layer_names.clone(),
            });
        }
        model.set_flat_params(&self.params)?;
        Ok(())
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn take_bytes<'a>(payload: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let available = payload.len() - *pos;
    if available < n {
        return Err(NnError::Serialization(format!(
            "binary checkpoint truncated: needed {n} more bytes, found {available}"
        )));
    }
    let out = &payload[*pos..*pos + n];
    *pos += n;
    Ok(out)
}

fn take_u32(payload: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take_bytes(payload, pos, 4)?.try_into().expect("4 bytes")))
}

fn take_u64(payload: &[u8], pos: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take_bytes(payload, pos, 8)?.try_into().expect("8 bytes")))
}

fn take_str(payload: &[u8], pos: &mut usize) -> Result<String> {
    let len = take_u32(payload, pos)? as usize;
    let bytes = take_bytes(payload, pos, len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| NnError::Serialization("checkpoint string is not valid UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use fuse_tensor::Tensor;

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, seed).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, seed + 1).unwrap()),
        ])
    }

    #[test]
    fn json_save_and_apply_round_trips_parameters() {
        let dir = std::env::temp_dir().join("fuse_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut original = model(1);
        Checkpoint::capture(&original, "test-model").write_json(&path).unwrap();

        let mut restored = model(99); // different init
        let ckpt = Checkpoint::read(&path).unwrap();
        ckpt.apply_to(&mut restored).unwrap();
        assert_eq!(ckpt.model_name, "test-model");
        assert_eq!(restored.flat_params(), original.flat_params());

        // Both models now produce identical predictions.
        let x = Tensor::randn(&[5, 4], 1.0, 7);
        let a = original.forward(&x, false).unwrap();
        let b = restored.forward(&x, false).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_round_trip_is_bit_exact_and_much_smaller_than_json() {
        let m = model(5);
        let ckpt = Checkpoint::capture(&m, "bin-model");
        let bytes = ckpt.to_binary();
        let back = Checkpoint::from_binary(&bytes).unwrap();
        assert_eq!(back.model_name, ckpt.model_name);
        assert_eq!(back.param_len, ckpt.param_len);
        assert_eq!(back.layer_names, ckpt.layer_names);
        assert_eq!(back.params.len(), ckpt.params.len());
        let bit_exact =
            back.params.iter().zip(&ckpt.params).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bit_exact, "binary round trip must be bit-exact");
        let json_len = ckpt.to_json().unwrap().len();
        assert!(
            bytes.len() * 2 < json_len,
            "binary ({}) should be far smaller than JSON ({json_len})",
            bytes.len()
        );
    }

    #[test]
    fn read_auto_detects_binary_and_json() {
        let dir = std::env::temp_dir().join("fuse_nn_serialize_autodetect");
        std::fs::create_dir_all(&dir).unwrap();
        let m = model(3);
        let ckpt = Checkpoint::capture(&m, "auto");

        let bin_path = dir.join("ckpt.bin");
        let json_path = dir.join("ckpt.json");
        ckpt.write_binary(&bin_path).unwrap();
        ckpt.write_json(&json_path).unwrap();
        assert_eq!(Checkpoint::read(&bin_path).unwrap().params, ckpt.params);
        assert_eq!(Checkpoint::read(&json_path).unwrap().params, ckpt.params);
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn binary_corruptions_yield_typed_errors_not_panics() {
        let ckpt = Checkpoint::capture(&model(7), "corrupt");
        let bytes = ckpt.to_binary();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(Checkpoint::from_binary(&bad_magic), Err(NnError::Serialization(_))));

        let mut bad_version = bytes.clone();
        bad_version[4] = 77;
        assert!(matches!(Checkpoint::from_binary(&bad_version), Err(NnError::Serialization(_))));

        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                Checkpoint::from_binary(&bytes[..cut]),
                Err(NnError::Serialization(_))
            ));
        }

        let mut flipped = bytes.clone();
        let mid = 8 + (bytes.len() - 16) / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(Checkpoint::from_binary(&flipped), Err(NnError::Serialization(_))));
    }

    #[test]
    fn apply_rejects_architecture_mismatch() {
        let small = model(1);
        let ckpt = Checkpoint::capture(&small, "small");
        let mut bigger = Sequential::new(vec![Box::new(Linear::new(16, 16, 3).unwrap())]);
        assert!(matches!(ckpt.apply_to(&mut bigger), Err(NnError::ParamLengthMismatch { .. })));
    }

    #[test]
    fn read_errors_on_missing_file() {
        let err = Checkpoint::read(Path::new("/nonexistent/fuse-ckpt.json"));
        assert!(matches!(err, Err(NnError::Serialization(_))));
    }
}
