//! Saving and loading model parameters.
//!
//! Parameters are stored as a small JSON document holding the flattened
//! parameter vector together with a layout fingerprint, so that a fine-tuned
//! FUSE model can be persisted after offline meta-training and reloaded on an
//! edge device for online fine-tuning.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::sequential::Sequential;
use crate::Result;

/// On-disk representation of a model checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Free-form model identifier (e.g. `"mars-cnn"`, `"fuse-meta"`).
    pub model_name: String,
    /// Number of scalar parameters — used as a layout sanity check.
    pub param_len: usize,
    /// Layer names in execution order — used as a layout sanity check.
    pub layer_names: Vec<String>,
    /// The flattened parameter vector.
    pub params: Vec<f32>,
}

/// Saves a model's parameters to a JSON file.
///
/// # Errors
///
/// Returns [`NnError::Serialization`] when the file cannot be written or the
/// checkpoint cannot be encoded.
pub fn save_params_json(model: &Sequential, model_name: &str, path: &Path) -> Result<()> {
    let checkpoint = Checkpoint {
        model_name: model_name.to_string(),
        param_len: model.param_len(),
        layer_names: model.layer_names().iter().map(|s| s.to_string()).collect(),
        params: model.flat_params(),
    };
    let json = serde_json::to_string(&checkpoint)
        .map_err(|e| NnError::Serialization(format!("encode checkpoint: {e}")))?;
    fs::write(path, json)
        .map_err(|e| NnError::Serialization(format!("write {}: {e}", path.display())))
}

/// Reads and decodes a checkpoint without validating it against any model.
///
/// Used by serving engines that validate a candidate checkpoint against a
/// compiled plan's shape signature before deciding whether to materialise a
/// model for it — the decode-only half of [`load_params_json`].
///
/// # Errors
///
/// Returns [`NnError::Serialization`] when the file cannot be read or decoded
/// (including truncated JSON).
pub fn read_checkpoint_json(path: &Path) -> Result<Checkpoint> {
    let json = fs::read_to_string(path)
        .map_err(|e| NnError::Serialization(format!("read {}: {e}", path.display())))?;
    serde_json::from_str(&json)
        .map_err(|e| NnError::Serialization(format!("decode checkpoint: {e}")))
}

/// Loads parameters from a JSON checkpoint into an existing model with a
/// matching architecture.
///
/// The model is only modified when every validation passes: a failed load
/// leaves the previous parameters in place.
///
/// # Errors
///
/// Returns [`NnError::Serialization`] when the file cannot be read or decoded
/// (including truncated JSON), [`NnError::ParamLengthMismatch`] when the
/// checkpoint's `param_len` or parameter vector does not fit the model, and
/// [`NnError::ArchitectureMismatch`] when the recorded `layer_names` differ
/// from the model's layers.
pub fn load_params_json(model: &mut Sequential, path: &Path) -> Result<Checkpoint> {
    let json = fs::read_to_string(path)
        .map_err(|e| NnError::Serialization(format!("read {}: {e}", path.display())))?;
    let checkpoint: Checkpoint = serde_json::from_str(&json)
        .map_err(|e| NnError::Serialization(format!("decode checkpoint: {e}")))?;
    if checkpoint.params.len() != model.param_len() {
        return Err(NnError::ParamLengthMismatch {
            expected: model.param_len(),
            actual: checkpoint.params.len(),
        });
    }
    // A param_len field disagreeing with the vector it describes is its own
    // mismatch; report the lying field, not the (fitting) vector length.
    if checkpoint.param_len != model.param_len() {
        return Err(NnError::ParamLengthMismatch {
            expected: model.param_len(),
            actual: checkpoint.param_len,
        });
    }
    let model_layers: Vec<String> = model.layer_names().iter().map(|s| s.to_string()).collect();
    if checkpoint.layer_names != model_layers {
        return Err(NnError::ArchitectureMismatch {
            expected: model_layers,
            actual: checkpoint.layer_names.clone(),
        });
    }
    model.set_flat_params(&checkpoint.params)?;
    Ok(checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use fuse_tensor::Tensor;

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, seed).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, seed + 1).unwrap()),
        ])
    }

    #[test]
    fn save_and_load_round_trips_parameters() {
        let dir = std::env::temp_dir().join("fuse_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut original = model(1);
        save_params_json(&original, "test-model", &path).unwrap();

        let mut restored = model(99); // different init
        let ckpt = load_params_json(&mut restored, &path).unwrap();
        assert_eq!(ckpt.model_name, "test-model");
        assert_eq!(restored.flat_params(), original.flat_params());

        // Both models now produce identical predictions.
        let x = Tensor::randn(&[5, 4], 1.0, 7);
        let a = original.forward(&x, false).unwrap();
        let b = restored.forward(&x, false).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_architecture_mismatch() {
        let dir = std::env::temp_dir().join("fuse_nn_serialize_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let small = model(1);
        save_params_json(&small, "small", &path).unwrap();

        let mut bigger = Sequential::new(vec![Box::new(Linear::new(16, 16, 3).unwrap())]);
        assert!(matches!(
            load_params_json(&mut bigger, &path),
            Err(NnError::ParamLengthMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_on_missing_file() {
        let mut m = model(1);
        let err = load_params_json(&mut m, Path::new("/nonexistent/fuse-ckpt.json"));
        assert!(matches!(err, Err(NnError::Serialization(_))));
    }
}
