//! Max-pooling layer.
//!
//! The MARS baseline that the paper adopts uses only convolutions and fully
//! connected layers, but the related mmWave pose estimators it compares
//! against (mm-Pose, RadHAR-style encoders) insert pooling between the
//! convolution stages. `MaxPool2d` is provided so those variants can be built
//! from the same toolkit, it lowers to `fuse-graph` plans like the other
//! inference layers, and it is exercised by the architecture-ablation tests.

use fuse_tensor::{maxpool2d_forward_into, Tensor};

use crate::error::NnError;
use crate::layer::{Layer, LayerLowering};
use crate::Result;

/// 2-D max pooling over non-overlapping windows of a `[N, C, H, W]` tensor.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    cached_input_dims: Option<Vec<usize>>,
    cached_argmax: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with a square `window × window` kernel and
    /// a stride equal to the window size.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when the window is zero.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NnError::InvalidLayer("pooling window must be nonzero".into()));
        }
        Ok(MaxPool2d { window, cached_input_dims: None, cached_argmax: None })
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        "maxpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.shape().rank() != 4 {
            return Err(NnError::InvalidLayer(format!(
                "maxpool2d expects [N, C, H, W], got {:?}",
                input.dims()
            )));
        }
        let dims = input.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if h < self.window || w < self.window {
            return Err(NnError::InvalidLayer(format!(
                "input {h}x{w} smaller than pooling window {}",
                self.window
            )));
        }
        let out_h = h / self.window;
        let out_w = w / self.window;
        let mut out = Tensor::zeros(&[n, c, out_h, out_w]);
        let mut argmax = vec![0usize; n * c * out_h * out_w];

        // The pooling loop lives in `fuse-tensor` so compiled plans execute
        // the exact same code (bit-identity by construction); the layer only
        // adds the argmax cache for gradient routing.
        maxpool2d_forward_into(
            input.as_slice(),
            n,
            c,
            h,
            w,
            self.window,
            out.as_mut_slice(),
            Some(&mut argmax),
        )
        .map_err(NnError::Tensor)?;
        self.cached_input_dims = Some(dims.to_vec());
        self.cached_argmax = Some(argmax);
        Ok(out)
    }

    fn lowering(&self) -> Option<LayerLowering<'_>> {
        Some(LayerLowering::MaxPool2d { window: self.window })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("maxpool2d".into()))?;
        let argmax = self
            .cached_argmax
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("maxpool2d".into()))?;
        if grad_output.len() != argmax.len() {
            return Err(NnError::InvalidLayer(format!(
                "maxpool2d backward expects {} values, got {}",
                argmax.len(),
                grad_output.len()
            )));
        }
        let mut grad_input = Tensor::zeros(dims);
        let gi = grad_input.as_mut_slice();
        for (out_idx, &in_idx) in argmax.iter().enumerate() {
            gi[in_idx] += grad_output.as_slice()[out_idx];
        }
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(NnError::ParamLengthMismatch { expected: 0, actual: params.len() })
        }
    }

    fn zero_grad(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_takes_window_maxima() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.5, 0.25, //
                -3.0, -4.0, 0.75, 0.1,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let out = pool.forward(&input, true).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn backward_routes_gradient_to_the_maximum_only() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&input, true).unwrap();
        let grad = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(grad.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut pool = MaxPool2d::new(2).unwrap();
        // Use well-separated distinct values so the finite-difference probe
        // (eps = 1e-3) can never flip which element wins a pooling window.
        let values: Vec<f32> = (0..96).map(|i| ((i * 37) % 96) as f32 * 0.1).collect();
        let input = Tensor::from_vec(values, &[2, 3, 4, 4]).unwrap();
        let out = pool.forward(&input, true).unwrap();
        let grad_in = pool.backward(&Tensor::ones(out.dims())).unwrap();
        let eps = 1e-3;
        for i in (0..input.len()).step_by(7) {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = MaxPool2d::new(2).unwrap().forward(&plus, true).unwrap().sum();
            let fm = MaxPool2d::new(2).unwrap().forward(&minus, true).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - grad_in.as_slice()[i]).abs() < 1e-2, "mismatch at {i}");
        }
    }

    #[test]
    fn rejects_bad_configuration_and_inputs() {
        assert!(MaxPool2d::new(0).is_err());
        let mut pool = MaxPool2d::new(4).unwrap();
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 2, 2]), true).is_err());
        assert!(pool.forward(&Tensor::zeros(&[2, 2]), true).is_err());
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn has_no_parameters() {
        let pool = MaxPool2d::new(2).unwrap();
        assert_eq!(pool.param_len(), 0);
        assert!(pool.params().is_empty());
    }

    #[test]
    fn composes_with_conv_layers_in_a_sequential_model() {
        use crate::layers::{Conv2d, Flatten, Linear, Relu};
        use crate::Sequential;
        use fuse_tensor::Conv2dSpec;

        let mut model = Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(5, 8, 3), 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2).unwrap()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(8 * 4 * 4, 57, 2).unwrap()),
        ]);
        let x = Tensor::randn(&[3, 5, 8, 8], 1.0, 3);
        let y = model.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[3, 57]);
        model.zero_grad();
        let gx = model.backward(&Tensor::ones(&[3, 57])).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }
}
