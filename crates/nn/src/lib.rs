//! # fuse-nn
//!
//! A small layer-wise neural-network library built on [`fuse_tensor`].
//!
//! It provides exactly the building blocks the FUSE reproduction needs:
//! `Conv2d`, `Linear`, `ReLU`, `Flatten` and `Dropout` layers composed with
//! [`Sequential`], the L1/MSE/Huber losses used for joint-coordinate
//! regression, and SGD/Adam optimizers that operate on flattened parameter
//! vectors so the meta-learning framework in `fuse-core` can snapshot,
//! perturb and restore model parameters cheaply.
//!
//! ```
//! use fuse_nn::{layers::Linear, layers::Relu, Sequential, L1Loss, Loss, Adam, Optimizer};
//! use fuse_tensor::Tensor;
//!
//! let mut model = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, 1)?),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, 2)?),
//! ]);
//! let x = Tensor::randn(&[16, 4], 1.0, 3);
//! let y = Tensor::zeros(&[16, 2]);
//! let mut opt = Adam::new(1e-2, model.param_len());
//! let loss = L1Loss;
//!
//! for _ in 0..10 {
//!     let pred = model.forward(&x, true)?;
//!     let (value, grad) = loss.evaluate(&pred, &y)?;
//!     assert!(value.is_finite());
//!     model.zero_grad();
//!     model.backward(&grad)?;
//!     let grads = model.flat_grads();
//!     let mut params = model.flat_params();
//!     opt.step(params.as_mut_slice(), grads.as_slice());
//!     model.set_flat_params(&params)?;
//! }
//! # Ok::<(), fuse_nn::NnError>(())
//! ```

pub mod error;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod lowering;
pub mod metrics;
pub mod optim;
pub mod pooling;
pub mod schedule;
pub mod sequential;
pub mod serialize;

pub use error::NnError;
pub use layer::{Layer, LayerLowering};
pub use loss::{HuberLoss, L1Loss, Loss, MseLoss};
pub use lowering::{Compiled, FallbackPolicy, LoweringRequest};
pub use metrics::{mae, mae_per_axis, AxisMae};
pub use optim::{Adam, Optimizer, Sgd};
pub use pooling::MaxPool2d;
pub use schedule::LrSchedule;
pub use sequential::Sequential;
pub use serialize::{Checkpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
