//! Lowering [`Sequential`] models into `fuse-graph` op graphs.
//!
//! The bridge between the mutable, trainable layer world and the immutable,
//! compiled serving world: a [`LoweringRequest`] walks a model's layers, asks
//! each for its declarative [`LayerLowering`] description and builds a typed
//! [`Graph`] with the parameters snapshotted, or compiles it straight to an
//! [`fuse_graph::ExecPlan`].
//!
//! Lowering is total only for layers that implement
//! [`crate::Layer::lowering`]; anything else makes the whole model
//! non-lowerable. What happens then is the request's [`FallbackPolicy`]:
//! [`FallbackPolicy::Deny`] surfaces the error, [`FallbackPolicy::LegacyWalk`]
//! reports a [`Compiled::Fallback`] carrying the reason so the serving engine
//! can walk the layer list instead — visibly, not silently. Either way the
//! contract stays simple: a compiled plan covers the entire model
//! bit-identically or does not exist.

use fuse_graph::{ExecPlan, Graph, GraphError, TensorMeta};

use crate::layer::LayerLowering;
use crate::sequential::Sequential;

/// What a [`LoweringRequest`] does when the model cannot be compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Surface the lowering/compilation error to the caller (the default).
    #[default]
    Deny,
    /// Swallow the error into a [`Compiled::Fallback`] so the caller can
    /// serve through the legacy [`Sequential::forward`] walk while still
    /// seeing *why* the plan does not exist.
    LegacyWalk,
}

/// Outcome of [`LoweringRequest::compile`].
// A `Compiled` is destructured immediately at the compile call site, never
// stored or collected, so the size gap between the plan and the error
// variant costs nothing — boxing the plan would only add churn for callers.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Compiled {
    /// The model compiled; serve through the plan.
    Plan(ExecPlan),
    /// The model did not compile and the policy was
    /// [`FallbackPolicy::LegacyWalk`]; serve through the layer walk. The
    /// carried error says why — log it, count it, don't hide it.
    Fallback(GraphError),
}

/// A builder describing how to lower (and optionally compile) a model for
/// inference, replacing the old positional `lower_for_inference(model,
/// input_dims)` call so new options don't grow more positional arguments.
///
/// ```
/// use fuse_nn::layers::{Linear, Relu};
/// use fuse_nn::{LoweringRequest, Sequential};
///
/// let model = Sequential::new(vec![
///     Box::new(Linear::new(4, 2, 7)?),
///     Box::new(Relu::new()),
/// ]);
/// let graph = LoweringRequest::new(&model, &[4]).lower()?;
/// assert_eq!(graph.signature().param_len(), model.param_len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LoweringRequest<'m> {
    model: &'m Sequential,
    input_dims: Vec<usize>,
    max_batch: usize,
    fallback: FallbackPolicy,
}

impl<'m> LoweringRequest<'m> {
    /// Starts a request lowering `model` for per-sample inputs shaped
    /// `input_dims`, with `max_batch = 1` and [`FallbackPolicy::Deny`].
    pub fn new(model: &'m Sequential, input_dims: &[usize]) -> Self {
        LoweringRequest {
            model,
            input_dims: input_dims.to_vec(),
            max_batch: 1,
            fallback: FallbackPolicy::Deny,
        }
    }

    /// Sets the largest batch the compiled plan must serve.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets what [`Self::compile`] does when the model cannot be compiled.
    #[must_use]
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Builds the inference op graph, snapshotting the current parameters.
    ///
    /// The graph's [`fuse_graph::ShapeSignature`] records the model's layer
    /// names in execution order, so checkpoints validated against the
    /// signature are exactly the checkpoints [`crate::Checkpoint::apply_to`]
    /// would accept.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Unsupported`] when a layer has no op-graph
    /// lowering and [`GraphError::Shape`] when layer shapes do not chain
    /// (the same mismatches the legacy forward pass would reject at run
    /// time). The fallback policy does not apply here — `lower` always
    /// reports errors.
    pub fn lower(&self) -> fuse_graph::Result<Graph> {
        let mut graph = Graph::new(TensorMeta::f32(&self.input_dims));
        for layer in self.model.layers() {
            let name = layer.name();
            let Some(lowering) = layer.lowering() else {
                return Err(GraphError::Unsupported(format!(
                    "layer '{name}' has no op-graph lowering"
                )));
            };
            match lowering {
                LayerLowering::Conv2d { spec, weight, bias } => {
                    graph.push_conv2d(name, spec, weight.as_slice(), bias.as_slice())?;
                }
                LayerLowering::Linear { in_features, out_features, weight, bias } => {
                    graph.push_linear(
                        name,
                        in_features,
                        out_features,
                        weight.as_slice(),
                        bias.as_slice(),
                    )?;
                }
                LayerLowering::Relu => {
                    graph.push_relu(name)?;
                }
                LayerLowering::MaxPool2d { window } => {
                    graph.push_maxpool2d(name, window)?;
                }
                LayerLowering::Flatten => {
                    graph.push_flatten(name)?;
                }
                LayerLowering::Identity => {
                    graph.push_identity(name)?;
                }
            }
        }
        Ok(graph)
    }

    /// Lowers and compiles in one go, honouring the fallback policy.
    ///
    /// # Errors
    ///
    /// Under [`FallbackPolicy::Deny`], any lowering or compilation error.
    /// Under [`FallbackPolicy::LegacyWalk`] this never fails — failures come
    /// back as [`Compiled::Fallback`] with the reason inside.
    pub fn compile(&self) -> fuse_graph::Result<Compiled> {
        match self.lower().and_then(|graph| graph.compile(self.max_batch)) {
            Ok(plan) => Ok(Compiled::Plan(plan)),
            Err(e) => match self.fallback {
                FallbackPolicy::Deny => Err(e),
                FallbackPolicy::LegacyWalk => Ok(Compiled::Fallback(e)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use fuse_tensor::{Conv2dSpec, Tensor};

    use super::*;
    use crate::layers::{Conv2d, Dropout, Flatten, Linear, Relu};
    use crate::pooling::MaxPool2d;
    use crate::Layer;
    use crate::Result;

    fn tiny_cnn() -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(2, 3, 3), 7).unwrap()),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(48, 5, 8).unwrap()),
        ])
    }

    #[test]
    fn lowered_graph_matches_the_model_signature() {
        let model = tiny_cnn();
        let graph = LoweringRequest::new(&model, &[2, 4, 4]).lower().unwrap();
        let sig = graph.signature();
        assert_eq!(
            sig.layer_names().iter().map(String::as_str).collect::<Vec<_>>(),
            model.layer_names()
        );
        assert_eq!(sig.param_len(), model.param_len());
        assert_eq!(sig.output().dims(), &[5]);
    }

    #[test]
    fn compiled_plan_matches_the_legacy_forward_bit_for_bit() {
        let mut model = tiny_cnn();
        let Compiled::Plan(mut plan) =
            LoweringRequest::new(&model, &[2, 4, 4]).max_batch(4).compile().unwrap()
        else {
            panic!("tiny_cnn must compile");
        };
        let input = Tensor::randn(&[3, 2, 4, 4], 1.0, 9);
        let expected = model.forward(&input, false).unwrap();
        let out = plan.run(input.as_slice(), 3).unwrap();
        assert_eq!(out, expected.as_slice());
    }

    #[test]
    fn pooled_models_lower_and_match_the_legacy_forward_bit_for_bit() {
        let mut model = Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(2, 3, 3), 17).unwrap()) as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2).unwrap()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(3 * 2 * 2, 5, 18).unwrap()),
        ]);
        let Compiled::Plan(mut plan) =
            LoweringRequest::new(&model, &[2, 4, 4]).max_batch(3).compile().unwrap()
        else {
            panic!("pooled model must compile, not fall back");
        };
        let input = Tensor::randn(&[3, 2, 4, 4], 1.0, 19);
        let expected = model.forward(&input, false).unwrap();
        assert_eq!(plan.run(input.as_slice(), 3).unwrap(), expected.as_slice());
    }

    #[test]
    fn dropout_lowers_to_identity_at_inference() {
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(4, 4, 3).unwrap()),
            Box::new(Dropout::new(0.5, 11).unwrap()),
        ]);
        let mut plan = LoweringRequest::new(&model, &[4]).lower().unwrap().compile(2).unwrap();
        let input = Tensor::randn(&[2, 4], 1.0, 12);
        let expected = model.forward(&input, false).unwrap();
        assert_eq!(plan.run(input.as_slice(), 2).unwrap(), expected.as_slice());
    }

    /// A layer that deliberately has no op-graph lowering (pooling, the old
    /// example, lowers now).
    #[derive(Debug, Clone)]
    struct Opaque;

    impl Layer for Opaque {
        fn name(&self) -> &str {
            "opaque"
        }
        fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
            Ok(input.clone())
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
            Ok(grad_output.clone())
        }
        fn params(&self) -> Vec<&Tensor> {
            Vec::new()
        }
        fn grads(&self) -> Vec<&Tensor> {
            Vec::new()
        }
        fn set_params(&mut self, _params: &[Tensor]) -> Result<()> {
            Ok(())
        }
        fn zero_grad(&mut self) {}
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn unsupported_layers_reject_the_whole_model() {
        let model = Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(2, 2, 3), 7).unwrap()) as Box<dyn Layer>,
            Box::new(Opaque),
        ]);
        let req = LoweringRequest::new(&model, &[2, 4, 4]);
        let err = req.lower().unwrap_err();
        assert!(matches!(err, GraphError::Unsupported(_)), "{err}");
        // Deny (the default) propagates; LegacyWalk converts to a visible
        // fallback carrying the same reason.
        assert!(req.compile().is_err());
        match req.fallback(FallbackPolicy::LegacyWalk).compile().unwrap() {
            Compiled::Fallback(GraphError::Unsupported(msg)) => {
                assert!(msg.contains("opaque"), "{msg}");
            }
            other => panic!("expected a fallback, got {other:?}"),
        }
    }
}
