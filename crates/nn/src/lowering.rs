//! Lowering [`Sequential`] models into `fuse-graph` op graphs.
//!
//! The bridge between the mutable, trainable layer world and the immutable,
//! compiled serving world: [`lower_for_inference`] walks a model's layers,
//! asks each for its declarative [`LayerLowering`] description and builds a
//! typed [`Graph`] with the parameters snapshotted. The caller then compiles
//! that graph into an [`fuse_graph::ExecPlan`].
//!
//! Lowering is total only for layers that implement
//! [`crate::Layer::lowering`]; anything else (e.g. max pooling today) makes
//! the whole model non-lowerable and the serving engine falls back to the
//! legacy layer walk. That keeps the contract simple: a compiled plan either
//! covers the entire model bit-identically or does not exist.

use fuse_graph::{Graph, GraphError, TensorMeta};

use crate::layer::LayerLowering;
use crate::sequential::Sequential;

/// Builds the inference op graph of `model` for per-sample inputs shaped
/// `input_dims`, snapshotting the current parameters.
///
/// The graph's [`fuse_graph::ShapeSignature`] records the model's layer
/// names in execution order, so checkpoints validated against the signature
/// are exactly the checkpoints [`crate::load_params_json`] would accept.
///
/// # Errors
///
/// Returns [`GraphError::Unsupported`] when a layer has no op-graph lowering
/// and [`GraphError::Shape`] when layer shapes do not chain (the same
/// mismatches the legacy forward pass would reject at run time).
pub fn lower_for_inference(model: &Sequential, input_dims: &[usize]) -> fuse_graph::Result<Graph> {
    let mut graph = Graph::new(TensorMeta::f32(input_dims));
    for layer in model.layers() {
        let name = layer.name();
        let Some(lowering) = layer.lowering() else {
            return Err(GraphError::Unsupported(format!(
                "layer '{name}' has no op-graph lowering"
            )));
        };
        match lowering {
            LayerLowering::Conv2d { spec, weight, bias } => {
                graph.push_conv2d(name, spec, weight.as_slice(), bias.as_slice())?;
            }
            LayerLowering::Linear { in_features, out_features, weight, bias } => {
                graph.push_linear(
                    name,
                    in_features,
                    out_features,
                    weight.as_slice(),
                    bias.as_slice(),
                )?;
            }
            LayerLowering::Relu => {
                graph.push_relu(name)?;
            }
            LayerLowering::Flatten => {
                graph.push_flatten(name)?;
            }
            LayerLowering::Identity => {
                graph.push_identity(name)?;
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use fuse_tensor::{Conv2dSpec, Tensor};

    use super::*;
    use crate::layers::{Conv2d, Dropout, Flatten, Linear, Relu};
    use crate::pooling::MaxPool2d;
    use crate::Layer;

    fn tiny_cnn() -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(2, 3, 3), 7).unwrap()),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(48, 5, 8).unwrap()),
        ])
    }

    #[test]
    fn lowered_graph_matches_the_model_signature() {
        let model = tiny_cnn();
        let graph = lower_for_inference(&model, &[2, 4, 4]).unwrap();
        let sig = graph.signature();
        assert_eq!(
            sig.layer_names().iter().map(String::as_str).collect::<Vec<_>>(),
            model.layer_names()
        );
        assert_eq!(sig.param_len(), model.param_len());
        assert_eq!(sig.output().dims(), &[5]);
    }

    #[test]
    fn compiled_plan_matches_the_legacy_forward_bit_for_bit() {
        let mut model = tiny_cnn();
        let mut plan = lower_for_inference(&model, &[2, 4, 4]).unwrap().compile(4).unwrap();
        let input = Tensor::randn(&[3, 2, 4, 4], 1.0, 9);
        let expected = model.forward(&input, false).unwrap();
        let out = plan.run(input.as_slice(), 3).unwrap();
        assert_eq!(out, expected.as_slice());
    }

    #[test]
    fn dropout_lowers_to_identity_at_inference() {
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(4, 4, 3).unwrap()),
            Box::new(Dropout::new(0.5, 11).unwrap()),
        ]);
        let mut plan = lower_for_inference(&model, &[4]).unwrap().compile(2).unwrap();
        let input = Tensor::randn(&[2, 4], 1.0, 12);
        let expected = model.forward(&input, false).unwrap();
        assert_eq!(plan.run(input.as_slice(), 2).unwrap(), expected.as_slice());
    }

    #[test]
    fn unsupported_layers_reject_the_whole_model() {
        let model = Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dSpec::same(2, 2, 3), 7).unwrap()) as Box<dyn Layer>,
            Box::new(MaxPool2d::new(2).unwrap()),
        ]);
        let err = lower_for_inference(&model, &[2, 4, 4]).unwrap_err();
        assert!(matches!(err, GraphError::Unsupported(_)), "{err}");
    }
}
