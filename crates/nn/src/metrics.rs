//! Evaluation metrics for joint-coordinate regression.
//!
//! The paper reports the mean absolute error (MAE) of the predicted joint
//! coordinates separately along the x, y and z axes, plus their average, all
//! in centimetres (Table 1, Table 2, Figures 3–4). Predictions and labels are
//! laid out as `[N, 3 * joints]` with the coordinate order
//! `(x_0, y_0, z_0, x_1, y_1, z_1, ...)`.

use fuse_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

use crate::Result;

/// Per-axis mean absolute error, in the same unit as the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AxisMae {
    /// MAE along the x axis.
    pub x: f32,
    /// MAE along the y axis.
    pub y: f32,
    /// MAE along the z axis.
    pub z: f32,
}

impl AxisMae {
    /// Average of the three per-axis errors — the "Average (cm)" column of
    /// Table 1.
    pub fn average(&self) -> f32 {
        (self.x + self.y + self.z) / 3.0
    }

    /// Converts metres to centimetres (the unit the paper reports).
    pub fn to_centimeters(&self) -> AxisMae {
        AxisMae { x: self.x * 100.0, y: self.y * 100.0, z: self.z * 100.0 }
    }
}

impl std::fmt::Display for AxisMae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x={:.2} y={:.2} z={:.2} avg={:.2}", self.x, self.y, self.z, self.average())
    }
}

fn check_pair(pred: &Tensor, target: &Tensor) -> Result<(usize, usize)> {
    if pred.dims() != target.dims() {
        return Err(TensorError::ShapeMismatch {
            left: pred.dims().to_vec(),
            right: target.dims().to_vec(),
        }
        .into());
    }
    if pred.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: pred.shape().rank() }.into());
    }
    if pred.is_empty() {
        return Err(TensorError::EmptyTensor.into());
    }
    Ok((pred.dims()[0], pred.dims()[1]))
}

/// Overall mean absolute error between predictions and targets.
///
/// # Errors
///
/// Returns an error when shapes differ, the rank is not 2, or the tensors are
/// empty.
pub fn mae(pred: &Tensor, target: &Tensor) -> Result<f32> {
    check_pair(pred, target)?;
    Ok(pred.sub(target)?.abs().mean())
}

/// Per-axis MAE assuming interleaved `(x, y, z)` coordinate layout.
///
/// # Errors
///
/// Returns an error when shapes differ, the rank is not 2, the tensors are
/// empty, or the feature dimension is not a multiple of 3.
pub fn mae_per_axis(pred: &Tensor, target: &Tensor) -> Result<AxisMae> {
    let (n, d) = check_pair(pred, target)?;
    if d % 3 != 0 {
        return Err(TensorError::ShapeDataMismatch { expected: d / 3 * 3, actual: d }.into());
    }
    let mut sums = [0.0f64; 3];
    let joints = d / 3;
    let p = pred.as_slice();
    let t = target.as_slice();
    for row in 0..n {
        for j in 0..joints {
            for (axis, sum) in sums.iter_mut().enumerate() {
                let idx = row * d + j * 3 + axis;
                *sum += (p[idx] - t[idx]).abs() as f64;
            }
        }
    }
    let count = (n * joints) as f64;
    Ok(AxisMae {
        x: (sums[0] / count) as f32,
        y: (sums[1] / count) as f32,
        z: (sums[2] / count) as f32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_of_identical_tensors_is_zero() {
        let a = Tensor::randn(&[4, 6], 1.0, 1);
        assert_eq!(mae(&a, &a).unwrap(), 0.0);
        let axis = mae_per_axis(&a, &a).unwrap();
        assert_eq!(axis.average(), 0.0);
    }

    #[test]
    fn per_axis_errors_are_separated() {
        // One joint, two samples. Errors: x=1, y=2, z=3 in each sample.
        let pred = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0], &[2, 3]).unwrap();
        let target = Tensor::zeros(&[2, 3]);
        let axis = mae_per_axis(&pred, &target).unwrap();
        assert_eq!(axis.x, 1.0);
        assert_eq!(axis.y, 2.0);
        assert_eq!(axis.z, 3.0);
        assert_eq!(axis.average(), 2.0);
    }

    #[test]
    fn interleaving_is_respected_for_multiple_joints() {
        // Two joints: joint0 has error only in x, joint1 only in z.
        let pred = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 0.0, 4.0], &[1, 6]).unwrap();
        let target = Tensor::zeros(&[1, 6]);
        let axis = mae_per_axis(&pred, &target).unwrap();
        assert_eq!(axis.x, 1.0); // averaged over 2 joints
        assert_eq!(axis.y, 0.0);
        assert_eq!(axis.z, 2.0);
    }

    #[test]
    fn centimeter_conversion_scales_by_100() {
        let axis = AxisMae { x: 0.05, y: 0.03, z: 0.07 };
        let cm = axis.to_centimeters();
        assert!((cm.x - 5.0).abs() < 1e-5);
        assert!((cm.average() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn errors_on_bad_shapes() {
        let a = Tensor::zeros(&[2, 6]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(mae(&a, &b).is_err());
        let c = Tensor::zeros(&[2, 4]);
        assert!(mae_per_axis(&c, &c).is_err());
        let e = Tensor::zeros(&[0, 6]);
        assert!(mae_per_axis(&e, &e).is_err());
    }

    #[test]
    fn display_contains_average() {
        let axis = AxisMae { x: 1.0, y: 2.0, z: 3.0 };
        assert!(axis.to_string().contains("avg=2.00"));
    }

    #[test]
    fn overall_mae_matches_axis_average_for_balanced_layout() {
        let pred = Tensor::randn(&[8, 57], 1.0, 3);
        let target = Tensor::randn(&[8, 57], 1.0, 4);
        let overall = mae(&pred, &target).unwrap();
        let axis = mae_per_axis(&pred, &target).unwrap();
        assert!((overall - axis.average()).abs() < 1e-5);
    }
}
