//! Gradient-descent optimizers over flattened parameter vectors.

/// An optimizer that updates a flattened parameter vector in place from a
/// gradient vector of the same length.
///
/// Operating on flat slices (rather than on layers) keeps the optimizers
/// decoupled from the model structure, which is exactly what the
/// meta-learning outer loop needs: it can run Adam on the meta-parameters θ
/// while the inner loop performs plain SGD steps on temporary copies.
pub trait Optimizer: Send {
    /// Applies one update step: modifies `params` in place using `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` have different lengths, or if their
    /// length differs from the one the optimizer was constructed for
    /// (stateful optimizers only).
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Applies one update step restricted to the entries where `mask` is
    /// `true`. Used for last-layer-only fine-tuning.
    ///
    /// # Panics
    ///
    /// Panics if the slices have inconsistent lengths.
    fn step_masked(&mut self, params: &mut [f32], grads: &[f32], mask: &[bool]) {
        assert_eq!(params.len(), mask.len(), "mask length must match parameters");
        let masked: Vec<f32> =
            grads.iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        self.step(params, &masked);
    }

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Resets any internal state (moment estimates, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates an SGD optimizer with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params and grads must have equal length");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba, 2015) — the optimizer used by the paper for
/// both supervised training and the meta-update (§4.1).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999) for a
    /// parameter vector of length `param_len`.
    pub fn new(lr: f32, param_len: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: vec![0.0; param_len],
            v: vec![0.0; param_len],
        }
    }

    /// Creates an Adam optimizer with custom moment decay rates.
    pub fn with_betas(lr: f32, param_len: usize, beta1: f32, beta2: f32) -> Self {
        Adam { beta1, beta2, ..Adam::new(lr, param_len) }
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params and grads must have equal length");
        assert_eq!(
            params.len(),
            self.m.len(),
            "optimizer was constructed for a different model size"
        );
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.step = 0;
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = sum((x - c)^2) with each optimizer and check convergence.
    fn quadratic_convergence(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let target = [3.0f32, -2.0, 0.5, 7.0];
        let mut x = [0.0f32; 4];
        for _ in 0..iters {
            let grads: Vec<f32> = x.iter().zip(&target).map(|(&xi, &ci)| 2.0 * (xi - ci)).collect();
            opt.step(&mut x, &grads);
        }
        x.iter().zip(&target).map(|(&xi, &ci)| (xi - ci).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(quadratic_convergence(&mut opt, 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!(quadratic_convergence(&mut opt, 300) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 4);
        assert!(quadratic_convergence(&mut opt, 500) < 1e-2);
    }

    #[test]
    fn adam_step_counter_and_reset() {
        let mut opt = Adam::new(0.01, 2);
        let mut p = [1.0f32, 1.0];
        opt.step(&mut p, &[0.1, 0.1]);
        opt.step(&mut p, &[0.1, 0.1]);
        assert_eq!(opt.steps_taken(), 2);
        opt.reset();
        assert_eq!(opt.steps_taken(), 0);
    }

    #[test]
    fn masked_step_only_touches_enabled_entries() {
        let mut opt = Sgd::new(1.0);
        let mut p = [1.0f32, 2.0, 3.0];
        let g = [1.0f32, 1.0, 1.0];
        opt.step_masked(&mut p, &g, &[true, false, true]);
        assert_eq!(p, [0.0, 2.0, 2.0]);
    }

    #[test]
    fn adam_masked_step_keeps_frozen_params_fixed() {
        let mut opt = Adam::new(0.5, 3);
        let mut p = [1.0f32, 2.0, 3.0];
        for _ in 0..10 {
            let g = [0.3f32, -0.7, 0.9];
            opt.step_masked(&mut p, &g, &[false, true, false]);
        }
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 3.0);
        assert_ne!(p[1], 2.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01, 1);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        let mut sgd = Sgd::new(0.5);
        sgd.set_learning_rate(0.25);
        assert_eq!(sgd.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn step_panics_on_length_mismatch() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0f32; 2];
        opt.step(&mut p, &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "different model size")]
    fn adam_panics_on_wrong_model_size() {
        let mut opt = Adam::new(0.1, 2);
        let mut p = [0.0f32; 3];
        opt.step(&mut p, &[0.0; 3]);
    }
}
