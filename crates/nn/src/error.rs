//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

use fuse_tensor::TensorError;

/// Error returned by fallible neural-network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (usually a shape mismatch).
    Tensor(TensorError),
    /// A layer was configured with invalid hyper-parameters.
    InvalidLayer(String),
    /// `backward` was called before `forward` (no cached activation).
    MissingForwardCache(String),
    /// The flattened parameter/gradient vector has the wrong length.
    ParamLengthMismatch {
        /// Length the model expects.
        expected: usize,
        /// Length that was provided.
        actual: usize,
    },
    /// Model serialization or deserialization failed.
    Serialization(String),
    /// A checkpoint's layer layout does not match the target model.
    ArchitectureMismatch {
        /// Layer names the model expects, in execution order.
        expected: Vec<String>,
        /// Layer names recorded in the checkpoint.
        actual: Vec<String>,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidLayer(msg) => write!(f, "invalid layer configuration: {msg}"),
            NnError::MissingForwardCache(layer) => {
                write!(f, "backward called on `{layer}` before forward")
            }
            NnError::ParamLengthMismatch { expected, actual } => {
                write!(f, "parameter vector has length {actual}, model expects {expected}")
            }
            NnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NnError::ArchitectureMismatch { expected, actual } => write!(
                f,
                "checkpoint layer layout [{}] does not match model layers [{}]",
                actual.join(", "),
                expected.join(", ")
            ),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::EmptyTensor);
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e = NnError::ParamLengthMismatch { expected: 10, actual: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
        let e = NnError::ArchitectureMismatch {
            expected: vec!["conv2d".into(), "relu".into()],
            actual: vec!["linear".into()],
        };
        assert!(e.to_string().contains("conv2d"));
        assert!(e.to_string().contains("linear"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
