//! Regression losses for joint-coordinate estimation.
//!
//! The L1/MSE hot loops run through the backend-routed tensor ops
//! (`sub`/`sum`/`norm_sq`/`scale`), so elementwise work picks up the active
//! `FUSE_BACKEND` while the value reductions keep the scalar in-order
//! association the reproducibility contract pins. Huber interleaves its
//! value reduction with the gradient clamp in one order-sensitive pass and
//! therefore stays on the scalar path by design.

use fuse_tensor::{Tensor, TensorError};

use crate::Result;

/// A differentiable loss over `[N, D]` predictions and targets.
///
/// [`Loss::evaluate`] returns both the scalar loss value and the gradient of
/// the loss with respect to the prediction, which is what gets fed into
/// [`crate::Sequential::backward`].
pub trait Loss: Send + Sync {
    /// Human-readable name used in experiment reports.
    fn name(&self) -> &str;

    /// Computes the loss value and its gradient with respect to `pred`.
    ///
    /// # Errors
    ///
    /// Returns an error when `pred` and `target` shapes differ or are empty.
    fn evaluate(&self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)>;

    /// Computes only the loss value.
    ///
    /// # Errors
    ///
    /// Returns an error when `pred` and `target` shapes differ or are empty.
    fn value(&self, pred: &Tensor, target: &Tensor) -> Result<f32> {
        Ok(self.evaluate(pred, target)?.0)
    }
}

fn check(pred: &Tensor, target: &Tensor) -> Result<()> {
    if pred.dims() != target.dims() {
        return Err(TensorError::ShapeMismatch {
            left: pred.dims().to_vec(),
            right: target.dims().to_vec(),
        }
        .into());
    }
    if pred.is_empty() {
        return Err(TensorError::EmptyTensor.into());
    }
    Ok(())
}

/// Mean absolute error (the L1 loss used by the paper for both training and
/// evaluation, §3.1.2 and §4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Loss;

impl Loss for L1Loss {
    fn name(&self) -> &str {
        "l1"
    }

    fn evaluate(&self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
        check(pred, target)?;
        let n = pred.len() as f32;
        let diff = pred.sub(target)?;
        let value = diff.abs().sum() / n;
        let grad = diff.signum().scale(1.0 / n);
        Ok((value, grad))
    }
}

/// Mean squared error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn name(&self) -> &str {
        "mse"
    }

    fn evaluate(&self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
        check(pred, target)?;
        let n = pred.len() as f32;
        let diff = pred.sub(target)?;
        let value = diff.norm_sq() / n;
        let grad = diff.scale(2.0 / n);
        Ok((value, grad))
    }
}

/// Huber (smooth-L1) loss with transition point `delta`.
///
/// Quadratic for residuals smaller than `delta`, linear beyond — a robust
/// alternative mentioned in §3.3.2 ("other functions such as L2 can also be
/// used"), included here for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HuberLoss {
    /// Transition point between the quadratic and linear regimes.
    pub delta: f32,
}

impl HuberLoss {
    /// Creates a Huber loss with the given transition point.
    pub fn new(delta: f32) -> Self {
        HuberLoss { delta }
    }
}

impl Default for HuberLoss {
    fn default() -> Self {
        HuberLoss { delta: 1.0 }
    }
}

impl Loss for HuberLoss {
    fn name(&self) -> &str {
        "huber"
    }

    fn evaluate(&self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
        check(pred, target)?;
        let n = pred.len() as f32;
        let d = self.delta;
        let diff = pred.sub(target)?;
        let mut value = 0.0f32;
        let mut grad = diff.clone();
        for g in grad.as_mut_slice() {
            let r = *g;
            if r.abs() <= d {
                value += 0.5 * r * r;
                *g = r / n;
            } else {
                value += d * (r.abs() - 0.5 * d);
                *g = d * r.signum() / n;
            }
        }
        Ok((value / n, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_grad(loss: &dyn Loss, pred: &Tensor, target: &Tensor) -> Tensor {
        let eps = 1e-3;
        let mut grad = Tensor::zeros(pred.dims());
        for i in 0..pred.len() {
            let mut plus = pred.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = pred.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = loss.value(&plus, target).unwrap();
            let fm = loss.value(&minus, target).unwrap();
            grad.as_mut_slice()[i] = (fp - fm) / (2.0 * eps);
        }
        grad
    }

    #[test]
    fn l1_value_is_mean_absolute_error() {
        let pred = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 2.0, 5.0, 8.0], &[2, 2]).unwrap();
        let (v, _) = L1Loss.evaluate(&pred, &target).unwrap();
        assert!((v - (1.0 + 0.0 + 2.0 + 4.0) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn mse_value_is_mean_squared_error() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 4.0], &[1, 2]).unwrap();
        let (v, _) = MseLoss.evaluate(&pred, &target).unwrap();
        assert!((v - (1.0 + 4.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let pred = Tensor::randn(&[3, 4], 1.0, 5);
        let target = Tensor::randn(&[3, 4], 1.0, 6);
        let losses: Vec<Box<dyn Loss>> =
            vec![Box::new(L1Loss), Box::new(MseLoss), Box::new(HuberLoss::new(0.5))];
        for loss in &losses {
            let (_, grad) = loss.evaluate(&pred, &target).unwrap();
            let fd = finite_diff_grad(loss.as_ref(), &pred, &target);
            for (a, b) in grad.as_slice().iter().zip(fd.as_slice()) {
                assert!((a - b).abs() < 1e-2, "{} grad mismatch {a} vs {b}", loss.name());
            }
        }
    }

    #[test]
    fn zero_residual_gives_zero_loss_and_gradient() {
        let pred = Tensor::randn(&[2, 3], 1.0, 7);
        for loss in [&L1Loss as &dyn Loss, &MseLoss, &HuberLoss::default()] {
            let (v, g) = loss.evaluate(&pred, &pred).unwrap();
            assert_eq!(v, 0.0);
            assert_eq!(g.norm(), 0.0);
        }
    }

    #[test]
    fn losses_reject_shape_mismatch_and_empty() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(L1Loss.evaluate(&a, &b).is_err());
        let e = Tensor::zeros(&[0, 3]);
        assert!(MseLoss.evaluate(&e, &e).is_err());
    }

    #[test]
    fn huber_is_between_l1_and_l2_behaviour() {
        // For small residuals Huber ≈ 0.5*MSE, for large residuals it grows linearly.
        let pred = Tensor::from_vec(vec![0.1, 10.0], &[1, 2]).unwrap();
        let target = Tensor::zeros(&[1, 2]);
        let (h, _) = HuberLoss::new(1.0).evaluate(&pred, &target).unwrap();
        let expected = (0.5 * 0.1f32 * 0.1 + 1.0 * (10.0 - 0.5)) / 2.0;
        assert!((h - expected).abs() < 1e-5);
    }

    #[test]
    fn losses_are_bit_identical_across_backends() {
        use fuse_backend::{with_backend, BackendChoice};
        // 19 elements: off every SIMD lane multiple, so remainders are hit.
        let pred = Tensor::randn(&[1, 19], 1.0, 8);
        let target = Tensor::randn(&[1, 19], 1.0, 9);
        for loss in [&L1Loss as &dyn Loss, &MseLoss, &HuberLoss::default()] {
            let run = |choice| {
                with_backend(choice, || {
                    let (v, g) = loss.evaluate(&pred, &target).unwrap();
                    (v.to_bits(), g.as_slice().to_vec())
                })
            };
            assert_eq!(
                run(BackendChoice::Scalar),
                run(BackendChoice::Simd),
                "{} diverged between backends",
                loss.name()
            );
        }
    }

    #[test]
    fn loss_names_are_distinct() {
        assert_ne!(L1Loss.name(), MseLoss.name());
        assert_ne!(MseLoss.name(), HuberLoss::default().name());
    }
}
