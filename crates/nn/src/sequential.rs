//! Sequential container with flattened parameter access.

use fuse_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;
use crate::Result;

/// An ordered stack of layers executed front to back.
///
/// Besides the obvious `forward`/`backward` plumbing, `Sequential` exposes the
/// model parameters and gradients as single flattened `Vec<f32>`s
/// ([`Sequential::flat_params`] / [`Sequential::flat_grads`]). This is the
/// representation the optimizers and the MAML outer loop in `fuse-core`
/// operate on: snapshotting θ, taking an inner gradient step, and restoring θ
/// are all plain vector copies.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Sequential {
    /// Deep-copies every layer (parameters, gradients and cached
    /// activations). The parallel backend clones models per episode/batch so
    /// pool threads never share mutable layer state.
    fn clone(&self) -> Self {
        Sequential { layers: self.layers.iter().map(|l| l.clone_box()).collect() }
    }
}

impl Sequential {
    /// Creates a sequential model from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Names of the layers in execution order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// The layers in execution order (read-only; used by op-graph lowering).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs the forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Runs the backward pass through every layer in reverse order,
    /// accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered (e.g. backward before
    /// forward).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Resets every parameter gradient to zero.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn param_len(&self) -> usize {
        self.layers.iter().map(|l| l.param_len()).sum()
    }

    /// All parameters flattened into a single vector, in layer order.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_len());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.as_slice());
            }
        }
        out
    }

    /// All parameter gradients flattened into a single vector, matching the
    /// layout of [`Sequential::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_len());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.as_slice());
            }
        }
        out
    }

    /// Overwrites all parameters from a flattened vector produced by
    /// [`Sequential::flat_params`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when the length differs from
    /// [`Sequential::param_len`].
    pub fn set_flat_params(&mut self, flat: &[f32]) -> Result<()> {
        if flat.len() != self.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: self.param_len(),
                actual: flat.len(),
            });
        }
        let mut offset = 0usize;
        for layer in &mut self.layers {
            let shapes: Vec<Vec<usize>> =
                layer.params().iter().map(|p| p.dims().to_vec()).collect();
            let mut new_params = Vec::with_capacity(shapes.len());
            for dims in shapes {
                let len: usize = dims.iter().product();
                let t = Tensor::from_vec(flat[offset..offset + len].to_vec(), &dims)?;
                offset += len;
                new_params.push(t);
            }
            layer.set_params(&new_params)?;
        }
        Ok(())
    }

    /// Index ranges of each layer's parameters inside the flattened vector.
    ///
    /// Parameter-free layers (ReLU, Flatten, Dropout) contribute empty
    /// ranges. The fine-tuning code uses this to freeze everything but the
    /// last fully-connected layer.
    pub fn layer_param_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut ranges = Vec::with_capacity(self.layers.len());
        let mut offset = 0usize;
        for layer in &self.layers {
            let len = layer.param_len();
            ranges.push(offset..offset + len);
            offset += len;
        }
        ranges
    }

    /// Builds a boolean trainability mask over the flattened parameters that
    /// enables only the last layer that actually has parameters.
    pub fn last_layer_mask(&self) -> Vec<bool> {
        let ranges = self.layer_param_ranges();
        let mut mask = vec![false; self.param_len()];
        if let Some(range) = ranges.iter().rev().find(|r| !r.is_empty()) {
            for m in &mut mask[range.clone()] {
                *m = true;
            }
        }
        mask
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layer_names())
            .field("param_len", &self.param_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(3, 4, 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, 2).unwrap()),
        ])
    }

    #[test]
    fn clone_is_deep_and_independent() {
        let mut original = tiny_model();
        let mut copy = original.clone();
        assert_eq!(original.flat_params(), copy.flat_params());
        // Training the copy must not touch the original's parameters, and
        // both must produce identical outputs from identical states.
        let x = Tensor::randn(&[4, 3], 1.0, 9);
        let y_original = original.forward(&x, false).unwrap();
        let y_copy = copy.forward(&x, false).unwrap();
        assert_eq!(y_original.as_slice(), y_copy.as_slice());
        let before = original.flat_params();
        let mut shifted = copy.flat_params();
        shifted.iter_mut().for_each(|p| *p += 1.0);
        copy.set_flat_params(&shifted).unwrap();
        assert_eq!(original.flat_params(), before);
        assert_ne!(original.flat_params(), copy.flat_params());
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = tiny_model();
        let x = Tensor::randn(&[5, 3], 1.0, 3);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[5, 2]);
        m.zero_grad();
        let gx = m.backward(&Tensor::ones(&[5, 2])).unwrap();
        assert_eq!(gx.dims(), &[5, 3]);
    }

    #[test]
    fn flat_params_round_trip() {
        let mut m = tiny_model();
        let params = m.flat_params();
        assert_eq!(params.len(), m.param_len());
        assert_eq!(m.param_len(), 3 * 4 + 4 + 4 * 2 + 2);
        let perturbed: Vec<f32> = params.iter().map(|p| p + 1.0).collect();
        m.set_flat_params(&perturbed).unwrap();
        let back = m.flat_params();
        for (a, b) in back.iter().zip(&params) {
            assert!((a - b - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn set_flat_params_rejects_wrong_length() {
        let mut m = tiny_model();
        assert!(matches!(m.set_flat_params(&[0.0; 3]), Err(NnError::ParamLengthMismatch { .. })));
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let mut m = tiny_model();
        let x = Tensor::randn(&[4, 3], 1.0, 9);
        m.zero_grad();
        m.forward(&x, true).unwrap();
        m.backward(&Tensor::ones(&[4, 2])).unwrap();
        let g1 = m.flat_grads();
        m.forward(&x, true).unwrap();
        m.backward(&Tensor::ones(&[4, 2])).unwrap();
        let g2 = m.flat_grads();
        for (a, b) in g2.iter().zip(&g1) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
        m.zero_grad();
        assert!(m.flat_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn layer_param_ranges_cover_all_params() {
        let m = Sequential::new(vec![
            Box::new(Linear::new(3, 4, 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, 2).unwrap()),
        ]);
        let ranges = m.layer_param_ranges();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..16);
        assert!(ranges[1].is_empty());
        assert!(ranges[2].is_empty());
        assert_eq!(ranges[3], 16..26);
    }

    #[test]
    fn last_layer_mask_selects_final_linear() {
        let m = tiny_model();
        let mask = m.last_layer_mask();
        let trainable = mask.iter().filter(|&&b| b).count();
        assert_eq!(trainable, 4 * 2 + 2);
        assert!(!mask[0]);
        assert!(mask[m.param_len() - 1]);
    }

    #[test]
    fn empty_model_is_identity() {
        let mut m = Sequential::new(Vec::new());
        assert!(m.is_empty());
        let x = Tensor::randn(&[2, 2], 1.0, 1);
        assert_eq!(m.forward(&x, true).unwrap(), x);
    }

    #[test]
    fn training_reduces_loss_on_a_toy_regression() {
        use crate::loss::{L1Loss, Loss};
        use crate::optim::{Adam, Optimizer};
        // Learn y = [sum(x), -sum(x)] from random data.
        let mut m = tiny_model();
        let x = Tensor::randn(&[64, 3], 1.0, 11);
        let mut y_data = Vec::new();
        for i in 0..64 {
            let s: f32 = x.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            y_data.push(s);
            y_data.push(-s);
        }
        let y = Tensor::from_vec(y_data, &[64, 2]).unwrap();
        let loss = L1Loss;
        let mut opt = Adam::new(5e-2, m.param_len());
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let pred = m.forward(&x, true).unwrap();
            let (value, grad) = loss.evaluate(&pred, &y).unwrap();
            m.zero_grad();
            m.backward(&grad).unwrap();
            let mut params = m.flat_params();
            opt.step(&mut params, &m.flat_grads());
            m.set_flat_params(&params).unwrap();
            if first.is_none() {
                first = Some(value);
            }
            last = value;
        }
        assert!(last < 0.5 * first.unwrap(), "loss did not decrease: {first:?} -> {last}");
    }
}
