//! Learning-rate schedules.
//!
//! The paper trains with a fixed learning rate, but step decay and cosine
//! schedules are standard levers when moving the models to other datasets, so
//! the trainer exposes them as a small, composable abstraction.

use serde::{Deserialize, Serialize};

/// A deterministic learning-rate schedule over training epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The learning rate used for every epoch.
        lr: f32,
    },
    /// Multiply the learning rate by `gamma` every `step_epochs` epochs.
    StepDecay {
        /// Initial learning rate.
        initial_lr: f32,
        /// Number of epochs between decays.
        step_epochs: usize,
        /// Multiplicative decay factor (0 < gamma <= 1).
        gamma: f32,
    },
    /// Cosine annealing from the initial rate down to `min_lr` over
    /// `total_epochs` epochs.
    Cosine {
        /// Initial learning rate.
        initial_lr: f32,
        /// Final learning rate.
        min_lr: f32,
        /// Length of the annealing horizon in epochs.
        total_epochs: usize,
    },
}

impl LrSchedule {
    /// Learning rate to use for the given zero-based epoch.
    pub fn rate_at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { initial_lr, step_epochs, gamma } => {
                let steps = epoch.checked_div(step_epochs).unwrap_or(0);
                initial_lr * gamma.powi(steps as i32)
            }
            LrSchedule::Cosine { initial_lr, min_lr, total_epochs } => {
                if total_epochs == 0 {
                    return min_lr;
                }
                let progress = (epoch.min(total_epochs) as f32) / total_epochs as f32;
                let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_lr + (initial_lr - min_lr) * cosine
            }
        }
    }
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule::Constant { lr: 1e-3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_changes() {
        let s = LrSchedule::Constant { lr: 0.01 };
        for e in 0..100 {
            assert_eq!(s.rate_at(e), 0.01);
        }
    }

    #[test]
    fn step_decay_halves_at_the_right_epochs() {
        let s = LrSchedule::StepDecay { initial_lr: 0.1, step_epochs: 10, gamma: 0.5 };
        assert_eq!(s.rate_at(0), 0.1);
        assert_eq!(s.rate_at(9), 0.1);
        assert!((s.rate_at(10) - 0.05).abs() < 1e-7);
        assert!((s.rate_at(25) - 0.025).abs() < 1e-7);
        // Degenerate step size falls back to the initial rate.
        let d = LrSchedule::StepDecay { initial_lr: 0.1, step_epochs: 0, gamma: 0.5 };
        assert_eq!(d.rate_at(50), 0.1);
    }

    #[test]
    fn cosine_schedule_is_monotone_decreasing_to_min() {
        let s = LrSchedule::Cosine { initial_lr: 0.1, min_lr: 0.001, total_epochs: 20 };
        assert!((s.rate_at(0) - 0.1).abs() < 1e-6);
        for e in 1..=20 {
            assert!(s.rate_at(e) <= s.rate_at(e - 1) + 1e-7);
        }
        assert!((s.rate_at(20) - 0.001).abs() < 1e-6);
        assert!((s.rate_at(50) - 0.001).abs() < 1e-6);
        let zero = LrSchedule::Cosine { initial_lr: 0.1, min_lr: 0.01, total_epochs: 0 };
        assert_eq!(zero.rate_at(3), 0.01);
    }
}
