//! Concrete layer implementations: `Linear`, `Conv2d`, `Relu`, `Flatten`,
//! `Dropout`.

use fuse_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, linalg, Conv2dSpec, Tensor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::NnError;
use crate::layer::{Layer, LayerLowering};
use crate::Result;

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer computing `y = x·Wᵀ + b`.
///
/// Input is `[N, in_features]`, output `[N, out_features]`. The weight matrix
/// is stored `[out_features, in_features]` (PyTorch convention) so weights
/// exported from the paper's reference implementation map one-to-one.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidLayer(format!(
                "linear layer dimensions must be nonzero, got {in_features}x{out_features}"
            )));
        }
        Ok(Linear {
            in_features,
            out_features,
            weight: Tensor::kaiming_uniform(&[out_features, in_features], in_features, seed),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        })
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix (`[out_features, in_features]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector (`[out_features]`).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        "linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn lowering(&self) -> Option<LayerLowering<'_>> {
        Some(LayerLowering::Linear {
            in_features: self.in_features,
            out_features: self.out_features,
            weight: &self.weight,
            bias: &self.bias,
        })
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::InvalidLayer(format!(
                "linear expects [N, {}], got {:?}",
                self.in_features,
                input.dims()
            )));
        }
        let n = input.dims()[0];
        // y[N, out] = x[N, in] · Wᵀ[in, out] + b
        let mut out = vec![0.0f32; n * self.out_features];
        linalg::gemm_a_bt(
            input.as_slice(),
            self.weight.as_slice(),
            &mut out,
            n,
            self.in_features,
            self.out_features,
        );
        for row in 0..n {
            for (o, &b) in out[row * self.out_features..(row + 1) * self.out_features]
                .iter_mut()
                .zip(self.bias.as_slice())
            {
                *o += b;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_vec(out, &[n, self.out_features])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("linear".into()))?;
        let n = input.dims()[0];
        if grad_output.dims() != [n, self.out_features] {
            return Err(NnError::InvalidLayer(format!(
                "linear backward expects [{}, {}], got {:?}",
                n,
                self.out_features,
                grad_output.dims()
            )));
        }
        // grad_W[out, in] += grad_yᵀ[out, N] · x[N, in]
        let mut gw = vec![0.0f32; self.out_features * self.in_features];
        linalg::gemm_at_b(
            grad_output.as_slice(),
            input.as_slice(),
            &mut gw,
            n,
            self.out_features,
            self.in_features,
        );
        linalg::axpy(1.0, &gw, self.grad_weight.as_mut_slice());
        // grad_b[out] += sum over batch of grad_y
        for row in 0..n {
            for (gb, &g) in self.grad_bias.as_mut_slice().iter_mut().zip(
                &grad_output.as_slice()[row * self.out_features..(row + 1) * self.out_features],
            ) {
                *gb += g;
            }
        }
        // grad_x[N, in] = grad_y[N, out] · W[out, in]
        let mut gx = vec![0.0f32; n * self.in_features];
        linalg::gemm(
            grad_output.as_slice(),
            self.weight.as_slice(),
            &mut gx,
            n,
            self.out_features,
            self.in_features,
        );
        Ok(Tensor::from_vec(gx, &[n, self.in_features])?)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        if params.len() != 2
            || params[0].dims() != self.weight.dims()
            || params[1].dims() != self.bias.dims()
        {
            return Err(NnError::ParamLengthMismatch {
                expected: self.param_len(),
                actual: params.iter().map(|p| p.len()).sum(),
            });
        }
        self.weight = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution layer over `[N, C, H, W]` inputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer from a geometry spec with Kaiming-uniform
    /// initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for zero-sized channel counts or kernels.
    pub fn new(spec: Conv2dSpec, seed: u64) -> Result<Self> {
        if spec.in_channels == 0 || spec.out_channels == 0 || spec.kernel == 0 {
            return Err(NnError::InvalidLayer(format!("degenerate conv spec {spec:?}")));
        }
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        Ok(Conv2d {
            spec,
            weight: Tensor::kaiming_uniform(
                &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
                fan_in,
                seed,
            ),
            bias: Tensor::zeros(&[spec.out_channels]),
            grad_weight: Tensor::zeros(&[
                spec.out_channels,
                spec.in_channels,
                spec.kernel,
                spec.kernel,
            ]),
            grad_bias: Tensor::zeros(&[spec.out_channels]),
            cached_input: None,
        })
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn lowering(&self) -> Option<LayerLowering<'_>> {
        Some(LayerLowering::Conv2d { spec: self.spec, weight: &self.weight, bias: &self.bias })
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let out = conv2d_forward(input, &self.weight, &self.bias, &self.spec)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("conv2d".into()))?;
        let (gw, gb) = conv2d_backward_weight(input, grad_output, &self.spec)?;
        self.grad_weight.add_assign(&gw)?;
        self.grad_bias.add_assign(&gb)?;
        let gx = conv2d_backward_input(grad_output, &self.weight, input.dims(), &self.spec)?;
        Ok(gx)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        if params.len() != 2
            || params[0].dims() != self.weight.dims()
            || params[1].dims() != self.bias.dims()
        {
            return Err(NnError::ParamLengthMismatch {
                expected: self.param_len(),
                actual: params.iter().map(|p| p.len()).sum(),
            });
        }
        self.weight = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }
}

// ---------------------------------------------------------------------------
// Relu
// ---------------------------------------------------------------------------

/// Rectified Linear Unit activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn lowering(&self) -> Option<LayerLowering<'_>> {
        Some(LayerLowering::Relu)
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(input.relu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("relu".into()))?;
        let mask = input.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        Ok(grad_output.mul(&mask)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(NnError::ParamLengthMismatch { expected: 0, actual: params.len() })
        }
    }

    fn zero_grad(&mut self) {}
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens `[N, ...]` into `[N, prod(...)]`, preserving the batch dimension.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn lowering(&self) -> Option<LayerLowering<'_>> {
        Some(LayerLowering::Flatten)
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.shape().rank() < 2 {
            return Err(NnError::InvalidLayer(format!(
                "flatten expects at least rank 2, got {:?}",
                input.dims()
            )));
        }
        self.cached_dims = Some(input.dims().to_vec());
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        Ok(input.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("flatten".into()))?;
        Ok(grad_output.reshape(dims)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(NnError::ParamLengthMismatch { expected: 0, actual: params.len() })
        }
    }

    fn zero_grad(&mut self) {}
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: elements are zeroed with probability `p` during training
/// and the survivors scaled by `1 / (1 - p)`; inference is a no-op.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidLayer(format!("dropout probability {p} outside [0, 1)")));
        }
        Ok(Dropout { p, rng: StdRng::seed_from_u64(seed), cached_mask: None })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        "dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    // Dropout is exactly the identity at inference (`train = false`), which
    // is the only mode compiled plans execute.
    fn lowering(&self) -> Option<LayerLowering<'_>> {
        Some(LayerLowering::Identity)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if !train || self.p == 0.0 {
            self.cached_mask = Some(Tensor::ones(input.dims()));
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(input.dims());
        for m in mask.as_mut_slice() {
            if self.rng.gen::<f32>() >= self.p {
                *m = 1.0 / keep;
            }
        }
        let out = input.mul(&mask)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("dropout".into()))?;
        Ok(grad_output.mul(mask)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(NnError::ParamLengthMismatch { expected: 0, actual: params.len() })
        }
    }

    fn zero_grad(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_matches_manual_computation() {
        let mut layer = Linear::new(2, 2, 7).unwrap();
        layer
            .set_params(&[
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
                Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
            ])
            .unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        // y = [1*1+2*1+0.5, 3*1+4*1-0.5] = [3.5, 6.5]
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 17).unwrap();
        let x = Tensor::randn(&[4, 3], 1.0, 18);
        // Loss = sum(layer(x)) so dL/dy = ones.
        let y = layer.forward(&x, true).unwrap();
        let grad_out = Tensor::ones(y.dims());
        layer.zero_grad();
        let grad_in = layer.backward(&grad_out).unwrap();

        let eps = 1e-3;
        // Check weight gradient entries.
        let w0 = layer.weight.clone();
        let analytic_gw = layer.grad_weight.clone();
        for i in 0..w0.len() {
            let mut plus = w0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = w0.clone();
            minus.as_mut_slice()[i] -= eps;
            let mut lp = layer.clone();
            lp.set_params(&[plus, layer.bias.clone()]).unwrap();
            let mut lm = layer.clone();
            lm.set_params(&[minus, layer.bias.clone()]).unwrap();
            let fp = lp.forward(&x, true).unwrap().sum();
            let fm = lm.forward(&x, true).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - analytic_gw.as_slice()[i]).abs() < 1e-2);
        }
        // Check input gradient entries.
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = layer.clone().forward(&plus, true).unwrap().sum();
            let fm = layer.clone().forward(&minus, true).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - grad_in.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn linear_rejects_bad_shapes() {
        assert!(Linear::new(0, 4, 1).is_err());
        let mut layer = Linear::new(3, 4, 1).unwrap();
        assert!(layer.forward(&Tensor::zeros(&[2, 5]), true).is_err());
        assert!(layer.backward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn conv2d_layer_runs_forward_backward() {
        let spec = Conv2dSpec::same(5, 8, 3);
        let mut layer = Conv2d::new(spec, 3).unwrap();
        let x = Tensor::randn(&[2, 5, 8, 8], 1.0, 4);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        layer.zero_grad();
        let gx = layer.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert!(layer.grad_weight.norm() > 0.0);
        assert!(layer.grad_bias.norm() > 0.0);
    }

    #[test]
    fn conv2d_rejects_degenerate_spec() {
        let spec = Conv2dSpec { in_channels: 0, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        assert!(Conv2d::new(spec, 1).is_err());
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = relu.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[2])).is_err());
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut flat = Flatten::new();
        let x = Tensor::randn(&[3, 2, 4, 4], 1.0, 5);
        let y = flat.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[3, 32]);
        let gx = flat.backward(&Tensor::ones(&[3, 32])).unwrap();
        assert_eq!(gx.dims(), &[3, 2, 4, 4]);
    }

    #[test]
    fn flatten_rejects_rank1() {
        let mut flat = Flatten::new();
        assert!(flat.forward(&Tensor::ones(&[4]), true).is_err());
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, false).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_preserves_expectation_in_training() {
        let mut d = Dropout::new(0.3, 2).unwrap();
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true).unwrap();
        // Inverted dropout keeps the expected activation close to 1.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Backward masks the same elements.
        let g = d.backward(&Tensor::ones(&[10_000])).unwrap();
        assert_eq!(g, y);
    }

    #[test]
    fn dropout_rejects_invalid_probability() {
        assert!(Dropout::new(1.0, 1).is_err());
        assert!(Dropout::new(-0.1, 1).is_err());
        assert!(Dropout::new(0.0, 1).is_ok());
    }

    #[test]
    fn param_len_counts_scalars() {
        let layer = Linear::new(10, 4, 1).unwrap();
        assert_eq!(layer.param_len(), 10 * 4 + 4);
        let conv = Conv2d::new(Conv2dSpec::same(5, 16, 3), 2).unwrap();
        assert_eq!(conv.param_len(), 16 * 5 * 3 * 3 + 16);
    }
}
