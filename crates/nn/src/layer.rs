//! The [`Layer`] trait implemented by every network building block.

use fuse_tensor::{Conv2dSpec, Tensor};

use crate::Result;

/// A layer's declarative description for op-graph lowering, borrowed from the
/// live layer.
///
/// Layers that can be compiled into a `fuse-graph` execution plan expose one
/// of these from [`Layer::lowering`]; the `crate::lowering` module maps them
/// onto graph nodes. The description targets **inference** (`train = false`)
/// semantics — e.g. dropout lowers to [`LayerLowering::Identity`] because it
/// is exactly the identity outside training.
#[derive(Debug)]
pub enum LayerLowering<'a> {
    /// An im2col 2-D convolution with the given geometry and parameters.
    Conv2d {
        /// Kernel geometry.
        spec: Conv2dSpec,
        /// Weight tensor `[C_out, C_in, k, k]`.
        weight: &'a Tensor,
        /// Bias tensor `[C_out]`.
        bias: &'a Tensor,
    },
    /// A fully-connected layer `y = W·x + b`.
    Linear {
        /// Input features per sample.
        in_features: usize,
        /// Output features per sample.
        out_features: usize,
        /// Weight tensor `[out x in]`.
        weight: &'a Tensor,
        /// Bias tensor `[out]`.
        bias: &'a Tensor,
    },
    /// Element-wise `x.max(0.0)`.
    Relu,
    /// 2-D max pooling over non-overlapping `window × window` tiles with a
    /// stride equal to the window.
    MaxPool2d {
        /// Square pooling window edge (also the stride).
        window: usize,
    },
    /// Reshape to a flat per-sample vector.
    Flatten,
    /// Exact pass-through at inference time.
    Identity,
}

/// A differentiable network layer with cached activations.
///
/// Layers follow a classic layer-wise backpropagation contract:
///
/// 1. [`Layer::forward`] computes the output and caches whatever it needs for
///    the backward pass (typically its input).
/// 2. [`Layer::backward`] consumes the gradient of the loss with respect to
///    the layer output, accumulates parameter gradients internally, and
///    returns the gradient with respect to the layer input.
///
/// Parameter access is exposed as ordered lists of tensors so that
/// [`crate::Sequential`] can flatten them into a single vector — the
/// representation the optimizers and the meta-learning outer loop work with.
///
/// Layers are `Send + Sync` and clonable through [`Layer::clone_box`]: the
/// parallel execution backend clones whole models so independent episodes
/// (meta-learning tasks, evaluation batches) can run on pool threads without
/// sharing mutable state.
pub trait Layer: Send + Sync {
    /// Human-readable layer name used in error messages and summaries.
    fn name(&self) -> &str;

    /// Runs the forward pass, caching state for [`Layer::backward`].
    ///
    /// `train` distinguishes training mode from inference mode (it only
    /// matters for stochastic layers such as dropout).
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Runs the backward pass for the most recent forward call.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward` or when `grad_output`
    /// has an unexpected shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Ordered list of parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Ordered list of parameter gradient tensors, matching [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor>;

    /// Overwrites the parameters from an ordered list of tensors.
    ///
    /// # Errors
    ///
    /// Returns an error when the number or shapes of tensors do not match.
    fn set_params(&mut self, params: &[Tensor]) -> Result<()>;

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self);

    /// Total number of scalar parameters in this layer.
    fn param_len(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// The layer's op-graph lowering for inference execution, when one
    /// exists.
    ///
    /// `None` (the default) means the layer cannot be compiled into an
    /// execution plan; engines must fall back to walking the layer list with
    /// [`Layer::forward`]. Implementations must describe *exactly* the
    /// inference (`train = false`) forward semantics — compiled plans are
    /// required to be bit-identical to the legacy walk.
    fn lowering(&self) -> Option<LayerLowering<'_>> {
        None
    }

    /// Clones the layer behind a fresh box, including parameters, gradients
    /// and cached activations. Enables `Clone` for [`crate::Sequential`].
    ///
    /// Stochastic layer state is copied verbatim: a cloned dropout layer
    /// replays the same mask sequence as its source. Callers that clone a
    /// model repeatedly from one template (e.g. per-episode training loops)
    /// and need fresh randomness per clone must reseed those layers.
    fn clone_box(&self) -> Box<dyn Layer>;
}
