//! The [`Layer`] trait implemented by every network building block.

use fuse_tensor::Tensor;

use crate::Result;

/// A differentiable network layer with cached activations.
///
/// Layers follow a classic layer-wise backpropagation contract:
///
/// 1. [`Layer::forward`] computes the output and caches whatever it needs for
///    the backward pass (typically its input).
/// 2. [`Layer::backward`] consumes the gradient of the loss with respect to
///    the layer output, accumulates parameter gradients internally, and
///    returns the gradient with respect to the layer input.
///
/// Parameter access is exposed as ordered lists of tensors so that
/// [`crate::Sequential`] can flatten them into a single vector — the
/// representation the optimizers and the meta-learning outer loop work with.
///
/// Layers are `Send + Sync` and clonable through [`Layer::clone_box`]: the
/// parallel execution backend clones whole models so independent episodes
/// (meta-learning tasks, evaluation batches) can run on pool threads without
/// sharing mutable state.
pub trait Layer: Send + Sync {
    /// Human-readable layer name used in error messages and summaries.
    fn name(&self) -> &str;

    /// Runs the forward pass, caching state for [`Layer::backward`].
    ///
    /// `train` distinguishes training mode from inference mode (it only
    /// matters for stochastic layers such as dropout).
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Runs the backward pass for the most recent forward call.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward` or when `grad_output`
    /// has an unexpected shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Ordered list of parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Ordered list of parameter gradient tensors, matching [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor>;

    /// Overwrites the parameters from an ordered list of tensors.
    ///
    /// # Errors
    ///
    /// Returns an error when the number or shapes of tensors do not match.
    fn set_params(&mut self, params: &[Tensor]) -> Result<()>;

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self);

    /// Total number of scalar parameters in this layer.
    fn param_len(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Clones the layer behind a fresh box, including parameters, gradients
    /// and cached activations. Enables `Clone` for [`crate::Sequential`].
    ///
    /// Stochastic layer state is copied verbatim: a cloned dropout layer
    /// replays the same mask sequence as its source. Callers that clone a
    /// model repeatedly from one template (e.g. per-episode training loops)
    /// and need fresh randomness per clone must reseed those layers.
    fn clone_box(&self) -> Box<dyn Layer>;
}
