//! Checkpoint robustness: a serving deployment hot-swaps checkpoints at
//! runtime, so `fuse-nn::serialize` must (a) round-trip parameters
//! bit-exactly and (b) reject every malformed or mismatched checkpoint with
//! an explicit [`NnError`] — never a panic — leaving the target model
//! untouched.

use std::fs;
use std::path::PathBuf;

use fuse_nn::layers::{Linear, Relu};
use fuse_nn::{Checkpoint, NnError, Sequential};

/// Reads a checkpoint and applies it — the two-step flow every loader uses.
fn load(model: &mut Sequential, path: &std::path::Path) -> fuse_nn::Result<Checkpoint> {
    let checkpoint = Checkpoint::read(path)?;
    checkpoint.apply_to(model)?;
    Ok(checkpoint)
}

/// A private temp directory per test, so parallel tests never collide.
fn temp_path(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fuse_nn_checkpoint_robustness").join(test);
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join("ckpt.json")
}

/// Linear(4→8) → ReLU → Linear(8→3): 67 parameters.
fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(4, 8, seed).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(8, 3, seed + 1).unwrap()),
    ])
}

#[test]
fn round_trip_is_bit_exact() {
    let path = temp_path("round_trip");
    let original = model(1);
    Checkpoint::capture(&original, "robustness").write_json(&path).unwrap();

    let mut restored = model(77); // different init
    let checkpoint = load(&mut restored, &path).unwrap();
    assert_eq!(checkpoint.model_name, "robustness");
    assert_eq!(checkpoint.param_len, original.param_len());
    assert_eq!(checkpoint.layer_names, vec!["linear", "relu", "linear"]);

    // Bit equality, not approximate equality: compare the raw f32 bits.
    let a: Vec<u32> = original.flat_params().iter().map(|p| p.to_bits()).collect();
    let b: Vec<u32> = restored.flat_params().iter().map(|p| p.to_bits()).collect();
    assert_eq!(a, b, "restored parameters must be bit-identical");
    fs::remove_file(&path).ok();
}

#[test]
fn truncated_json_yields_serialization_error() {
    let path = temp_path("truncated");
    Checkpoint::capture(&model(2), "truncated").write_json(&path).unwrap();
    let full = fs::read_to_string(&path).unwrap();

    // Cut the file at several points, including mid-number and mid-string;
    // every prefix must produce an explicit error, never a panic.
    for cut in [0, 1, full.len() / 4, full.len() / 2, full.len() - 2] {
        fs::write(&path, &full[..cut]).unwrap();
        let mut target = model(3);
        let before = target.flat_params();
        let result = load(&mut target, &path);
        assert!(
            matches!(result, Err(NnError::Serialization(_))),
            "truncation at byte {cut} must yield NnError::Serialization, got {result:?}"
        );
        assert_eq!(target.flat_params(), before, "a failed load must not modify the model");
    }
    fs::remove_file(&path).ok();
}

#[test]
fn wrong_param_len_yields_param_length_mismatch() {
    let path = temp_path("wrong_param_len");
    Checkpoint::capture(&model(4), "wrong-len").write_json(&path).unwrap();

    // Lie about param_len while keeping the params vector intact.
    let json = fs::read_to_string(&path).unwrap();
    let expected_len = model(4).param_len();
    let tampered = json.replace(
        &format!("\"param_len\":{expected_len}"),
        &format!("\"param_len\":{}", expected_len + 1),
    );
    assert_ne!(json, tampered, "test must actually tamper with the checkpoint");
    fs::write(&path, tampered).unwrap();
    let mut target = model(5);
    assert!(matches!(load(&mut target, &path), Err(NnError::ParamLengthMismatch { .. })));

    // A checkpoint for a genuinely smaller model is rejected the same way.
    let small = Sequential::new(vec![Box::new(Linear::new(2, 2, 1).unwrap())]);
    Checkpoint::capture(&small, "small").write_json(&path).unwrap();
    let result = load(&mut target, &path);
    match result {
        Err(NnError::ParamLengthMismatch { expected, actual }) => {
            assert_eq!(expected, target.param_len());
            assert_eq!(actual, small.param_len());
        }
        other => panic!("expected ParamLengthMismatch, got {other:?}"),
    }
    fs::remove_file(&path).ok();
}

#[test]
fn mismatched_layer_names_yield_architecture_mismatch() {
    let path = temp_path("layer_names");
    // Same total parameter count (67) but a different layer stack: the
    // param_len check alone cannot catch this.
    let donor = Sequential::new(vec![
        Box::new(Linear::new(4, 8, 9).unwrap()),
        Box::new(Linear::new(8, 3, 10).unwrap()),
    ]);
    let mut target = model(6);
    assert_eq!(donor.param_len(), target.param_len(), "test needs matching param counts");

    Checkpoint::capture(&donor, "donor").write_json(&path).unwrap();
    let before = target.flat_params();
    let result = load(&mut target, &path);
    match result {
        Err(NnError::ArchitectureMismatch { expected, actual }) => {
            assert_eq!(expected, vec!["linear", "relu", "linear"]);
            assert_eq!(actual, vec!["linear", "linear"]);
        }
        other => panic!("expected ArchitectureMismatch, got {other:?}"),
    }
    assert_eq!(target.flat_params(), before, "a rejected checkpoint must not modify the model");
    fs::remove_file(&path).ok();
}

#[test]
fn garbage_and_shape_confusion_yield_errors_not_panics() {
    let path = temp_path("garbage");
    let mut target = model(7);
    for payload in [
        "",
        "not json at all",
        "null",
        "[1,2,3]",
        "{}",
        "{\"model_name\":3,\"param_len\":\"x\",\"layer_names\":{},\"params\":null}",
        "{\"model_name\":\"m\",\"param_len\":67,\"layer_names\":[\"linear\",\"relu\",\"linear\"],\"params\":\"oops\"}",
    ] {
        fs::write(&path, payload).unwrap();
        let result = load(&mut target, &path);
        assert!(
            matches!(result, Err(NnError::Serialization(_))),
            "payload {payload:?} must yield NnError::Serialization, got {result:?}"
        );
    }
    fs::remove_file(&path).ok();
}
