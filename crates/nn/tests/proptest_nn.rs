//! Property-based tests for the neural-network substrate.

use fuse_nn::layers::{Flatten, Linear, Relu};
use fuse_nn::{Adam, L1Loss, Layer, Loss, MseLoss, Optimizer, Sequential, Sgd};
use fuse_tensor::Tensor;
use proptest::prelude::*;

fn batch(n: usize, d: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-5.0f32..5.0, n * d)
        .prop_map(move |v| Tensor::from_vec(v, &[n, d]).expect("length matches shape"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Losses are non-negative and zero only at the target.
    #[test]
    fn losses_are_nonnegative(pred in batch(4, 6), target in batch(4, 6)) {
        let (l1, _) = L1Loss.evaluate(&pred, &target).unwrap();
        let (l2, _) = MseLoss.evaluate(&pred, &target).unwrap();
        prop_assert!(l1 >= 0.0);
        prop_assert!(l2 >= 0.0);
        let (self_l1, _) = L1Loss.evaluate(&pred, &pred).unwrap();
        prop_assert_eq!(self_l1, 0.0);
    }

    /// A ReLU layer never produces negative activations and its backward pass
    /// never amplifies the gradient.
    #[test]
    fn relu_output_nonnegative_and_gradient_bounded(x in batch(3, 8)) {
        let mut relu = Relu::new();
        let y = relu.forward(&x, true).unwrap();
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let g = Tensor::ones(&[3, 8]);
        let gx = relu.backward(&g).unwrap();
        prop_assert!(gx.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    /// Linear layers are, in fact, linear: f(a*x) = a*f(x) - (a-1)*bias_term.
    /// With zero bias, f(a*x) = a*f(x).
    #[test]
    fn linear_layer_is_homogeneous_with_zero_bias(x in batch(2, 5), a in -3.0f32..3.0) {
        let mut layer = Linear::new(5, 4, 7).unwrap();
        let zero_bias = Tensor::zeros(&[4]);
        let w = layer.weight().clone();
        layer.set_params(&[w, zero_bias]).unwrap();
        let fx = layer.forward(&x, true).unwrap();
        let fax = layer.forward(&x.scale(a), true).unwrap();
        for (u, v) in fax.as_slice().iter().zip(fx.scale(a).as_slice()) {
            prop_assert!((u - v).abs() < 1e-2);
        }
    }

    /// Flatten preserves every value.
    #[test]
    fn flatten_preserves_values(v in prop::collection::vec(-2.0f32..2.0, 2 * 3 * 4)) {
        let x = Tensor::from_vec(v, &[2, 3, 4]).unwrap();
        let mut flat = Flatten::new();
        let y = flat.forward(&x, true).unwrap();
        prop_assert_eq!(y.as_slice(), x.as_slice());
        prop_assert_eq!(y.dims(), &[2, 12]);
    }

    /// One SGD step moves parameters opposite to the gradient.
    #[test]
    fn sgd_step_moves_against_gradient(
        params in prop::collection::vec(-1.0f32..1.0, 6),
        grads in prop::collection::vec(-1.0f32..1.0, 6),
        lr in 0.001f32..0.5,
    ) {
        let mut p = params.clone();
        let mut opt = Sgd::new(lr);
        opt.step(&mut p, &grads);
        for i in 0..6 {
            let delta = p[i] - params[i];
            prop_assert!((delta + lr * grads[i]).abs() < 1e-5);
        }
    }

    /// Adam with a masked step never changes frozen parameters.
    #[test]
    fn adam_masked_step_freezes_parameters(
        params in prop::collection::vec(-1.0f32..1.0, 8),
        grads in prop::collection::vec(-1.0f32..1.0, 8),
        mask_bits in prop::collection::vec(any::<bool>(), 8),
    ) {
        let mut p = params.clone();
        let mut opt = Adam::new(0.05, 8);
        opt.step_masked(&mut p, &grads, &mask_bits);
        for i in 0..8 {
            if !mask_bits[i] {
                prop_assert_eq!(p[i], params[i]);
            }
        }
    }

    /// Round-tripping parameters through flat_params/set_flat_params is exact
    /// and does not change model predictions.
    #[test]
    fn sequential_param_round_trip_preserves_predictions(x in batch(3, 6)) {
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(6, 5, 11).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, 12).unwrap()),
        ]);
        let before = model.forward(&x, false).unwrap();
        let params = model.flat_params();
        model.set_flat_params(&params).unwrap();
        let after = model.forward(&x, false).unwrap();
        prop_assert_eq!(before, after);
    }
}
