//! Property tests for the int8 quantization scheme and the tolerance
//! comparator: the round-trip error bound, scale well-definedness, and the
//! ULP mapping's metric properties.

use fuse_quant::{dequantize_rows, quantize_rows, ulp_distance, Tolerance};
use proptest::prelude::*;

/// Deterministic weight rows spanning signs, magnitudes and exact zeros.
fn weight_rows(max_rows: usize, max_len: usize) -> impl Strategy<Value = (Vec<f32>, usize)> {
    (1usize..=max_rows, 1usize..=max_len, any::<u32>()).prop_map(|(rows, row_len, seed)| {
        let weights = (0..rows * row_len)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed.wrapping_mul(40503))
                    % 4096) as f32;
                if i % 11 == 0 {
                    0.0
                } else {
                    (x * 1e-3 - 2.0) * 10f32.powi((i % 5) as i32 - 2)
                }
            })
            .collect();
        (weights, row_len)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-element round-trip error never exceeds half the row's scale
    /// (`max|w| / 254`), and zeros survive exactly.
    #[test]
    fn quantize_round_trip_error_is_within_half_scale(case in weight_rows(6, 40)) {
        let (weights, row_len) = case;
        let q = quantize_rows(&weights, row_len);
        prop_assert_eq!(q.values.len(), weights.len());
        prop_assert_eq!(q.scales.len(), weights.len() / row_len);
        let mut back = vec![0.0f32; weights.len()];
        dequantize_rows(&q.values, &q.scales, row_len, &mut back);
        for (r, (w_row, b_row)) in
            weights.chunks_exact(row_len).zip(back.chunks_exact(row_len)).enumerate()
        {
            let scale = q.scales[r];
            prop_assert!(scale > 0.0, "scale must be positive, got {}", scale);
            let budget = scale * 0.5 * (1.0 + 1e-5);
            for (w, b) in w_row.iter().zip(b_row) {
                prop_assert!((w - b).abs() <= budget,
                    "row {}: {} -> {} exceeds half-scale {}", r, w, b, budget);
                if *w == 0.0 {
                    prop_assert_eq!(*b, 0.0, "zeros must round-trip exactly");
                }
            }
        }
    }

    /// Quantized magnitudes never exceed 127 (symmetric range, -128 unused),
    /// and every row's maximum magnitude lands on ±127 (the scale is tight).
    #[test]
    fn quantized_range_is_symmetric_and_tight(case in weight_rows(4, 24)) {
        let (weights, row_len) = case;
        let q = quantize_rows(&weights, row_len);
        prop_assert!(q.values.iter().all(|&v| v != i8::MIN));
        for (r, w_row) in weights.chunks_exact(row_len).enumerate() {
            if w_row.iter().any(|w| *w != 0.0) {
                let q_row = &q.values[r * row_len..(r + 1) * row_len];
                let max_q = q_row.iter().map(|v| v.unsigned_abs()).max().unwrap();
                prop_assert_eq!(max_q, 127, "row {} scale is not tight", r);
            }
        }
    }

    /// The ULP mapping is a metric on finite floats: symmetric, zero only
    /// for bit-equal values (mod signed zero), and adjacent representable
    /// floats are exactly 1 apart.
    #[test]
    fn ulp_distance_is_a_metric(bits_a in any::<u32>(), bits_b in any::<u32>()) {
        // Clamp random bit patterns into the finite range (no prop_assume
        // in the vendored stand-in): mask out exponent-all-ones patterns.
        let finite = |bits: u32| {
            let v = f32::from_bits(bits);
            if v.is_finite() { v } else { f32::from_bits(bits & !0x7f80_0000) }
        };
        let (a, b) = (finite(bits_a), finite(bits_b));
        prop_assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
        prop_assert_eq!(ulp_distance(a, a), 0);
        if ulp_distance(a, b) == 0 {
            prop_assert!(a == b, "0-ulp values must compare equal, got {} vs {}", a, b);
        }
        let next = f32::from_bits(if a >= 0.0 { a.to_bits() + 1 } else { a.to_bits() - 1 });
        if next.is_finite() {
            prop_assert_eq!(ulp_distance(a, next), 1);
        }
    }

    /// A tolerance with a pure relative budget admits exactly the pairs
    /// within that relative distance (for well-scaled finite values).
    #[test]
    fn relative_tolerance_admits_iff_within_budget(
        mag in 1e-3f32..1e3,
        rel in 0.0f32..0.5,
    ) {
        let tol = Tolerance { max_ulp: 0, max_abs: 0.0, max_rel: 1e-2 };
        let a = mag;
        let b = mag * (1.0 + rel);
        let observed = (a - b).abs() / a.abs().max(b.abs());
        prop_assert_eq!(tol.admits(a, b), observed <= 1e-2);
    }
}
