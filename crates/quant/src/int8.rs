//! Per-channel symmetric int8 quantization.
//!
//! A weight tensor is quantized one **output channel** (row) at a time: the
//! scale for row `r` is `max|w[r]| / 127` (or `1.0` for an all-zero row, so
//! dequantization is always well-defined), and every element is
//! `round(w / scale)` clamped to `[-127, 127]`. `-128` is never produced —
//! the symmetric range keeps `q * scale` representable without special
//! cases.
//!
//! The scheme is exact for zeros and bounds the per-element round-trip
//! error by `scale / 2`, i.e. `max|w[r]| / 254` — the property the crate's
//! proptests pin.

/// The maximum magnitude of a quantized value (symmetric range, `-128`
/// unused).
pub const QMAX: f32 = 127.0;

/// A per-channel int8 quantization of a row-major weight matrix: `rows`
/// rows of `row_len` int8 values plus one f32 scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRows {
    /// Quantized values, row-major, same layout as the source weights.
    pub values: Vec<i8>,
    /// One dequantization scale per row (`w ≈ values * scale`).
    pub scales: Vec<f32>,
    /// Row length (the per-channel fan-in).
    pub row_len: usize,
}

/// Quantizes a row-major weight matrix with one symmetric scale per row.
///
/// `weights.len()` must be a multiple of `row_len`; each chunk of
/// `row_len` elements is one output channel.
///
/// # Panics
///
/// Panics when `row_len == 0` or `weights.len()` is not a multiple of
/// `row_len`, or when a weight is non-finite (quantizing NaN/∞ would
/// silently poison the served model).
pub fn quantize_rows(weights: &[f32], row_len: usize) -> QuantizedRows {
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(weights.len() % row_len, 0, "weights must be whole rows of row_len");
    let rows = weights.len() / row_len;
    let mut values = Vec::with_capacity(weights.len());
    let mut scales = Vec::with_capacity(rows);
    for row in weights.chunks_exact(row_len) {
        let mut max_abs = 0.0f32;
        for &w in row {
            assert!(w.is_finite(), "cannot quantize non-finite weight {w}");
            max_abs = max_abs.max(w.abs());
        }
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / QMAX };
        scales.push(scale);
        for &w in row {
            let q = (w / scale).round().clamp(-QMAX, QMAX);
            values.push(q as i8);
        }
    }
    QuantizedRows { values, scales, row_len }
}

/// Dequantizes per-channel int8 rows back to f32 (`out[r][j] =
/// values[r][j] * scales[r]`).
///
/// # Panics
///
/// Panics when the value/scale/output lengths disagree.
pub fn dequantize_rows(values: &[i8], scales: &[f32], row_len: usize, out: &mut [f32]) {
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(values.len(), out.len(), "output length must match values");
    assert_eq!(values.len(), scales.len() * row_len, "one scale per row of row_len");
    for ((q_row, o_row), &scale) in
        values.chunks_exact(row_len).zip(out.chunks_exact_mut(row_len)).zip(scales)
    {
        for (o, &q) in o_row.iter_mut().zip(q_row) {
            *o = f32::from(q) * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip_error_is_bounded_by_half_scale() {
        let weights: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.037).collect();
        let q = quantize_rows(&weights, 16);
        assert_eq!(q.scales.len(), 4);
        let mut back = vec![0.0f32; weights.len()];
        dequantize_rows(&q.values, &q.scales, 16, &mut back);
        for (r, (w_row, b_row)) in weights.chunks_exact(16).zip(back.chunks_exact(16)).enumerate() {
            let budget = q.scales[r] * 0.5 + 1e-6;
            for (w, b) in w_row.iter().zip(b_row) {
                assert!((w - b).abs() <= budget, "row {r}: {w} -> {b} exceeds {budget}");
            }
        }
    }

    #[test]
    fn zeros_quantize_exactly_and_all_zero_rows_get_unit_scale() {
        let q = quantize_rows(&[0.0; 8], 4);
        assert_eq!(q.scales, vec![1.0, 1.0]);
        assert!(q.values.iter().all(|&v| v == 0));
        let mut back = vec![9.0f32; 8];
        dequantize_rows(&q.values, &q.scales, 4, &mut back);
        assert_eq!(back, vec![0.0; 8]);
    }

    #[test]
    fn extremes_hit_qmax_without_overflow() {
        let q = quantize_rows(&[-3.0, 3.0, 1.5, 0.0], 4);
        assert_eq!(q.values[0], -127);
        assert_eq!(q.values[1], 127);
        assert_eq!(q.scales[0], 3.0 / QMAX);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_weights_are_rejected() {
        quantize_rows(&[1.0, f32::NAN], 2);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn ragged_rows_are_rejected() {
        quantize_rows(&[1.0, 2.0, 3.0], 2);
    }
}
