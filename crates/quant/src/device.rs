//! The device-memory seam and its host (CPU) implementation.
//!
//! A quantized plan does not hold raw weight slices at execution time — it
//! holds opaque [`BufferId`] handles into a [`DeviceMemory`], obtained by
//! uploading the int8 weights and f32 scales once when the plan is
//! prepared. The int8 gemm/conv entry points execute against those
//! handles, taking host-side f32 activations and writing host-side f32
//! outputs. That split is exactly the shape a GPU backend needs (weights
//! batch-resident on the device, activations streamed per micro-batch), so
//! swapping [`HostDevice`] for a CUDA/ROCm implementation touches nothing
//! above this trait — not `ExecPlan`, not `ServeEngine`, not the cluster.
//!
//! [`HostDevice`] is the reference implementation: buffers are plain
//! vectors, "upload" is a copy, and the kernels are AVX2+FMA
//! convert-and-fmadd loops (runtime-detected via
//! [`fuse_backend::fma_available`]) with a portable accumulator fallback.
//! Both kernel flavours accumulate in f32 and dequantize once per output
//! element (`acc * scale[channel] + bias[channel]`), so the quantization
//! error is the weight rounding only.
//!
//! Everything here is relaxed-contract: the AVX2 path reassociates the
//! k-reduction across eight lanes. Outputs are verified against float
//! goldens by tolerance (see [`crate::compare`]).

use fuse_parallel as par;
use fuse_tensor::conv::Conv2dSpec;

/// Opaque handle to a device-resident buffer returned by the upload
/// methods of [`DeviceMemory`]. Handles are only meaningful on the device
/// that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// The raw slot index (stable within one device instance; useful for
    /// debug output only).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The device-memory seam the int8 serving path is written against.
///
/// Implementations own buffer storage and the quantized compute kernels.
/// Weights and scales are uploaded once per plan (batch-resident);
/// activations and outputs cross the seam as host slices on every call —
/// the transfer policy for those is the implementation's concern (the host
/// device reads them in place; a GPU device would stage them).
pub trait DeviceMemory: Send + std::fmt::Debug {
    /// Short lowercase device name for reports (`"host"`, `"cuda"`, …).
    fn name(&self) -> &'static str;

    /// Uploads an int8 buffer (quantized weights), returning its handle.
    fn upload_i8(&mut self, data: &[i8]) -> BufferId;

    /// Uploads an f32 buffer (per-channel scales), returning its handle.
    fn upload_f32(&mut self, data: &[f32]) -> BufferId;

    /// Downloads an f32 buffer into `out` (length must match the upload).
    fn download_f32(&self, buf: BufferId, out: &mut [f32]);

    /// Quantized fully-connected forward: `out[m x n] = act[m x k] ·
    /// dequant(weights)[n x k]ᵀ + bias`, with optional fused ReLU.
    ///
    /// `weights` is an [`Self::upload_i8`] handle holding `n` rows of `k`
    /// int8 values; `scales` an [`Self::upload_f32`] handle with `n`
    /// per-row scales. Accumulation is f32; each output element is
    /// dequantized once (`acc * scale[j] + bias[j]`).
    #[allow(clippy::too_many_arguments)]
    fn gemm_i8(
        &self,
        act: &[f32],
        weights: BufferId,
        scales: BufferId,
        bias: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        relu: bool,
    );

    /// Quantized conv2d forward over a `[batch, C, H, W]` input, direct
    /// (no im2col scratch): `out[b][oc][oy][ox] = Σ act·w + bias[oc]`,
    /// dequantized per output channel, optional fused ReLU.
    ///
    /// `weights` holds `spec.out_channels` rows of `spec.in_channels *
    /// kernel²` int8 values (the same row-major layout as the float
    /// weights); `scales` one scale per output channel.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_i8(
        &self,
        input: &[f32],
        weights: BufferId,
        scales: BufferId,
        bias: &[f32],
        out: &mut [f32],
        batch: usize,
        spec: &Conv2dSpec,
        h: usize,
        w: usize,
        relu: bool,
    );
}

/// One slot of [`HostDevice`] storage.
#[derive(Debug)]
enum Slot {
    I8(Vec<i8>),
    F32(Vec<f32>),
}

/// The host (CPU) implementation of [`DeviceMemory`]: buffers are vectors,
/// kernels are AVX2+FMA when the CPU supports it, portable otherwise.
#[derive(Debug, Default)]
pub struct HostDevice {
    slots: Vec<Slot>,
}

impl HostDevice {
    /// Creates an empty host device.
    pub fn new() -> Self {
        Self::default()
    }

    fn i8_slot(&self, buf: BufferId) -> &[i8] {
        match &self.slots[buf.0] {
            Slot::I8(v) => v,
            Slot::F32(_) => panic!("buffer {} holds f32 data, expected i8", buf.0),
        }
    }

    fn f32_slot(&self, buf: BufferId) -> &[f32] {
        match &self.slots[buf.0] {
            Slot::F32(v) => v,
            Slot::I8(_) => panic!("buffer {} holds i8 data, expected f32", buf.0),
        }
    }
}

impl DeviceMemory for HostDevice {
    fn name(&self) -> &'static str {
        "host"
    }

    fn upload_i8(&mut self, data: &[i8]) -> BufferId {
        self.slots.push(Slot::I8(data.to_vec()));
        BufferId(self.slots.len() - 1)
    }

    fn upload_f32(&mut self, data: &[f32]) -> BufferId {
        self.slots.push(Slot::F32(data.to_vec()));
        BufferId(self.slots.len() - 1)
    }

    fn download_f32(&self, buf: BufferId, out: &mut [f32]) {
        let src = self.f32_slot(buf);
        assert_eq!(src.len(), out.len(), "download length must match upload");
        out.copy_from_slice(src);
    }

    fn gemm_i8(
        &self,
        act: &[f32],
        weights: BufferId,
        scales: BufferId,
        bias: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        relu: bool,
    ) {
        let wq = self.i8_slot(weights);
        let sc = self.f32_slot(scales);
        assert_eq!(act.len(), m * k, "activations must be [m x k]");
        assert_eq!(wq.len(), n * k, "weights must be [n x k]");
        assert_eq!(sc.len(), n, "one scale per output channel");
        assert_eq!(bias.len(), n, "one bias per output channel");
        assert_eq!(out.len(), m * n, "output must be [m x n]");
        if m > 1 && par::parallel_beneficial(m * k * n) {
            par::par_chunks_mut(out, n, |i, out_row| {
                gemm_i8_row(&act[i * k..(i + 1) * k], wq, sc, bias, out_row, k, relu);
            });
        } else {
            for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
                gemm_i8_row(&act[i * k..(i + 1) * k], wq, sc, bias, out_row, k, relu);
            }
        }
    }

    fn conv2d_i8(
        &self,
        input: &[f32],
        weights: BufferId,
        scales: BufferId,
        bias: &[f32],
        out: &mut [f32],
        batch: usize,
        spec: &Conv2dSpec,
        h: usize,
        w: usize,
        relu: bool,
    ) {
        let wq = self.i8_slot(weights);
        let sc = self.f32_slot(scales);
        let (out_h, out_w) =
            spec.output_size(h, w).expect("conv geometry validated at plan compile time");
        let in_stride = spec.in_channels * h * w;
        let out_stride = spec.out_channels * out_h * out_w;
        assert_eq!(input.len(), batch * in_stride, "input must be [batch, C, H, W]");
        assert_eq!(wq.len(), spec.weight_len(), "weights must match the conv spec");
        assert_eq!(sc.len(), spec.out_channels, "one scale per output channel");
        assert_eq!(bias.len(), spec.out_channels, "one bias per output channel");
        assert_eq!(out.len(), batch * out_stride, "output must be [batch, OC, OH, OW]");
        if batch > 1 && par::parallel_beneficial(out.len() * spec.in_channels * spec.kernel) {
            par::par_chunks_mut(out, out_stride, |b, out_sample| {
                conv2d_i8_sample(
                    &input[b * in_stride..(b + 1) * in_stride],
                    wq,
                    sc,
                    bias,
                    out_sample,
                    spec,
                    h,
                    w,
                    (out_h, out_w),
                    relu,
                );
            });
        } else {
            for (b, out_sample) in out.chunks_exact_mut(out_stride).enumerate() {
                conv2d_i8_sample(
                    &input[b * in_stride..(b + 1) * in_stride],
                    wq,
                    sc,
                    bias,
                    out_sample,
                    spec,
                    h,
                    w,
                    (out_h, out_w),
                    relu,
                );
            }
        }
    }
}

/// One output row of the quantized FC forward: `out[j] = (act ·
/// dequant(wq[j])) * sc[j] + bias[j]`. Dispatches the AVX2+FMA kernel when
/// the host supports it.
fn gemm_i8_row(
    act: &[f32],
    wq: &[i8],
    sc: &[f32],
    bias: &[f32],
    out: &mut [f32],
    k: usize,
    relu: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if fuse_backend::fma_available() {
        // Safety: `fma_available` proved avx2+fma on this CPU.
        unsafe { x86::gemm_i8_row_fma(act, wq, sc, bias, out, k, relu) };
        return;
    }
    gemm_i8_row_portable(act, wq, sc, bias, out, k, relu);
}

/// Portable quantized FC row kernel: four independent accumulators per
/// output element for ILP, f32 accumulation, dequantize once at the end.
fn gemm_i8_row_portable(
    act: &[f32],
    wq: &[i8],
    sc: &[f32],
    bias: &[f32],
    out: &mut [f32],
    k: usize,
    relu: bool,
) {
    for (j, o) in out.iter_mut().enumerate() {
        let w_row = &wq[j * k..(j + 1) * k];
        let mut acc = [0.0f32; 4];
        let mut chunks_a = act.chunks_exact(4);
        let mut chunks_w = w_row.chunks_exact(4);
        for (ca, cw) in chunks_a.by_ref().zip(chunks_w.by_ref()) {
            for l in 0..4 {
                acc[l] += ca[l] * f32::from(cw[l]);
            }
        }
        let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (a, q) in chunks_a.remainder().iter().zip(chunks_w.remainder()) {
            s += a * f32::from(*q);
        }
        let v = s * sc[j] + bias[j];
        *o = if relu { v.max(0.0) } else { v };
    }
}

/// One sample of the direct quantized conv2d forward (no im2col scratch):
/// straight loops over output channel × output position × tap, f32
/// accumulation, dequantize per output channel.
#[allow(clippy::too_many_arguments)]
fn conv2d_i8_sample(
    input: &[f32],
    wq: &[i8],
    sc: &[f32],
    bias: &[f32],
    out: &mut [f32],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    (out_h, out_w): (usize, usize),
    relu: bool,
) {
    let kernel = spec.kernel;
    let tap_len = spec.in_channels * kernel * kernel;
    for oc in 0..spec.out_channels {
        let w_row = &wq[oc * tap_len..(oc + 1) * tap_len];
        let (scale, b) = (sc[oc], bias[oc]);
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0f32;
                for ic in 0..spec.in_channels {
                    let plane = &input[ic * h * w..(ic + 1) * h * w];
                    let taps = &w_row[ic * kernel * kernel..(ic + 1) * kernel * kernel];
                    for ky in 0..kernel {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kernel {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let a = plane[iy as usize * w + ix as usize];
                            acc += a * f32::from(taps[ky * kernel + kx]);
                        }
                    }
                }
                let v = acc * scale + b;
                out[(oc * out_h + oy) * out_w + ox] = if relu { v.max(0.0) } else { v };
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2+FMA quantized FC kernel: convert eight int8 weights to f32 in
    //! registers, fuse the multiply-add, share each activation load across
    //! four weight rows (the weight stream is the bandwidth bound — int8
    //! quarters it, and the row blocking quarters the activation reloads).

    use std::arch::x86_64::*;

    /// Converts 8 consecutive int8 values to an 8-lane f32 register.
    ///
    /// # Safety
    ///
    /// `ptr` must be readable for 8 bytes; caller must have AVX2.
    #[inline(always)]
    unsafe fn cvt_i8x8(ptr: *const i8) -> __m256 {
        let raw = _mm_loadl_epi64(ptr as *const __m128i);
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw))
    }

    /// Pairwise horizontal sum of an 8-lane register.
    ///
    /// # Safety
    ///
    /// Caller must have AVX.
    #[inline(always)]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(d, _mm_shuffle_ps::<1>(d, d));
        _mm_cvtss_f32(s)
    }

    /// One output row of the quantized FC forward (see the portable kernel
    /// for semantics). Four weight rows per pass share each activation
    /// load; the k-reduction is eight-lane reassociated (relaxed contract).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and FMA are available.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_i8_row_fma(
        act: &[f32],
        wq: &[i8],
        sc: &[f32],
        bias: &[f32],
        out: &mut [f32],
        k: usize,
        relu: bool,
    ) {
        const JB: usize = 4;
        let n = out.len();
        let mut j = 0;
        while j + JB <= n {
            let w_base = wq.as_ptr().add(j * k);
            let mut acc = [_mm256_setzero_ps(); JB];
            let mut p = 0;
            while p + 8 <= k {
                let va = _mm256_loadu_ps(act.as_ptr().add(p));
                for (l, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_fmadd_ps(va, cvt_i8x8(w_base.add(l * k + p)), *a);
                }
                p += 8;
            }
            let mut sums = [0.0f32; JB];
            for (l, a) in acc.iter().enumerate() {
                sums[l] = hsum256(*a);
            }
            while p < k {
                let a = act[p];
                for (l, s) in sums.iter_mut().enumerate() {
                    *s += a * f32::from(wq[(j + l) * k + p]);
                }
                p += 1;
            }
            for (l, s) in sums.iter().enumerate() {
                let v = s * sc[j + l] + bias[j + l];
                out[j + l] = if relu { v.max(0.0) } else { v };
            }
            j += JB;
        }
        while j < n {
            let w_row = &wq[j * k..(j + 1) * k];
            let mut acc = _mm256_setzero_ps();
            let mut p = 0;
            while p + 8 <= k {
                let va = _mm256_loadu_ps(act.as_ptr().add(p));
                acc = _mm256_fmadd_ps(va, cvt_i8x8(w_row.as_ptr().add(p)), acc);
                p += 8;
            }
            let mut s = hsum256(acc);
            while p < k {
                s += act[p] * f32::from(w_row[p]);
                p += 1;
            }
            let v = s * sc[j] + bias[j];
            out[j] = if relu { v.max(0.0) } else { v };
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int8::quantize_rows;

    fn data(len: usize, salt: usize) -> Vec<f32> {
        (0..len).map(|i| ((i * 2654435761 + salt * 40503) % 2048) as f32 * 1e-3 - 1.0).collect()
    }

    /// Float reference of the quantized FC forward: dequantize the weights
    /// and run the plain dot products.
    #[allow(clippy::too_many_arguments)]
    fn gemm_ref(
        act: &[f32],
        wq: &[i8],
        sc: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        relu: bool,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for p in 0..k {
                    s += f64::from(act[i * k + p]) * f64::from(wq[j * k + p]);
                }
                let v = s as f32 * sc[j] + bias[j];
                out[i * n + j] = if relu { v.max(0.0) } else { v };
            }
        }
        out
    }

    #[test]
    fn gemm_i8_matches_float_reference_within_tolerance() {
        let mut dev = HostDevice::new();
        // Odd sizes exercise both the 8-lane body and the scalar tails.
        let (m, k, n) = (3usize, 37usize, 11usize);
        let weights = data(n * k, 1);
        let q = quantize_rows(&weights, k);
        let wbuf = dev.upload_i8(&q.values);
        let sbuf = dev.upload_f32(&q.scales);
        let act = data(m * k, 2);
        let bias = data(n, 3);
        for relu in [false, true] {
            let mut out = vec![0.0f32; m * n];
            dev.gemm_i8(&act, wbuf, sbuf, &bias, &mut out, m, k, n, relu);
            let reference = gemm_ref(&act, &q.values, &q.scales, &bias, m, k, n, relu);
            for (o, r) in out.iter().zip(&reference) {
                assert!((o - r).abs() <= 1e-4 * r.abs().max(1.0), "got {o}, reference {r}");
            }
        }
    }

    #[test]
    fn conv2d_i8_matches_dequantized_float_conv() {
        let mut dev = HostDevice::new();
        let spec = Conv2dSpec::same(2, 3, 3);
        let (batch, h, w) = (2usize, 5usize, 4usize);
        let weights = data(spec.weight_len(), 4);
        let q = quantize_rows(&weights, spec.in_channels * spec.kernel * spec.kernel);
        let wbuf = dev.upload_i8(&q.values);
        let sbuf = dev.upload_f32(&q.scales);
        let input = data(batch * spec.in_channels * h * w, 5);
        let bias = data(spec.out_channels, 6);
        let mut out = vec![0.0f32; batch * spec.out_channels * h * w];
        dev.conv2d_i8(&input, wbuf, sbuf, &bias, &mut out, batch, &spec, h, w, true);

        // Reference: dequantize and run the exact float conv.
        let mut wf = vec![0.0f32; weights.len()];
        crate::int8::dequantize_rows(
            &q.values,
            &q.scales,
            spec.in_channels * spec.kernel * spec.kernel,
            &mut wf,
        );
        let mut cols = vec![0.0f32; batch * spec.in_channels * spec.kernel * spec.kernel * h * w];
        let mut reference = vec![0.0f32; out.len()];
        fuse_tensor::conv::conv2d_forward_into(
            &input,
            batch,
            h,
            w,
            &wf,
            &bias,
            &spec,
            &mut cols,
            &mut reference,
            true,
        )
        .unwrap();
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - r).abs() <= 1e-4 * r.abs().max(1.0), "got {o}, reference {r}");
        }
    }

    #[test]
    fn upload_download_round_trips() {
        let mut dev = HostDevice::new();
        let buf = dev.upload_f32(&[1.0, -2.5, 3.25]);
        let mut back = [0.0f32; 3];
        dev.download_f32(buf, &mut back);
        assert_eq!(back, [1.0, -2.5, 3.25]);
        assert_eq!(dev.name(), "host");
    }

    #[test]
    #[should_panic(expected = "expected i8")]
    fn kind_confusion_is_rejected() {
        let mut dev = HostDevice::new();
        let buf = dev.upload_f32(&[1.0]);
        let mut out = [0.0f32; 1];
        dev.gemm_i8(&[1.0], buf, buf, &[0.0], &mut out, 1, 1, 1, false);
    }
}
