//! # fuse-quant
//!
//! The relaxed-contract quantization tier: per-channel symmetric int8
//! weights, int8 compute kernels with f32 accumulate-and-dequantize, the
//! [`DeviceMemory`] seam a GPU backend later slots into, and the tolerance
//! comparator the relaxed tier is verified with.
//!
//! Everything in this crate lives **outside** the workspace's
//! bit-reproducibility contract (`REPRODUCIBILITY.md`): quantized inference
//! is lossy by construction, so its outputs are compared against the float
//! goldens by *declared accuracy budget* ([`Tolerance`]), never by bits.
//! The exact-contract surfaces — training, checkpointing, the float serve
//! goldens — never touch this crate.
//!
//! ## Layers
//!
//! * [`int8`] — per-channel symmetric quantization: one scale per output
//!   channel (`scale = max|w| / 127`), values rounded to `[-127, 127]`.
//!   Round-trip error is bounded by `scale / 2` per element (property-
//!   tested).
//! * [`DeviceMemory`] — the device seam: weights are uploaded once into
//!   batch-resident buffers identified by opaque [`BufferId`] handles; the
//!   int8 gemm/conv entry points execute against handles, so a GPU
//!   implementation replaces [`HostDevice`] without touching `ServeEngine`
//!   or cluster callers.
//! * [`HostDevice`] — the CPU implementation: AVX2+FMA convert-and-fmadd
//!   kernels when the host supports them (runtime-detected), a portable
//!   accumulator fallback otherwise, parallel across batch rows via
//!   `fuse-parallel`.
//! * [`compare`] — the tolerance harness: [`Tolerance`] budgets,
//!   [`assert_close_ulp`], ULP distance, and the [`top1`] agreement check
//!   used on the classification surface.
//!
//! ## Why weight-only int8
//!
//! The serve hot loop is bandwidth-bound on weights (`fc_2048x512` streams
//! a 4 MB f32 weight matrix per batch; int8 streams 1 MB). Activations stay
//! f32 end to end and accumulation is f32, so the only error source is the
//! weight rounding — which the per-channel scales keep within a per-layer
//! relative bound that the committed accuracy budgets assert.

#![warn(missing_docs)]

pub mod compare;
pub mod device;
pub mod int8;

pub use compare::{assert_close_ulp, top1, ulp_distance, CompareError, CompareReport, Tolerance};
pub use device::{BufferId, DeviceMemory, HostDevice};
pub use int8::{dequantize_rows, quantize_rows, QuantizedRows};
