//! The tolerance comparator for relaxed-contract verification.
//!
//! Exact-contract goldens are compared byte-for-byte; relaxed-tier outputs
//! (FMA, int8) are compared against the same float goldens within a
//! **declared accuracy budget** — a [`Tolerance`] committed next to the
//! golden it guards. A pair of values passes when *any* of the budget's
//! criteria admits it:
//!
//! * bitwise equality (always passes, including equal non-finite bits),
//! * absolute difference `<= max_abs`,
//! * relative difference `<= max_rel` (denominator `max(|a|, |b|)`),
//! * ULP distance `<= max_ulp` (see [`ulp_distance`]).
//!
//! Non-finite values anywhere in either slice are a hard, typed failure
//! ([`CompareError::NonFinite`]) — a relaxed kernel that produces NaN or ∞
//! is broken, not imprecise. The comparison never treats `NaN == NaN` as
//! close.

use std::fmt;

/// A declared accuracy budget. Fields are OR-ed: a pair within *any*
/// bound passes. Zero-valued fields disable that criterion (bitwise
/// equality still always passes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum admitted ULP distance between expected and actual.
    pub max_ulp: u64,
    /// Maximum admitted absolute difference.
    pub max_abs: f32,
    /// Maximum admitted relative difference (`|a-b| / max(|a|,|b|)`).
    pub max_rel: f32,
}

impl Tolerance {
    /// A budget admitting only bitwise equality.
    pub const EXACT: Tolerance = Tolerance { max_ulp: 0, max_abs: 0.0, max_rel: 0.0 };

    /// Whether one `expected`/`actual` pair (both finite) is within budget.
    pub fn admits(&self, expected: f32, actual: f32) -> bool {
        if expected.to_bits() == actual.to_bits() {
            return true;
        }
        let abs = (expected - actual).abs();
        if abs <= self.max_abs {
            return true;
        }
        let denom = expected.abs().max(actual.abs());
        if denom > 0.0 && abs / denom <= self.max_rel {
            return true;
        }
        ulp_distance(expected, actual) <= self.max_ulp
    }
}

/// The worst deviations observed by a successful [`compare`] run — useful
/// for reporting how much of a budget a path actually consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompareReport {
    /// Largest absolute difference.
    pub max_abs: f32,
    /// Largest relative difference.
    pub max_rel: f32,
    /// Largest ULP distance.
    pub max_ulp: u64,
}

/// A typed comparison failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The slices have different lengths.
    LenMismatch {
        /// Expected (golden) length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A non-finite value appeared in either slice.
    NonFinite {
        /// Element index.
        index: usize,
        /// The offending value.
        value: f32,
        /// Which side held it (`"expected"` or `"actual"`).
        side: &'static str,
    },
    /// An element pair exceeded every criterion of the budget.
    OutOfBudget {
        /// Element index.
        index: usize,
        /// Golden value.
        expected: f32,
        /// Observed value.
        actual: f32,
        /// Absolute difference.
        abs: f32,
        /// Relative difference.
        rel: f32,
        /// ULP distance.
        ulp: u64,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::LenMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected} values, got {actual}")
            }
            CompareError::NonFinite { index, value, side } => {
                write!(f, "non-finite value {value} in {side} slice at index {index}")
            }
            CompareError::OutOfBudget { index, expected, actual, abs, rel, ulp } => write!(
                f,
                "index {index}: {actual} vs golden {expected} \
                 (abs {abs:e}, rel {rel:e}, {ulp} ulp) exceeds the budget"
            ),
        }
    }
}

impl std::error::Error for CompareError {}

/// The distance between two floats in units of last place, measured on the
/// monotonic integer number line: each float maps to its sign-magnitude
/// offset (negatives mirrored below zero), so the distance counts how many
/// representable floats separate the two values. `+0` and `-0` are 0 apart;
/// the mapping is total for finite inputs.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -((bits & 0x7fff_ffff) as i64)
        } else {
            bits as i64
        }
    }
    (key(a) - key(b)).unsigned_abs()
}

/// Compares `actual` against the golden `expected` within `tol`, returning
/// the worst observed deviations on success.
///
/// # Errors
///
/// Returns a typed [`CompareError`] on length mismatch, any non-finite
/// value on either side, or the first element pair out of budget.
pub fn compare(
    expected: &[f32],
    actual: &[f32],
    tol: &Tolerance,
) -> Result<CompareReport, CompareError> {
    if expected.len() != actual.len() {
        return Err(CompareError::LenMismatch { expected: expected.len(), actual: actual.len() });
    }
    let mut report = CompareReport::default();
    for (index, (&e, &a)) in expected.iter().zip(actual).enumerate() {
        if !e.is_finite() {
            return Err(CompareError::NonFinite { index, value: e, side: "expected" });
        }
        if !a.is_finite() {
            return Err(CompareError::NonFinite { index, value: a, side: "actual" });
        }
        let abs = (e - a).abs();
        let denom = e.abs().max(a.abs());
        let rel = if denom > 0.0 { abs / denom } else { 0.0 };
        let ulp = ulp_distance(e, a);
        if !tol.admits(e, a) {
            return Err(CompareError::OutOfBudget { index, expected: e, actual: a, abs, rel, ulp });
        }
        report.max_abs = report.max_abs.max(abs);
        report.max_rel = report.max_rel.max(rel);
        report.max_ulp = report.max_ulp.max(ulp);
    }
    Ok(report)
}

/// Asserts `actual` is within `tol` of the golden `expected`, panicking
/// with the typed failure rendered in `context` otherwise. The relaxed
/// golden harness's workhorse.
///
/// # Panics
///
/// Panics when [`compare`] fails.
pub fn assert_close_ulp(expected: &[f32], actual: &[f32], tol: &Tolerance, context: &str) {
    if let Err(e) = compare(expected, actual, tol) {
        panic!("{context}: {e}");
    }
}

/// The first-maximum index of a logit slice (strict `>` scan from `-∞`,
/// ignoring NaN — the same rule as the exact contract's `max_scan`), or
/// `None` for empty/all-non-finite input. Top-1 agreement between a
/// relaxed path and the float golden means these indices match.
pub fn top1(logits: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in logits.iter().enumerate() {
        if v > best.map_or(f32::NEG_INFINITY, |(_, b)| b) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        // One step either side of zero: the smallest positive and negative
        // subnormals are 1 ulp from zero and 2 from each other.
        let tiny = f32::from_bits(1);
        assert_eq!(ulp_distance(0.0, tiny), 1);
        assert_eq!(ulp_distance(-tiny, tiny), 2);
        // Distance grows with exponent gaps.
        assert!(ulp_distance(1.0, 2.0) > 1_000_000);
    }

    #[test]
    fn tolerance_admits_by_any_criterion() {
        let tol = Tolerance { max_ulp: 4, max_abs: 1e-6, max_rel: 1e-5 };
        assert!(tol.admits(1.0, 1.0));
        assert!(tol.admits(1.0, f32::from_bits(1.0f32.to_bits() + 3))); // ulp
        assert!(tol.admits(1e-8, 5e-7)); // abs
        assert!(tol.admits(1000.0, 1000.005)); // rel
        assert!(!tol.admits(1.0, 1.1));
        assert!(!Tolerance::EXACT.admits(1.0, 1.0 + f32::EPSILON));
        assert!(Tolerance::EXACT.admits(-0.5, -0.5));
    }

    #[test]
    fn compare_reports_worst_deviations() {
        let tol = Tolerance { max_ulp: 0, max_abs: 0.2, max_rel: 0.0 };
        let report = compare(&[1.0, 2.0, 3.0], &[1.1, 2.0, 2.9], &tol).unwrap();
        assert!((report.max_abs - 0.1).abs() < 1e-6);
        assert!(report.max_ulp > 0);
        assert!(report.max_rel > 0.0);
    }

    #[test]
    fn compare_rejects_nan_and_infinity_with_typed_errors() {
        let tol = Tolerance { max_ulp: u64::MAX, max_abs: f32::MAX, max_rel: 1.0 };
        // A huge budget still never admits non-finite values...
        let err = compare(&[1.0], &[f32::NAN], &tol).unwrap_err();
        assert!(matches!(err, CompareError::NonFinite { side: "actual", .. }));
        let err = compare(&[f32::INFINITY], &[1.0], &tol).unwrap_err();
        assert!(matches!(err, CompareError::NonFinite { side: "expected", .. }));
        // ...even as a NaN == NaN bit pair on the expected side.
        let err = compare(&[f32::NAN], &[f32::NAN], &tol).unwrap_err();
        assert!(matches!(err, CompareError::NonFinite { side: "expected", .. }));
        let err = compare(&[1.0, 2.0], &[1.0], &tol).unwrap_err();
        assert!(matches!(err, CompareError::LenMismatch { expected: 2, actual: 1 }));
    }

    #[test]
    fn compare_flags_the_first_out_of_budget_element() {
        let tol = Tolerance { max_ulp: 0, max_abs: 1e-3, max_rel: 0.0 };
        let err = compare(&[1.0, 2.0], &[1.0, 2.5], &tol).unwrap_err();
        match err {
            CompareError::OutOfBudget { index, expected, actual, .. } => {
                assert_eq!((index, expected, actual), (1, 2.0, 2.5));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("exceeds the budget"));
    }

    #[test]
    #[should_panic(expected = "relaxed-golden: index 0")]
    fn assert_close_ulp_panics_with_context() {
        assert_close_ulp(&[1.0], &[2.0], &Tolerance::EXACT, "relaxed-golden");
    }

    #[test]
    fn top1_matches_first_max_semantics() {
        assert_eq!(top1(&[]), None);
        assert_eq!(top1(&[f32::NAN, f32::NEG_INFINITY]), None);
        assert_eq!(top1(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(top1(&[f32::NAN, 2.0, 1.0]), Some(1));
        assert_eq!(top1(&[-3.0, -1.0, -2.0]), Some(1));
    }
}
