//! Property-based tests for the radar signal chain.

use fuse_radar::fft::{blackman_window, dft};
use fuse_radar::{
    cfar_ca_1d, fft_inplace, hann_window, ifft_inplace, CfarConfig, Complex32, FastScatterModel,
    RadarConfig, Scatterer, Scene,
};
use proptest::prelude::*;

fn complex_signal(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    prop::collection::vec(
        (-1.0f32..1.0, -1.0f32..1.0).prop_map(|(re, im)| Complex32::new(re, im)),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT followed by inverse FFT recovers the signal.
    #[test]
    fn fft_ifft_round_trips(signal in complex_signal(64)) {
        let mut buf = signal.clone();
        fft_inplace(&mut buf).unwrap();
        ifft_inplace(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&signal) {
            prop_assert!((a.re - b.re).abs() < 1e-3);
            prop_assert!((a.im - b.im).abs() < 1e-3);
        }
    }

    /// Parseval's theorem: energy is preserved (up to the 1/N convention).
    #[test]
    fn fft_preserves_energy(signal in complex_signal(32)) {
        let time_energy: f32 = signal.iter().map(|x| x.norm_sq()).sum();
        let mut spec = signal.clone();
        fft_inplace(&mut spec).unwrap();
        let freq_energy: f32 = spec.iter().map(|x| x.norm_sq()).sum::<f32>() / 32.0;
        prop_assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
    }

    /// The fast FFT agrees with the O(n^2) reference DFT.
    #[test]
    fn fft_matches_reference_dft(signal in complex_signal(16)) {
        let expected = dft(&signal);
        let mut fast = signal.clone();
        fft_inplace(&mut fast).unwrap();
        for (a, b) in fast.iter().zip(&expected) {
            prop_assert!((a.re - b.re).abs() < 1e-3);
            prop_assert!((a.im - b.im).abs() < 1e-3);
        }
    }

    /// Window functions are bounded in [0, 1] and symmetric.
    #[test]
    fn windows_are_bounded_and_symmetric(n in 2usize..256) {
        for window in [hann_window(n), blackman_window(n)] {
            prop_assert_eq!(window.len(), n);
            for (i, &w) in window.iter().enumerate() {
                prop_assert!((-0.01..=1.01).contains(&w));
                prop_assert!((w - window[n - 1 - i]).abs() < 1e-4);
            }
        }
    }

    /// CFAR never reports more detections than cells and never fires on a
    /// constant profile.
    #[test]
    fn cfar_detection_count_is_sane(
        values in prop::collection::vec(0.5f32..1.5, 64),
        spike_pos in 8usize..56,
        spike in 20.0f32..100.0,
    ) {
        let config = CfarConfig::default();
        let constant = vec![1.0f32; 64];
        prop_assert!(cfar_ca_1d(&constant, &config).unwrap().is_empty());

        let mut profile = values;
        profile[spike_pos] = spike;
        let detections = cfar_ca_1d(&profile, &config).unwrap();
        prop_assert!(detections.len() <= 64);
        prop_assert!(detections.contains(&spike_pos));
    }

    /// Scatterer geometry: range is non-negative and the radial velocity of a
    /// static scatterer is zero.
    #[test]
    fn scatterer_geometry_invariants(
        x in -3.0f32..3.0,
        y in 0.1f32..4.0,
        z in -1.0f32..2.0,
    ) {
        let s = Scatterer::fixed([x, y, z]);
        prop_assert!(s.range() >= 0.0);
        prop_assert_eq!(s.radial_velocity(), 0.0);
        prop_assert!(s.azimuth().abs() <= std::f32::consts::PI);
        prop_assert!(s.elevation().abs() <= std::f32::consts::FRAC_PI_2 + 1e-6);
    }

    /// The fast scatter model is deterministic and produces a bounded number
    /// of points for any seed.
    #[test]
    fn fast_model_point_counts_are_bounded(seed in 0u64..1000) {
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
        let scene: Scene = (0..15)
            .map(|i| Scatterer::new([0.0, 2.0, 0.1 * i as f32], [0.0, 0.3, 0.0], 1.0))
            .collect();
        let a = model.sample(&scene, seed);
        let b = model.sample(&scene, seed);
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.len() >= 4);
        prop_assert!(a.len() <= 2 * model.mean_points_per_frame);
    }
}
