//! Angle-of-arrival estimation over the virtual antenna array.

use crate::complex::Complex32;
use crate::config::RadarConfig;
use crate::fft::dft;

/// Estimated azimuth and elevation for one detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngleEstimate {
    /// Azimuth angle in radians (0 along the boresight, positive towards +x).
    pub azimuth_rad: f32,
    /// Elevation angle in radians (0 in the horizontal plane, positive up).
    pub elevation_rad: f32,
}

/// Estimates the azimuth and elevation angles from the per-antenna complex
/// snapshot of a single range–Doppler cell.
///
/// The snapshot must be ordered `a = elevation_row * azimuth_antennas +
/// azimuth_column`, the layout produced by [`crate::AdcCube`]. Azimuth is
/// estimated with a zero-padded DFT over the azimuth elements (averaged over
/// elevation rows); elevation uses the phase difference between consecutive
/// elevation rows (monopulse), which is adequate for the two-row IWR1443
/// virtual array.
///
/// Returns `None` when the snapshot length does not match the antenna layout.
pub fn estimate_angles(config: &RadarConfig, snapshot: &[Complex32]) -> Option<AngleEstimate> {
    let n_az = config.azimuth_antennas;
    let n_el = config.elevation_antennas;
    if snapshot.len() != n_az * n_el || n_az == 0 {
        return None;
    }
    let d = config.antenna_spacing_wavelengths as f32;

    // --- Azimuth: zero-padded DFT over azimuth elements, averaged over rows.
    const PAD: usize = 64;
    let mut spectrum_power = vec![0.0f32; PAD];
    for row in 0..n_el {
        let mut padded = vec![Complex32::ZERO; PAD];
        padded[..n_az].copy_from_slice(&snapshot[row * n_az..(row + 1) * n_az]);
        let spec = dft(&padded);
        for (p, s) in spectrum_power.iter_mut().zip(&spec) {
            *p += s.norm_sq();
        }
    }
    let peak = spectrum_power
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?
        .0;
    // Convert DFT bin to normalised spatial frequency in [-0.5, 0.5).
    let freq = if peak < PAD / 2 { peak as f32 } else { peak as f32 - PAD as f32 } / PAD as f32;
    // Spatial frequency = d * sin(az) * cos(el); solve for azimuth assuming
    // cos(el) ≈ 1 first, then refine below once elevation is known.
    let sin_az_cos_el = (freq / d).clamp(-1.0, 1.0);

    // --- Elevation: average phase difference between consecutive rows.
    let elevation_rad = if n_el > 1 {
        let mut acc = Complex32::ZERO;
        for row in 0..n_el - 1 {
            for col in 0..n_az {
                let lower = snapshot[row * n_az + col];
                let upper = snapshot[(row + 1) * n_az + col];
                acc += upper * lower.conj();
            }
        }
        let phase = acc.arg();
        let sin_el = (phase / (2.0 * std::f32::consts::PI * d)).clamp(-1.0, 1.0);
        sin_el.asin()
    } else {
        0.0
    };

    let cos_el = elevation_rad.cos().max(0.2);
    let azimuth_rad = (sin_az_cos_el / cos_el).clamp(-1.0, 1.0).asin();
    Some(AngleEstimate { azimuth_rad, elevation_rad })
}

/// Converts a spherical detection (range, azimuth, elevation) to Cartesian
/// coordinates with the MARS convention (`x` lateral, `y` depth, `z` height).
pub fn spherical_to_cartesian(range_m: f32, azimuth_rad: f32, elevation_rad: f32) -> [f32; 3] {
    let cos_el = elevation_rad.cos();
    [
        range_m * cos_el * azimuth_rad.sin(),
        range_m * cos_el * azimuth_rad.cos(),
        range_m * elevation_rad.sin(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the ideal snapshot a plane wave from (az, el) would produce.
    fn ideal_snapshot(config: &RadarConfig, az: f32, el: f32) -> Vec<Complex32> {
        let d = config.antenna_spacing_wavelengths as f32;
        let two_pi = 2.0 * std::f32::consts::PI;
        let mut snapshot = Vec::new();
        for row in 0..config.elevation_antennas {
            for col in 0..config.azimuth_antennas {
                let phase = two_pi * d * (az.sin() * el.cos() * col as f32 + el.sin() * row as f32);
                snapshot.push(Complex32::from_angle(phase));
            }
        }
        snapshot
    }

    #[test]
    fn recovers_boresight_target() {
        let config = RadarConfig::iwr1443_indoor();
        let snap = ideal_snapshot(&config, 0.0, 0.0);
        let est = estimate_angles(&config, &snap).unwrap();
        assert!(est.azimuth_rad.abs() < 0.1, "azimuth {}", est.azimuth_rad);
        assert!(est.elevation_rad.abs() < 0.1, "elevation {}", est.elevation_rad);
    }

    #[test]
    fn recovers_off_boresight_azimuth() {
        let config = RadarConfig::iwr1443_indoor();
        for az_deg in [-40.0f32, -20.0, 15.0, 35.0] {
            let az = az_deg.to_radians();
            let snap = ideal_snapshot(&config, az, 0.0);
            let est = estimate_angles(&config, &snap).unwrap();
            // 8-element array with a 64-point padded DFT: a few degrees of error.
            assert!(
                (est.azimuth_rad - az).abs() < 0.12,
                "azimuth {az_deg}°: estimated {}°",
                est.azimuth_rad.to_degrees()
            );
        }
    }

    #[test]
    fn recovers_elevation_sign_and_magnitude() {
        let config = RadarConfig::iwr1443_indoor();
        for el_deg in [-25.0f32, -10.0, 10.0, 25.0] {
            let el = el_deg.to_radians();
            let snap = ideal_snapshot(&config, 0.0, el);
            let est = estimate_angles(&config, &snap).unwrap();
            assert!(
                (est.elevation_rad - el).abs() < 0.1,
                "elevation {el_deg}°: estimated {}°",
                est.elevation_rad.to_degrees()
            );
        }
    }

    #[test]
    fn rejects_wrong_snapshot_length() {
        let config = RadarConfig::iwr1443_indoor();
        assert!(estimate_angles(&config, &[Complex32::ONE; 3]).is_none());
    }

    #[test]
    fn single_elevation_row_gives_zero_elevation() {
        let mut config = RadarConfig::iwr1443_indoor();
        config.elevation_antennas = 1;
        let snap = ideal_snapshot(&config, 0.3, 0.0);
        let est = estimate_angles(&config, &snap).unwrap();
        assert_eq!(est.elevation_rad, 0.0);
    }

    #[test]
    fn spherical_to_cartesian_round_trips_simple_cases() {
        let p = spherical_to_cartesian(2.0, 0.0, 0.0);
        assert!((p[0]).abs() < 1e-6 && (p[1] - 2.0).abs() < 1e-6 && p[2].abs() < 1e-6);

        let up = spherical_to_cartesian(1.0, 0.0, std::f32::consts::FRAC_PI_2);
        assert!(up[2] > 0.999);

        let right = spherical_to_cartesian(1.0, std::f32::consts::FRAC_PI_2, 0.0);
        assert!(right[0] > 0.999);
    }
}
