//! # fuse-radar
//!
//! A self-contained FMCW mmWave radar signal-chain simulator modelled on the
//! TI IWR1443 Boost device used by the MARS dataset and the FUSE paper.
//!
//! The crate covers the full processing chain the paper describes in §3.1.1:
//!
//! 1. [`scene`] — point scatterers with position, radial velocity and RCS;
//! 2. [`adc`] — synthesis of the raw ADC data cube (samples × chirps ×
//!    virtual antennas) for a chirp configuration;
//! 3. [`range_doppler`] — range FFT and Doppler FFT;
//! 4. [`cfar`] — constant false alarm rate detection;
//! 5. [`angle`] — angle-of-arrival estimation over the virtual array;
//! 6. [`pointcloud`] — the resulting sparse point cloud
//!    `(x, y, z, doppler, intensity)` per frame, plus a calibrated
//!    [`pointcloud::FastScatterModel`] used for bulk dataset synthesis.
//!
//! ```
//! use fuse_radar::{RadarConfig, Scene, Scatterer, PointCloudGenerator};
//!
//! let config = RadarConfig::iwr1443_indoor();
//! let mut scene = Scene::new();
//! scene.push(Scatterer::new([0.0, 2.0, 1.0], [0.0, 0.5, 0.0], 1.0));
//! let generator = PointCloudGenerator::new(config);
//! let frame = generator.generate(&scene, 0)?;
//! assert!(!frame.points.is_empty());
//! # Ok::<(), fuse_radar::RadarError>(())
//! ```

pub mod adc;
pub mod angle;
pub mod cfar;
pub mod complex;
pub mod config;
pub mod error;
pub mod fft;
pub mod pointcloud;
pub mod range_doppler;
pub mod scene;

pub use adc::AdcCube;
pub use angle::AngleEstimate;
pub use cfar::{cfar_ca_1d, cfar_ca_2d, CfarConfig};
pub use complex::Complex32;
pub use config::{ChirpConfig, RadarConfig};
pub use error::RadarError;
pub use fft::{fft_inplace, hann_window, ifft_inplace};
pub use pointcloud::{FastScatterModel, PointCloudFrame, PointCloudGenerator, RadarPoint};
pub use range_doppler::RangeDopplerMap;
pub use scene::{Scatterer, Scene};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RadarError>;

/// Speed of light in metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;
