//! Synthesis of the raw ADC data cube for a scene.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

use crate::complex::Complex32;
use crate::config::RadarConfig;
use crate::error::RadarError;
use crate::scene::Scene;
use crate::Result;
use crate::SPEED_OF_LIGHT;

/// Raw ADC samples for one radar frame.
///
/// Layout: `data[antenna][chirp][sample]` flattened row-major into a single
/// vector, with the antenna index `a = elevation_row * azimuth_antennas +
/// azimuth_column`.
#[derive(Debug, Clone)]
pub struct AdcCube {
    config: RadarConfig,
    data: Vec<Complex32>,
}

impl AdcCube {
    /// Synthesises the ADC cube for `scene` using the classic FMCW beat-signal
    /// model: each scatterer contributes a complex sinusoid whose frequency
    /// encodes range (fast time), whose phase progression across chirps
    /// encodes radial velocity (slow time), and whose phase progression
    /// across the virtual array encodes the angles of arrival.
    ///
    /// `seed` controls the additive thermal noise so frames are reproducible.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration fails validation.
    pub fn synthesize(config: &RadarConfig, scene: &Scene, seed: u64) -> Result<Self> {
        config.validate()?;
        let n_samples = config.chirp.samples_per_chirp;
        let n_chirps = config.chirps_per_frame;
        let n_ant = config.virtual_antennas();
        let mut data = vec![Complex32::ZERO; n_ant * n_chirps * n_samples];

        let lambda = config.chirp.wavelength_m();
        let slope = config.chirp.slope_hz_per_s;
        let ts = 1.0 / config.chirp.sample_rate_hz;
        let tc = config.chirp.chirp_interval_s;
        let d = config.antenna_spacing_wavelengths;
        let two_pi = std::f64::consts::PI * 2.0;

        for scatterer in scene.iter() {
            let r = scatterer.range() as f64;
            if r < 1e-3 {
                continue;
            }
            let vr = scatterer.radial_velocity() as f64;
            let az = scatterer.azimuth() as f64;
            let el = scatterer.elevation() as f64;
            // Free-space two-way amplitude roll-off; RCS enters as sqrt.
            let amplitude = (scatterer.rcs.max(0.0) as f64).sqrt() / (r * r).max(0.25);

            let beat_freq = 2.0 * slope * r / SPEED_OF_LIGHT;
            let base_phase = two_pi * 2.0 * r / lambda;
            let doppler_phase_per_chirp = two_pi * 2.0 * vr * tc / lambda;
            let az_phase_per_elem = two_pi * d * az.sin() * el.cos();
            let el_phase_per_elem = two_pi * d * el.sin();

            for a_el in 0..config.elevation_antennas {
                for a_az in 0..config.azimuth_antennas {
                    let ant = a_el * config.azimuth_antennas + a_az;
                    let ant_phase =
                        az_phase_per_elem * a_az as f64 + el_phase_per_elem * a_el as f64;
                    for chirp in 0..n_chirps {
                        let chirp_phase =
                            base_phase + doppler_phase_per_chirp * chirp as f64 + ant_phase;
                        let offset = (ant * n_chirps + chirp) * n_samples;
                        for sample in 0..n_samples {
                            let phase = chirp_phase + two_pi * beat_freq * ts * sample as f64;
                            data[offset + sample] +=
                                Complex32::from_polar(amplitude as f32, phase as f32);
                        }
                    }
                }
            }
        }

        // Additive complex white Gaussian noise.
        if config.noise_std > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed);
            let normal = Normal::new(0.0f32, config.noise_std)
                .map_err(|e| RadarError::InvalidConfig(format!("noise distribution: {e}")))?;
            for x in &mut data {
                *x += Complex32::new(normal.sample(&mut rng), normal.sample(&mut rng));
            }
        }

        Ok(AdcCube { config: *config, data })
    }

    /// The radar configuration this cube was synthesised with.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Number of virtual antennas.
    pub fn antennas(&self) -> usize {
        self.config.virtual_antennas()
    }

    /// Number of chirps per frame.
    pub fn chirps(&self) -> usize {
        self.config.chirps_per_frame
    }

    /// Number of ADC samples per chirp.
    pub fn samples(&self) -> usize {
        self.config.chirp.samples_per_chirp
    }

    /// The chirp samples for a given antenna and chirp index.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` or `chirp` are out of range.
    pub fn chirp_samples(&self, antenna: usize, chirp: usize) -> &[Complex32] {
        assert!(antenna < self.antennas(), "antenna index out of range");
        assert!(chirp < self.chirps(), "chirp index out of range");
        let n_samples = self.samples();
        let offset = (antenna * self.chirps() + chirp) * n_samples;
        &self.data[offset..offset + n_samples]
    }

    /// The full flattened cube.
    pub fn as_slice(&self) -> &[Complex32] {
        &self.data
    }

    /// Root-mean-square amplitude over the whole cube (used in tests to
    /// check the signal-to-noise behaviour).
    pub fn rms(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.data.iter().map(|x| x.norm_sq() as f64).sum();
        ((sum / self.data.len() as f64) as f32).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Scatterer;

    #[test]
    fn cube_has_expected_dimensions() {
        let config = RadarConfig::test_small();
        let scene = Scene::from_scatterers(vec![Scatterer::fixed([0.0, 1.5, 0.0])]);
        let cube = AdcCube::synthesize(&config, &scene, 1).unwrap();
        assert_eq!(cube.antennas(), 8);
        assert_eq!(cube.chirps(), 16);
        assert_eq!(cube.samples(), 32);
        assert_eq!(cube.as_slice().len(), 8 * 16 * 32);
        assert_eq!(cube.chirp_samples(3, 7).len(), 32);
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let config = RadarConfig::test_small();
        let scene = Scene::from_scatterers(vec![Scatterer::fixed([0.3, 2.0, 0.5])]);
        let a = AdcCube::synthesize(&config, &scene, 7).unwrap();
        let b = AdcCube::synthesize(&config, &scene, 7).unwrap();
        let c = AdcCube::synthesize(&config, &scene, 8).unwrap();
        assert_eq!(a.as_slice()[..10], b.as_slice()[..10]);
        assert_ne!(a.as_slice()[..10], c.as_slice()[..10]);
    }

    #[test]
    fn empty_scene_is_noise_only() {
        let config = RadarConfig::test_small();
        let cube = AdcCube::synthesize(&config, &Scene::new(), 3).unwrap();
        // RMS should be close to sqrt(2) * noise_std (complex noise).
        let expected = config.noise_std * 2.0f32.sqrt();
        assert!((cube.rms() - expected).abs() < 0.5 * expected, "rms {}", cube.rms());
    }

    #[test]
    fn closer_targets_produce_stronger_signals() {
        let mut config = RadarConfig::test_small();
        config.noise_std = 0.0;
        let near = Scene::from_scatterers(vec![Scatterer::fixed([0.0, 1.0, 0.0])]);
        let far = Scene::from_scatterers(vec![Scatterer::fixed([0.0, 3.0, 0.0])]);
        let near_rms = AdcCube::synthesize(&config, &near, 0).unwrap().rms();
        let far_rms = AdcCube::synthesize(&config, &far, 0).unwrap().rms();
        assert!(near_rms > 4.0 * far_rms, "near {near_rms} far {far_rms}");
    }

    #[test]
    fn scatterer_at_origin_is_ignored() {
        let mut config = RadarConfig::test_small();
        config.noise_std = 0.0;
        let scene = Scene::from_scatterers(vec![Scatterer::fixed([0.0, 0.0, 0.0])]);
        let cube = AdcCube::synthesize(&config, &scene, 0).unwrap();
        assert_eq!(cube.rms(), 0.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = RadarConfig::test_small();
        config.chirps_per_frame = 10;
        assert!(AdcCube::synthesize(&config, &Scene::new(), 0).is_err());
    }

    #[test]
    #[should_panic(expected = "antenna index")]
    fn chirp_samples_panics_out_of_range() {
        let config = RadarConfig::test_small();
        let cube = AdcCube::synthesize(&config, &Scene::new(), 0).unwrap();
        cube.chirp_samples(100, 0);
    }
}
