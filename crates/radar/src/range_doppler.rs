//! Range FFT and Doppler FFT processing.

use crate::adc::AdcCube;
use crate::complex::Complex32;
use crate::config::RadarConfig;
use crate::fft::{apply_window, fft_inplace, hann_window};
use crate::Result;

/// Range–Doppler representation of one frame.
///
/// For every virtual antenna the ADC cube is transformed with a windowed
/// range FFT (fast time) followed by a Doppler FFT (slow time). The Doppler
/// axis is FFT-shifted so that bin `chirps/2` corresponds to zero radial
/// velocity. The per-antenna complex spectra are kept for angle estimation;
/// the non-coherently summed magnitude map drives CFAR detection.
#[derive(Debug, Clone)]
pub struct RangeDopplerMap {
    config: RadarConfig,
    /// Complex spectra per antenna: `spectra[antenna][range_bin * doppler_bins + doppler_bin]`.
    spectra: Vec<Vec<Complex32>>,
    /// Non-coherent magnitude sum over antennas, `[range_bin][doppler_bin]` flattened.
    magnitude: Vec<f32>,
}

impl RangeDopplerMap {
    /// Computes the range–Doppler map from an ADC cube.
    ///
    /// # Errors
    ///
    /// Returns an error if the FFT sizes are not powers of two (prevented by
    /// configuration validation).
    pub fn from_cube(cube: &AdcCube) -> Result<Self> {
        let config = *cube.config();
        let n_samples = cube.samples();
        let n_chirps = cube.chirps();
        let n_ant = cube.antennas();
        let range_bins = n_samples;
        let doppler_bins = n_chirps;

        let range_window = hann_window(n_samples);
        let doppler_window = hann_window(n_chirps);

        let mut spectra = Vec::with_capacity(n_ant);
        let mut magnitude = vec![0.0f32; range_bins * doppler_bins];

        for ant in 0..n_ant {
            // Range FFT per chirp.
            let mut range_fft = vec![Complex32::ZERO; n_chirps * range_bins];
            let mut buf = vec![Complex32::ZERO; n_samples];
            for chirp in 0..n_chirps {
                buf.copy_from_slice(cube.chirp_samples(ant, chirp));
                apply_window(&mut buf, &range_window);
                fft_inplace(&mut buf)?;
                range_fft[chirp * range_bins..(chirp + 1) * range_bins].copy_from_slice(&buf);
            }
            // Doppler FFT across chirps for every range bin, with fftshift.
            let mut spectrum = vec![Complex32::ZERO; range_bins * doppler_bins];
            let mut slow = vec![Complex32::ZERO; n_chirps];
            for r in 0..range_bins {
                for chirp in 0..n_chirps {
                    slow[chirp] = range_fft[chirp * range_bins + r];
                }
                apply_window(&mut slow, &doppler_window);
                fft_inplace(&mut slow)?;
                for (k, &value) in slow.iter().enumerate() {
                    // fftshift: negative velocities first.
                    let shifted = (k + doppler_bins / 2) % doppler_bins;
                    spectrum[r * doppler_bins + shifted] = value;
                }
            }
            for (m, s) in magnitude.iter_mut().zip(&spectrum) {
                *m += s.abs();
            }
            spectra.push(spectrum);
        }

        Ok(RangeDopplerMap { config, spectra, magnitude })
    }

    /// The radar configuration this map was computed for.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Number of range bins.
    pub fn range_bins(&self) -> usize {
        self.config.chirp.samples_per_chirp
    }

    /// Number of Doppler bins.
    pub fn doppler_bins(&self) -> usize {
        self.config.chirps_per_frame
    }

    /// The summed magnitude map, `[range_bins x doppler_bins]` row-major.
    pub fn magnitude(&self) -> &[f32] {
        &self.magnitude
    }

    /// Magnitude at a specific range/Doppler cell.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn magnitude_at(&self, range_bin: usize, doppler_bin: usize) -> f32 {
        assert!(range_bin < self.range_bins() && doppler_bin < self.doppler_bins());
        self.magnitude[range_bin * self.doppler_bins() + doppler_bin]
    }

    /// Per-antenna complex value at a range/Doppler cell, ordered by virtual
    /// antenna index.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn antenna_snapshot(&self, range_bin: usize, doppler_bin: usize) -> Vec<Complex32> {
        assert!(range_bin < self.range_bins() && doppler_bin < self.doppler_bins());
        let idx = range_bin * self.doppler_bins() + doppler_bin;
        self.spectra.iter().map(|s| s[idx]).collect()
    }

    /// Converts a range bin index to metres.
    pub fn range_of_bin(&self, range_bin: usize) -> f64 {
        range_bin as f64 * self.config.range_resolution_m()
    }

    /// Converts a (shifted) Doppler bin index to a radial velocity in m/s.
    /// Bin `doppler_bins/2` maps to zero velocity.
    pub fn velocity_of_bin(&self, doppler_bin: usize) -> f64 {
        let centered = doppler_bin as f64 - (self.doppler_bins() / 2) as f64;
        centered * self.config.velocity_resolution_mps()
    }

    /// The strongest cell in the map as `(range_bin, doppler_bin)`, or `None`
    /// for an empty map.
    pub fn peak_cell(&self) -> Option<(usize, usize)> {
        let (idx, _) = self
            .magnitude
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        Some((idx / self.doppler_bins(), idx % self.doppler_bins()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Scatterer, Scene};

    fn map_for(scene: &Scene, noise: f32) -> RangeDopplerMap {
        let mut config = RadarConfig::test_small();
        config.noise_std = noise;
        let cube = AdcCube::synthesize(&config, scene, 5).unwrap();
        RangeDopplerMap::from_cube(&cube).unwrap()
    }

    #[test]
    fn static_target_peaks_at_expected_range_and_zero_doppler() {
        let range_m = 2.0f32;
        let scene = Scene::from_scatterers(vec![Scatterer::fixed([0.0, range_m, 0.0])]);
        let map = map_for(&scene, 0.0);
        let (r_bin, d_bin) = map.peak_cell().unwrap();
        let est_range = map.range_of_bin(r_bin);
        assert!(
            (est_range - range_m as f64).abs() < 2.0 * map.config().range_resolution_m(),
            "estimated range {est_range}"
        );
        let est_vel = map.velocity_of_bin(d_bin);
        assert!(est_vel.abs() < 2.0 * map.config().velocity_resolution_mps(), "velocity {est_vel}");
    }

    #[test]
    fn moving_target_shifts_doppler_bin() {
        let v = 1.2f32;
        let scene =
            Scene::from_scatterers(vec![Scatterer::new([0.0, 2.0, 0.0], [0.0, v, 0.0], 1.0)]);
        let map = map_for(&scene, 0.0);
        let (_, d_bin) = map.peak_cell().unwrap();
        let est_vel = map.velocity_of_bin(d_bin);
        assert!(
            (est_vel - v as f64).abs() < 2.5 * map.config().velocity_resolution_mps(),
            "estimated velocity {est_vel} (expected ~{v})"
        );

        let receding =
            Scene::from_scatterers(vec![Scatterer::new([0.0, 2.0, 0.0], [0.0, -v, 0.0], 1.0)]);
        let map2 = map_for(&receding, 0.0);
        let (_, d_bin2) = map2.peak_cell().unwrap();
        assert!(map2.velocity_of_bin(d_bin2) < 0.0);
    }

    #[test]
    fn farther_target_lands_in_higher_range_bin() {
        let near = map_for(&Scene::from_scatterers(vec![Scatterer::fixed([0.0, 1.0, 0.0])]), 0.0);
        let far = map_for(&Scene::from_scatterers(vec![Scatterer::fixed([0.0, 2.5, 0.0])]), 0.0);
        let (rn, _) = near.peak_cell().unwrap();
        let (rf, _) = far.peak_cell().unwrap();
        assert!(rf > rn, "near bin {rn}, far bin {rf}");
    }

    #[test]
    fn map_dimensions_and_accessors() {
        let scene = Scene::from_scatterers(vec![Scatterer::fixed([0.5, 1.5, 0.2])]);
        let map = map_for(&scene, 0.01);
        assert_eq!(map.magnitude().len(), map.range_bins() * map.doppler_bins());
        assert_eq!(map.antenna_snapshot(3, 4).len(), map.config().virtual_antennas());
        assert!(map.magnitude_at(3, 4) >= 0.0);
        assert_eq!(map.velocity_of_bin(map.doppler_bins() / 2), 0.0);
    }

    #[test]
    fn two_targets_produce_two_distinct_range_peaks() {
        let scene = Scene::from_scatterers(vec![
            Scatterer::fixed([0.0, 1.0, 0.0]),
            Scatterer::fixed([0.0, 3.0, 0.0]),
        ]);
        let map = map_for(&scene, 0.0);
        // Sum magnitude over Doppler for each range bin and count local maxima
        // above half the global peak.
        let db = map.doppler_bins();
        let profile: Vec<f32> = (0..map.range_bins())
            .map(|r| map.magnitude()[r * db..(r + 1) * db].iter().sum())
            .collect();
        let peak = profile.iter().cloned().fold(0.0f32, f32::max);
        let strong_bins = profile.iter().filter(|&&p| p > 0.4 * peak).count();
        assert!(strong_bins >= 2, "expected at least two strong range bins, profile {profile:?}");
    }
}
