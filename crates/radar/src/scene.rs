//! Point-scatterer scenes observed by the radar.

use serde::{Deserialize, Serialize};

/// A single point scatterer: position, velocity and radar cross-section.
///
/// The coordinate convention follows the MARS dataset: the radar sits at the
/// origin, `x` is lateral (left/right), `y` is the depth axis pointing away
/// from the radar, and `z` is height.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scatterer {
    /// Position `[x, y, z]` in metres.
    pub position: [f32; 3],
    /// Velocity `[vx, vy, vz]` in metres per second.
    pub velocity: [f32; 3],
    /// Radar cross-section (linear scale, arbitrary units).
    pub rcs: f32,
}

impl Scatterer {
    /// Creates a scatterer.
    pub fn new(position: [f32; 3], velocity: [f32; 3], rcs: f32) -> Self {
        Scatterer { position, velocity, rcs }
    }

    /// Creates a static scatterer with unit RCS.
    pub fn fixed(position: [f32; 3]) -> Self {
        Scatterer { position, velocity: [0.0; 3], rcs: 1.0 }
    }

    /// Distance from the radar at the origin, in metres.
    pub fn range(&self) -> f32 {
        let [x, y, z] = self.position;
        (x * x + y * y + z * z).sqrt()
    }

    /// Radial velocity (positive when moving away from the radar).
    pub fn radial_velocity(&self) -> f32 {
        let r = self.range();
        if r < 1e-6 {
            return 0.0;
        }
        (self.position[0] * self.velocity[0]
            + self.position[1] * self.velocity[1]
            + self.position[2] * self.velocity[2])
            / r
    }

    /// Azimuth angle in radians (0 along +y, positive towards +x).
    pub fn azimuth(&self) -> f32 {
        self.position[0].atan2(self.position[1])
    }

    /// Elevation angle in radians (0 in the horizontal plane, positive up).
    pub fn elevation(&self) -> f32 {
        let ground =
            (self.position[0] * self.position[0] + self.position[1] * self.position[1]).sqrt();
        self.position[2].atan2(ground)
    }
}

/// A collection of scatterers for one radar frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    scatterers: Vec<Scatterer>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Scene { scatterers: Vec::new() }
    }

    /// Creates a scene from an existing list of scatterers.
    pub fn from_scatterers(scatterers: Vec<Scatterer>) -> Self {
        Scene { scatterers }
    }

    /// Adds a scatterer.
    pub fn push(&mut self, scatterer: Scatterer) {
        self.scatterers.push(scatterer);
    }

    /// Number of scatterers in the scene.
    pub fn len(&self) -> usize {
        self.scatterers.len()
    }

    /// Returns `true` when the scene contains no scatterers.
    pub fn is_empty(&self) -> bool {
        self.scatterers.is_empty()
    }

    /// Iterates over the scatterers.
    pub fn iter(&self) -> std::slice::Iter<'_, Scatterer> {
        self.scatterers.iter()
    }

    /// The scatterers as a slice.
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// Bounding box of the scene as `(min, max)` corners, or `None` when
    /// empty.
    pub fn bounding_box(&self) -> Option<([f32; 3], [f32; 3])> {
        let first = self.scatterers.first()?;
        let mut min = first.position;
        let mut max = first.position;
        for s in &self.scatterers {
            for a in 0..3 {
                min[a] = min[a].min(s.position[a]);
                max[a] = max[a].max(s.position[a]);
            }
        }
        Some((min, max))
    }
}

impl FromIterator<Scatterer> for Scene {
    fn from_iter<I: IntoIterator<Item = Scatterer>>(iter: I) -> Self {
        Scene { scatterers: iter.into_iter().collect() }
    }
}

impl Extend<Scatterer> for Scene {
    fn extend<I: IntoIterator<Item = Scatterer>>(&mut self, iter: I) {
        self.scatterers.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_angles_for_a_known_point() {
        let s = Scatterer::fixed([1.0, 1.0, 0.0]);
        assert!((s.range() - 2.0f32.sqrt()).abs() < 1e-6);
        assert!((s.azimuth() - std::f32::consts::FRAC_PI_4).abs() < 1e-6);
        assert!(s.elevation().abs() < 1e-6);

        let up = Scatterer::fixed([0.0, 1.0, 1.0]);
        assert!((up.elevation() - std::f32::consts::FRAC_PI_4).abs() < 1e-6);
    }

    #[test]
    fn radial_velocity_sign_convention() {
        let away = Scatterer::new([0.0, 2.0, 0.0], [0.0, 1.0, 0.0], 1.0);
        assert!(away.radial_velocity() > 0.99);
        let toward = Scatterer::new([0.0, 2.0, 0.0], [0.0, -1.0, 0.0], 1.0);
        assert!(toward.radial_velocity() < -0.99);
        let tangential = Scatterer::new([0.0, 2.0, 0.0], [1.0, 0.0, 0.0], 1.0);
        assert!(tangential.radial_velocity().abs() < 1e-6);
    }

    #[test]
    fn radial_velocity_at_origin_is_zero() {
        let s = Scatterer::new([0.0; 3], [1.0, 2.0, 3.0], 1.0);
        assert_eq!(s.radial_velocity(), 0.0);
    }

    #[test]
    fn scene_collection_behaviour() {
        let mut scene: Scene = (0..5).map(|i| Scatterer::fixed([i as f32, 1.0, 0.5])).collect();
        assert_eq!(scene.len(), 5);
        scene.extend([Scatterer::fixed([9.0, 9.0, 9.0])]);
        assert_eq!(scene.len(), 6);
        let (min, max) = scene.bounding_box().unwrap();
        assert_eq!(min, [0.0, 1.0, 0.5]);
        assert_eq!(max, [9.0, 9.0, 9.0]);
    }

    #[test]
    fn empty_scene_has_no_bounding_box() {
        assert!(Scene::new().bounding_box().is_none());
        assert!(Scene::new().is_empty());
    }
}
