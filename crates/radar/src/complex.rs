//! Minimal complex arithmetic for the FFT-based signal chain.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f32` components.
///
/// Only the operations required by the radar signal chain are implemented;
/// this is not intended as a general-purpose complex type.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex32 {
    /// Real component.
    pub re: f32,
    /// Imaginary component.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Creates `e^{i·theta}` (a unit phasor).
    pub fn from_angle(theta: f32) -> Self {
        Complex32 { re: theta.cos(), im: theta.sin() }
    }

    /// Creates a phasor with the given magnitude and phase.
    pub fn from_polar(magnitude: f32, theta: f32) -> Self {
        Complex32 { re: magnitude * theta.cos(), im: magnitude * theta.sin() }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(&self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Phase angle in radians.
    pub fn arg(&self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex32 { re: self.re, im: -self.im }
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, s: f32) -> Self {
        Complex32 { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex32 {
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    fn neg(self) -> Complex32 {
        Complex32 { re: -self.re, im: -self.im }
    }
}

impl std::fmt::Display for Complex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(-3.0, 0.5);
        assert_eq!(a + Complex32::ZERO, a);
        assert_eq!(a * Complex32::ONE, a);
        assert_eq!((a + b) - b, a);
        assert_eq!(-a + a, Complex32::ZERO);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        let c = a * b;
        assert_eq!(c, Complex32::new(5.0, 5.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex32::from_polar(2.0, std::f32::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-6);
        assert!((z.arg() - std::f32::consts::FRAC_PI_3).abs() < 1e-6);
    }

    #[test]
    fn unit_phasor_has_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f32 * 0.4;
            assert!((Complex32::from_angle(theta).abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex32::new(0.6, 0.8);
        assert!((z.conj().arg() + z.arg()).abs() < 1e-6);
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
