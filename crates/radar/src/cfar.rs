//! Cell-averaging constant false alarm rate (CA-CFAR) detection.

use serde::{Deserialize, Serialize};

use crate::error::RadarError;
use crate::range_doppler::RangeDopplerMap;
use crate::Result;

/// CA-CFAR window and threshold configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfarConfig {
    /// Number of guard cells on each side of the cell under test.
    pub guard_cells: usize,
    /// Number of training cells on each side (beyond the guard cells).
    pub training_cells: usize,
    /// Threshold scaling factor applied to the estimated noise level.
    pub threshold_factor: f32,
}

impl Default for CfarConfig {
    fn default() -> Self {
        CfarConfig { guard_cells: 2, training_cells: 4, threshold_factor: 3.0 }
    }
}

impl CfarConfig {
    /// Validates the window against a data length.
    ///
    /// # Errors
    ///
    /// Returns [`RadarError::InvalidCfarWindow`] when the window does not fit
    /// or the threshold factor is non-positive.
    pub fn validate(&self, len: usize) -> Result<()> {
        let window = 2 * (self.guard_cells + self.training_cells) + 1;
        if self.training_cells == 0 {
            return Err(RadarError::InvalidCfarWindow("training_cells must be nonzero".into()));
        }
        if window > len {
            return Err(RadarError::InvalidCfarWindow(format!(
                "window of {window} cells does not fit in {len} samples"
            )));
        }
        if self.threshold_factor <= 0.0 {
            return Err(RadarError::InvalidCfarWindow("threshold_factor must be positive".into()));
        }
        Ok(())
    }
}

/// 1-D CA-CFAR over a power profile. Returns the indices of detected cells.
///
/// Edge cells reuse the available training cells on the valid side, so
/// detections near the boundaries are still possible.
///
/// # Errors
///
/// Returns an error if the window configuration is invalid for `data.len()`.
pub fn cfar_ca_1d(data: &[f32], config: &CfarConfig) -> Result<Vec<usize>> {
    config.validate(data.len())?;
    let g = config.guard_cells;
    let t = config.training_cells;
    let mut detections = Vec::new();
    for i in 0..data.len() {
        let mut noise = 0.0f32;
        let mut count = 0usize;
        // Leading training cells.
        let lead_end = i.saturating_sub(g);
        let lead_start = lead_end.saturating_sub(t);
        for &cell in &data[lead_start..lead_end] {
            noise += cell;
            count += 1;
        }
        // Trailing training cells.
        let trail_start = (i + g + 1).min(data.len());
        let trail_end = (trail_start + t).min(data.len());
        for &cell in &data[trail_start..trail_end] {
            noise += cell;
            count += 1;
        }
        if count == 0 {
            continue;
        }
        let threshold = config.threshold_factor * noise / count as f32;
        if data[i] > threshold {
            detections.push(i);
        }
    }
    Ok(detections)
}

/// A detection produced by the 2-D CFAR over a range–Doppler map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfarDetection {
    /// Range bin of the detection.
    pub range_bin: usize,
    /// Doppler bin of the detection.
    pub doppler_bin: usize,
    /// Magnitude of the detected cell.
    pub magnitude: f32,
    /// Estimated local noise level used for the threshold.
    pub noise_level: f32,
}

/// 2-D CA-CFAR applied separably over the range and Doppler axes of a
/// [`RangeDopplerMap`]: a cell is detected when it exceeds the CFAR threshold
/// along *both* axes and is a local maximum in its 3×3 neighbourhood (simple
/// peak grouping so each target produces a handful of points rather than a
/// blob).
///
/// # Errors
///
/// Returns an error if the window configuration does not fit the map.
pub fn cfar_ca_2d(map: &RangeDopplerMap, config: &CfarConfig) -> Result<Vec<CfarDetection>> {
    let rows = map.range_bins();
    let cols = map.doppler_bins();
    config.validate(rows)?;
    config.validate(cols)?;
    let mag = map.magnitude();

    let mut row_hits = vec![false; rows * cols];
    for r in 0..rows {
        let row = &mag[r * cols..(r + 1) * cols];
        for c in cfar_ca_1d(row, config)? {
            row_hits[r * cols + c] = true;
        }
    }
    let mut detections = Vec::new();
    for c in 0..cols {
        let column: Vec<f32> = (0..rows).map(|r| mag[r * cols + c]).collect();
        for r in cfar_ca_1d(&column, config)? {
            if !row_hits[r * cols + c] {
                continue;
            }
            let value = mag[r * cols + c];
            // Local-maximum grouping over the 3x3 neighbourhood.
            let mut is_peak = true;
            for dr in -1i32..=1 {
                for dc in -1i32..=1 {
                    if dr == 0 && dc == 0 {
                        continue;
                    }
                    let nr = r as i32 + dr;
                    let nc = c as i32 + dc;
                    if nr < 0 || nr >= rows as i32 || nc < 0 || nc >= cols as i32 {
                        continue;
                    }
                    if mag[nr as usize * cols + nc as usize] > value {
                        is_peak = false;
                    }
                }
            }
            if !is_peak {
                continue;
            }
            let noise = estimate_noise(&column, r, config);
            detections.push(CfarDetection {
                range_bin: r,
                doppler_bin: c,
                magnitude: value,
                noise_level: noise,
            });
        }
    }
    detections
        .sort_by(|a, b| b.magnitude.partial_cmp(&a.magnitude).unwrap_or(std::cmp::Ordering::Equal));
    Ok(detections)
}

fn estimate_noise(data: &[f32], i: usize, config: &CfarConfig) -> f32 {
    let g = config.guard_cells;
    let t = config.training_cells;
    let mut noise = 0.0f32;
    let mut count = 0usize;
    let lead_end = i.saturating_sub(g);
    let lead_start = lead_end.saturating_sub(t);
    for &cell in &data[lead_start..lead_end] {
        noise += cell;
        count += 1;
    }
    let trail_start = (i + g + 1).min(data.len());
    let trail_end = (trail_start + t).min(data.len());
    for &cell in &data[trail_start..trail_end] {
        noise += cell;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        noise / count as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::AdcCube;
    use crate::config::RadarConfig;
    use crate::scene::{Scatterer, Scene};

    #[test]
    fn single_spike_is_detected_in_1d() {
        let mut data = vec![1.0f32; 64];
        data[30] = 50.0;
        let hits = cfar_ca_1d(&data, &CfarConfig::default()).unwrap();
        assert!(hits.contains(&30));
        // Nothing else should fire except possibly cells adjacent to the spike.
        assert!(hits.iter().all(|&i| (i as i32 - 30).abs() <= 3), "{hits:?}");
    }

    #[test]
    fn uniform_noise_produces_no_detections() {
        let data = vec![1.0f32; 128];
        let hits = cfar_ca_1d(&data, &CfarConfig::default()).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn spike_near_edge_is_still_detected() {
        let mut data = vec![1.0f32; 64];
        data[1] = 40.0;
        data[62] = 40.0;
        let hits = cfar_ca_1d(&data, &CfarConfig::default()).unwrap();
        assert!(hits.contains(&1));
        assert!(hits.contains(&62));
    }

    #[test]
    fn higher_threshold_factor_detects_fewer_cells() {
        let mut data = vec![1.0f32; 64];
        for (i, v) in data.iter_mut().enumerate() {
            *v += (i as f32 * 0.7).sin().abs() * 2.0;
        }
        data[20] = 30.0;
        data[40] = 6.0;
        let loose = CfarConfig { threshold_factor: 1.5, ..CfarConfig::default() };
        let strict = CfarConfig { threshold_factor: 8.0, ..CfarConfig::default() };
        let loose_hits = cfar_ca_1d(&data, &loose).unwrap();
        let strict_hits = cfar_ca_1d(&data, &strict).unwrap();
        assert!(loose_hits.len() >= strict_hits.len());
        assert!(strict_hits.contains(&20));
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let data = vec![1.0f32; 8];
        let too_wide = CfarConfig { guard_cells: 4, training_cells: 4, threshold_factor: 3.0 };
        assert!(cfar_ca_1d(&data, &too_wide).is_err());
        let zero_training = CfarConfig { guard_cells: 1, training_cells: 0, threshold_factor: 3.0 };
        assert!(cfar_ca_1d(&data, &zero_training).is_err());
        let bad_factor = CfarConfig { threshold_factor: 0.0, ..CfarConfig::default() };
        assert!(bad_factor.validate(64).is_err());
    }

    #[test]
    fn cfar_2d_detects_a_real_target() {
        let mut config = RadarConfig::test_small();
        config.noise_std = 0.005;
        let scene = Scene::from_scatterers(vec![Scatterer::fixed([0.3, 2.0, 0.2])]);
        let cube = AdcCube::synthesize(&config, &scene, 11).unwrap();
        let map = RangeDopplerMap::from_cube(&cube).unwrap();
        let detections = cfar_ca_2d(&map, &CfarConfig::default()).unwrap();
        assert!(!detections.is_empty(), "no CFAR detections");
        // The strongest detection should sit near the true range.
        let best = detections[0];
        let est_range = map.range_of_bin(best.range_bin);
        let true_range = (0.3f64 * 0.3 + 2.0 * 2.0 + 0.2 * 0.2).sqrt();
        assert!((est_range - true_range).abs() < 3.0 * map.config().range_resolution_m());
        assert!(best.magnitude > best.noise_level);
    }

    #[test]
    fn cfar_2d_on_pure_noise_detects_little() {
        let config = RadarConfig::test_small();
        let cube = AdcCube::synthesize(&config, &Scene::new(), 2).unwrap();
        let map = RangeDopplerMap::from_cube(&cube).unwrap();
        let detections = cfar_ca_2d(&map, &CfarConfig::default()).unwrap();
        // Noise-only frames should produce at most a handful of false alarms.
        assert!(detections.len() < 20, "too many false alarms: {}", detections.len());
    }
}
