//! Sparse point-cloud output of the radar chain.
//!
//! Two generators are provided:
//!
//! * [`PointCloudGenerator`] runs the full FMCW chain (ADC synthesis → range
//!   FFT → Doppler FFT → CFAR → angle estimation). It is the reference
//!   implementation and is exercised by the examples and integration tests.
//! * [`FastScatterModel`] produces statistically equivalent point clouds
//!   directly from the scatterer geometry. It is used to synthesise the
//!   40k-frame MARS-like dataset, where running the full FFT chain per frame
//!   would dominate experiment time without changing what the learning task
//!   sees (sparse, noisy points with the radar's resolution limits).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::adc::AdcCube;
use crate::angle::{estimate_angles, spherical_to_cartesian};
use crate::cfar::{cfar_ca_2d, CfarConfig};
use crate::config::RadarConfig;
use crate::range_doppler::RangeDopplerMap;
use crate::scene::Scene;
use crate::Result;

/// One point of the radar point cloud, `P_i = (x, y, z, d, I)` as in Eq. (1)
/// of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RadarPoint {
    /// Lateral position in metres.
    pub x: f32,
    /// Depth (distance from the radar plane) in metres.
    pub y: f32,
    /// Height in metres.
    pub z: f32,
    /// Doppler (radial) velocity in metres per second.
    pub doppler: f32,
    /// Signal intensity (linear magnitude).
    pub intensity: f32,
}

impl RadarPoint {
    /// Creates a point from its five features.
    pub fn new(x: f32, y: f32, z: f32, doppler: f32, intensity: f32) -> Self {
        RadarPoint { x, y, z, doppler, intensity }
    }

    /// The five features as an array, in `(x, y, z, d, I)` order.
    pub fn features(&self) -> [f32; 5] {
        [self.x, self.y, self.z, self.doppler, self.intensity]
    }

    /// Range from the radar origin in metres.
    pub fn range(&self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }
}

/// A point-cloud frame: all points detected during one frame period
/// (Eq. (2) of the paper).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointCloudFrame {
    /// Frame index within its sequence.
    pub index: usize,
    /// Timestamp in seconds from the start of the sequence.
    pub timestamp_s: f64,
    /// Detected points.
    pub points: Vec<RadarPoint>,
}

impl PointCloudFrame {
    /// Creates a frame from points.
    pub fn new(index: usize, timestamp_s: f64, points: Vec<RadarPoint>) -> Self {
        PointCloudFrame { index, timestamp_s, points }
    }

    /// Number of points in the frame.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the frame contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Centroid of the points, or `None` for an empty frame.
    pub fn centroid(&self) -> Option<[f32; 3]> {
        if self.points.is_empty() {
            return None;
        }
        let mut c = [0.0f32; 3];
        for p in &self.points {
            c[0] += p.x;
            c[1] += p.y;
            c[2] += p.z;
        }
        let n = self.points.len() as f32;
        Some([c[0] / n, c[1] / n, c[2] / n])
    }

    /// Axis-aligned bounding box `(min, max)`, or `None` for an empty frame.
    pub fn bounding_box(&self) -> Option<([f32; 3], [f32; 3])> {
        let first = self.points.first()?;
        let mut min = [first.x, first.y, first.z];
        let mut max = min;
        for p in &self.points {
            let v = [p.x, p.y, p.z];
            for a in 0..3 {
                min[a] = min[a].min(v[a]);
                max[a] = max[a].max(v[a]);
            }
        }
        Some((min, max))
    }
}

/// Full-chain point-cloud generator (ADC → FFTs → CFAR → angles).
#[derive(Debug, Clone)]
pub struct PointCloudGenerator {
    config: RadarConfig,
    cfar: CfarConfig,
    /// Maximum number of points to keep per frame (strongest first).
    max_points: usize,
}

impl PointCloudGenerator {
    /// Creates a generator with default CFAR settings and a 128-point cap.
    pub fn new(config: RadarConfig) -> Self {
        PointCloudGenerator { config, cfar: CfarConfig::default(), max_points: 128 }
    }

    /// Overrides the CFAR configuration.
    pub fn with_cfar(mut self, cfar: CfarConfig) -> Self {
        self.cfar = cfar;
        self
    }

    /// Overrides the per-frame point cap.
    pub fn with_max_points(mut self, max_points: usize) -> Self {
        self.max_points = max_points;
        self
    }

    /// The radar configuration used by this generator.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Runs the full signal chain on a scene and returns the detected points.
    ///
    /// # Errors
    ///
    /// Propagates configuration and FFT errors from the signal chain.
    pub fn generate(&self, scene: &Scene, seed: u64) -> Result<PointCloudFrame> {
        let cube = AdcCube::synthesize(&self.config, scene, seed)?;
        let map = RangeDopplerMap::from_cube(&cube)?;
        let detections = cfar_ca_2d(&map, &self.cfar)?;

        let mut points = Vec::new();
        for det in detections.into_iter().take(self.max_points) {
            let range = map.range_of_bin(det.range_bin) as f32;
            if range < 0.2 {
                // Skip the DC/leakage region right in front of the antenna.
                continue;
            }
            let snapshot = map.antenna_snapshot(det.range_bin, det.doppler_bin);
            let Some(angles) = estimate_angles(&self.config, &snapshot) else {
                continue;
            };
            let [x, y, z] = spherical_to_cartesian(range, angles.azimuth_rad, angles.elevation_rad);
            points.push(RadarPoint {
                x,
                y,
                z,
                doppler: map.velocity_of_bin(det.doppler_bin) as f32,
                intensity: det.magnitude,
            });
        }
        Ok(PointCloudFrame::new(0, 0.0, points))
    }
}

/// Statistical point-cloud model calibrated against the full chain.
///
/// Instead of synthesising and processing raw ADC data, the fast model draws
/// a sparse subset of the scene's scatterers (selection probability
/// proportional to received power), perturbs them with the radar's range and
/// angular resolution, quantises Doppler to the velocity resolution and adds
/// occasional ghost points — the characteristics that make mmWave point
/// clouds hard for the downstream learning task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FastScatterModel {
    config: RadarConfig,
    /// Mean number of points produced per frame (the paper reports ~64).
    pub mean_points_per_frame: usize,
    /// Standard deviation of the per-frame point count.
    pub points_std: f32,
    /// Probability that a generated point is a ghost/clutter point.
    pub ghost_probability: f32,
    /// Extra position jitter (metres) on top of the resolution-derived noise.
    pub extra_position_noise_m: f32,
}

impl FastScatterModel {
    /// Creates a fast model with MARS-like defaults: frames are zero-padded
    /// to 64 points downstream, but the number of actual CFAR detections per
    /// frame averages ≈32 and varies strongly from frame to frame — the
    /// sparsity that motivates multi-frame fusion in the first place.
    pub fn new(config: RadarConfig) -> Self {
        FastScatterModel {
            config,
            mean_points_per_frame: 32,
            points_std: 10.0,
            ghost_probability: 0.03,
            extra_position_noise_m: 0.01,
        }
    }

    /// Overrides the mean number of points per frame.
    pub fn with_mean_points(mut self, mean_points: usize) -> Self {
        self.mean_points_per_frame = mean_points;
        self
    }

    /// The radar configuration used by this model.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Samples a point-cloud frame for a scene.
    ///
    /// The result is deterministic for a given `(scene, seed)` pair.
    pub fn sample(&self, scene: &Scene, seed: u64) -> PointCloudFrame {
        let mut rng = StdRng::seed_from_u64(seed);
        if scene.is_empty() {
            return PointCloudFrame::default();
        }

        // Received power weights ∝ RCS / R⁴ (radar equation).
        let weights: Vec<f32> = scene
            .iter()
            .map(|s| {
                let r = s.range().max(0.3);
                (s.rcs.max(1e-6)) / (r * r * r * r)
            })
            .collect();
        let total_weight: f32 = weights.iter().sum();

        let count_noise = Normal::new(0.0f32, self.points_std).expect("std is finite");
        let n_points = (self.mean_points_per_frame as f32 + count_noise.sample(&mut rng))
            .round()
            .clamp(4.0, 2.0 * self.mean_points_per_frame as f32) as usize;

        let range_res = self.config.range_resolution_m() as f32;
        let vel_res = self.config.velocity_resolution_mps() as f32;
        // Cross-range resolution grows with range: r * beamwidth. Approximate
        // the 3 dB beamwidth of an n-element λ/2 array as 2 / n radians.
        let az_beamwidth = 2.0 / self.config.azimuth_antennas as f32;
        let el_beamwidth = 2.0 / self.config.elevation_antennas.max(1) as f32;

        let pos_noise = Normal::new(0.0f32, 1.0).expect("unit normal");
        let mut points = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            if rng.gen::<f32>() < self.ghost_probability {
                // Ghost point: uniform in a box around the scene.
                let (min, max) = scene.bounding_box().expect("scene is non-empty");
                let p = RadarPoint {
                    x: rng.gen_range(min[0] - 0.5..=max[0] + 0.5),
                    y: rng.gen_range((min[1] - 0.5).max(0.3)..=max[1] + 0.5),
                    z: rng.gen_range(min[2] - 0.5..=max[2] + 0.5),
                    doppler: rng.gen_range(-1.0..=1.0),
                    intensity: rng.gen_range(0.1..=0.5),
                };
                points.push(p);
                continue;
            }

            // Weighted scatterer selection.
            let mut pick = rng.gen::<f32>() * total_weight;
            let mut chosen = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                if pick <= w {
                    chosen = i;
                    break;
                }
                pick -= w;
                chosen = i;
            }
            let s = scene.scatterers()[chosen];
            let r = s.range().max(0.3);

            // Resolution-driven noise: radial noise from range resolution,
            // tangential noise from the angular beamwidth. The angular terms
            // are capped because the real device sharpens angles beyond the
            // raw beamwidth through CFAR peak interpolation.
            let radial_sigma = 0.5 * range_res + self.extra_position_noise_m;
            let lateral_sigma = (0.25 * r * az_beamwidth).min(0.20) + self.extra_position_noise_m;
            let vertical_sigma = (0.25 * r * el_beamwidth).min(0.30) + self.extra_position_noise_m;

            let x = s.position[0] + pos_noise.sample(&mut rng) * lateral_sigma;
            let y = s.position[1] + pos_noise.sample(&mut rng) * radial_sigma;
            let z = s.position[2] + pos_noise.sample(&mut rng) * vertical_sigma;

            // Doppler quantised to the velocity resolution plus jitter.
            let vr = s.radial_velocity();
            let doppler = (vr / vel_res).round() * vel_res + pos_noise.sample(&mut rng) * 0.05;

            // Intensity from the radar equation with log-normal-ish spread.
            let intensity = (s.rcs.max(1e-6) / (r * r * r * r))
                * (1.0 + 0.3 * pos_noise.sample(&mut rng)).max(0.1);

            points.push(RadarPoint { x, y, z, doppler, intensity });
        }
        PointCloudFrame::new(0, 0.0, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Scatterer;

    fn human_like_scene() -> Scene {
        // A rough vertical stack of scatterers ~2 m in front of the radar.
        let mut scene = Scene::new();
        for i in 0..20 {
            let z = 0.1 + i as f32 * 0.09;
            scene.push(Scatterer::new([0.05 * (i % 3) as f32, 2.0, z], [0.0, 0.2, 0.0], 1.0));
        }
        scene
    }

    #[test]
    fn full_chain_detects_a_human_like_target() {
        let config = RadarConfig::test_small();
        let generator = PointCloudGenerator::new(config);
        let frame = generator.generate(&human_like_scene(), 42).unwrap();
        assert!(!frame.is_empty(), "no points detected");
        let centroid = frame.centroid().unwrap();
        // Centroid depth should be near 2 m.
        assert!((centroid[1] - 2.0).abs() < 0.8, "centroid {centroid:?}");
    }

    #[test]
    fn full_chain_point_cap_is_respected() {
        let config = RadarConfig::test_small();
        let generator = PointCloudGenerator::new(config).with_max_points(5);
        let frame = generator.generate(&human_like_scene(), 1).unwrap();
        assert!(frame.len() <= 5);
    }

    #[test]
    fn fast_model_produces_sparse_frames_near_target_count() {
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
        let frame = model.sample(&human_like_scene(), 3);
        assert!(frame.len() >= 8 && frame.len() <= 80, "points {}", frame.len());
        // Averaged over many frames the count approaches the configured mean.
        let mean: f32 =
            (0..50).map(|s| model.sample(&human_like_scene(), s).len() as f32).sum::<f32>() / 50.0;
        assert!((mean - model.mean_points_per_frame as f32).abs() < 8.0, "mean points {mean}");
    }

    #[test]
    fn fast_model_is_deterministic_per_seed() {
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
        let scene = human_like_scene();
        assert_eq!(model.sample(&scene, 5), model.sample(&scene, 5));
        assert_ne!(model.sample(&scene, 5), model.sample(&scene, 6));
    }

    #[test]
    fn fast_model_points_cluster_around_the_scene() {
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
        let frame = model.sample(&human_like_scene(), 9);
        let centroid = frame.centroid().unwrap();
        assert!((centroid[1] - 2.0).abs() < 0.5, "depth centroid {}", centroid[1]);
        // Most points should be within ~1.5 body heights of the scene volume.
        let close = frame
            .points
            .iter()
            .filter(|p| (p.y - 2.0).abs() < 1.0 && p.z > -0.5 && p.z < 2.5)
            .count();
        assert!(close as f32 > 0.8 * frame.len() as f32);
    }

    #[test]
    fn fast_model_empty_scene_gives_empty_frame() {
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor());
        assert!(model.sample(&Scene::new(), 1).is_empty());
    }

    #[test]
    fn fast_model_doppler_tracks_radial_velocity() {
        let mut scene = Scene::new();
        for i in 0..30 {
            scene.push(Scatterer::new([0.0, 2.0 + 0.01 * i as f32, 1.0], [0.0, 1.0, 0.0], 1.0));
        }
        let model = FastScatterModel::new(RadarConfig::iwr1443_indoor()).with_mean_points(64);
        let frame = model.sample(&scene, 4);
        let mean_doppler: f32 =
            frame.points.iter().map(|p| p.doppler).sum::<f32>() / frame.len() as f32;
        assert!((mean_doppler - 1.0).abs() < 0.3, "mean doppler {mean_doppler}");
    }

    #[test]
    fn frame_geometry_helpers() {
        let frame = PointCloudFrame::new(
            0,
            0.0,
            vec![
                RadarPoint::new(-1.0, 1.0, 0.0, 0.0, 1.0),
                RadarPoint::new(1.0, 3.0, 2.0, 0.0, 1.0),
            ],
        );
        assert_eq!(frame.centroid().unwrap(), [0.0, 2.0, 1.0]);
        let (min, max) = frame.bounding_box().unwrap();
        assert_eq!(min, [-1.0, 1.0, 0.0]);
        assert_eq!(max, [1.0, 3.0, 2.0]);
        assert!(PointCloudFrame::default().centroid().is_none());
        assert!((frame.points[1].range() - 14.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(frame.points[0].features()[4], 1.0);
    }
}
