//! Error type for the radar signal chain.

use std::error::Error;
use std::fmt;

/// Error returned by fallible radar-simulation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadarError {
    /// The chirp/radar configuration is internally inconsistent.
    InvalidConfig(String),
    /// An FFT was requested on a buffer whose length is not a power of two.
    FftLengthNotPowerOfTwo(usize),
    /// A data cube or map had unexpected dimensions.
    DimensionMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// CFAR was configured with more guard/training cells than data.
    InvalidCfarWindow(String),
}

impl fmt::Display for RadarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadarError::InvalidConfig(msg) => write!(f, "invalid radar configuration: {msg}"),
            RadarError::FftLengthNotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a power of two")
            }
            RadarError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            RadarError::InvalidCfarWindow(msg) => write!(f, "invalid cfar window: {msg}"),
        }
    }
}

impl Error for RadarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            RadarError::InvalidConfig("bad".into()),
            RadarError::FftLengthNotPowerOfTwo(3),
            RadarError::DimensionMismatch { expected: "64".into(), actual: "32".into() },
            RadarError::InvalidCfarWindow("too wide".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
