//! Chirp and radar configuration with derived resolution parameters.

use serde::{Deserialize, Serialize};

use crate::error::RadarError;
use crate::Result;
use crate::SPEED_OF_LIGHT;

/// FMCW chirp parameters.
///
/// A chirp is a sinusoid whose frequency increases linearly with time
/// (§3.1.1). Together with the frame parameters in [`RadarConfig`], the chirp
/// fully determines the range, velocity and angle resolution of the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChirpConfig {
    /// Chirp start frequency in Hz (77 GHz band for the IWR1443).
    pub start_frequency_hz: f64,
    /// Frequency slope in Hz per second.
    pub slope_hz_per_s: f64,
    /// Number of ADC samples per chirp (must be a power of two).
    pub samples_per_chirp: usize,
    /// ADC sampling rate in samples per second.
    pub sample_rate_hz: f64,
    /// Chirp repetition interval in seconds (includes idle time).
    pub chirp_interval_s: f64,
}

impl ChirpConfig {
    /// Swept bandwidth of one chirp in Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.slope_hz_per_s * self.samples_per_chirp as f64 / self.sample_rate_hz
    }

    /// Wavelength at the start frequency, in metres.
    pub fn wavelength_m(&self) -> f64 {
        SPEED_OF_LIGHT / self.start_frequency_hz
    }

    /// Duration of the sampled portion of the chirp in seconds.
    pub fn active_duration_s(&self) -> f64 {
        self.samples_per_chirp as f64 / self.sample_rate_hz
    }
}

/// Full radar device configuration (chirp + frame + antenna array).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadarConfig {
    /// Chirp parameters.
    pub chirp: ChirpConfig,
    /// Number of chirps per frame (must be a power of two).
    pub chirps_per_frame: usize,
    /// Number of virtual antennas along azimuth (must be a power of two for
    /// the angle FFT).
    pub azimuth_antennas: usize,
    /// Number of virtual antennas along elevation (power of two, may be 1).
    pub elevation_antennas: usize,
    /// Antenna element spacing in wavelengths (λ/2 = 0.5).
    pub antenna_spacing_wavelengths: f64,
    /// Frame period in seconds (the paper uses 100 ms, i.e. 10 Hz).
    pub frame_period_s: f64,
    /// Thermal noise standard deviation added to the ADC samples.
    pub noise_std: f32,
}

impl RadarConfig {
    /// An IWR1443-like indoor configuration: 77 GHz, ~4 GHz bandwidth,
    /// 64 samples × 64 chirps, 8 azimuth × 2 elevation virtual antennas and a
    /// 10 Hz frame rate — small enough to simulate quickly while matching the
    /// resolutions relevant for indoor pose estimation.
    pub fn iwr1443_indoor() -> Self {
        RadarConfig {
            chirp: ChirpConfig {
                start_frequency_hz: 77.0e9,
                slope_hz_per_s: 70.0e12, // 70 MHz/us
                samples_per_chirp: 64,
                sample_rate_hz: 2.0e6,
                chirp_interval_s: 160.0e-6,
            },
            chirps_per_frame: 64,
            azimuth_antennas: 8,
            elevation_antennas: 2,
            antenna_spacing_wavelengths: 0.5,
            frame_period_s: 0.1,
            noise_std: 0.02,
        }
    }

    /// A reduced configuration for fast unit tests (16 samples, 16 chirps,
    /// 4 × 2 antennas).
    pub fn test_small() -> Self {
        RadarConfig {
            chirp: ChirpConfig {
                start_frequency_hz: 77.0e9,
                slope_hz_per_s: 70.0e12,
                samples_per_chirp: 32,
                sample_rate_hz: 2.0e6,
                chirp_interval_s: 160.0e-6,
            },
            chirps_per_frame: 16,
            azimuth_antennas: 4,
            elevation_antennas: 2,
            antenna_spacing_wavelengths: 0.5,
            frame_period_s: 0.1,
            noise_std: 0.01,
        }
    }

    /// Validates that the configuration is usable by the signal chain.
    ///
    /// # Errors
    ///
    /// Returns [`RadarError::InvalidConfig`] when any count is zero or not a
    /// power of two, or any physical parameter is non-positive.
    pub fn validate(&self) -> Result<()> {
        fn pow2(name: &str, v: usize) -> Result<()> {
            if v == 0 || !v.is_power_of_two() {
                return Err(RadarError::InvalidConfig(format!(
                    "{name} must be a nonzero power of two, got {v}"
                )));
            }
            Ok(())
        }
        pow2("samples_per_chirp", self.chirp.samples_per_chirp)?;
        pow2("chirps_per_frame", self.chirps_per_frame)?;
        pow2("azimuth_antennas", self.azimuth_antennas)?;
        pow2("elevation_antennas", self.elevation_antennas)?;
        if self.chirp.start_frequency_hz <= 0.0
            || self.chirp.slope_hz_per_s <= 0.0
            || self.chirp.sample_rate_hz <= 0.0
            || self.chirp.chirp_interval_s <= 0.0
            || self.frame_period_s <= 0.0
        {
            return Err(RadarError::InvalidConfig("physical parameters must be positive".into()));
        }
        if self.noise_std < 0.0 {
            return Err(RadarError::InvalidConfig("noise_std must be non-negative".into()));
        }
        Ok(())
    }

    /// Total number of virtual antennas.
    pub fn virtual_antennas(&self) -> usize {
        self.azimuth_antennas * self.elevation_antennas
    }

    /// Range resolution `c / (2B)` in metres.
    pub fn range_resolution_m(&self) -> f64 {
        SPEED_OF_LIGHT / (2.0 * self.chirp.bandwidth_hz())
    }

    /// Maximum unambiguous range in metres.
    pub fn max_range_m(&self) -> f64 {
        self.range_resolution_m() * self.chirp.samples_per_chirp as f64
    }

    /// Velocity resolution `λ / (2 · N_chirps · T_c)` in metres per second.
    pub fn velocity_resolution_mps(&self) -> f64 {
        self.chirp.wavelength_m()
            / (2.0 * self.chirps_per_frame as f64 * self.chirp.chirp_interval_s)
    }

    /// Maximum unambiguous radial velocity in metres per second.
    pub fn max_velocity_mps(&self) -> f64 {
        self.chirp.wavelength_m() / (4.0 * self.chirp.chirp_interval_s)
    }

    /// Beat frequency produced by a target at the given range, in Hz.
    pub fn beat_frequency_hz(&self, range_m: f64) -> f64 {
        2.0 * self.chirp.slope_hz_per_s * range_m / SPEED_OF_LIGHT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_are_valid() {
        RadarConfig::iwr1443_indoor().validate().unwrap();
        RadarConfig::test_small().validate().unwrap();
    }

    #[test]
    fn validation_rejects_non_power_of_two_counts() {
        let mut cfg = RadarConfig::iwr1443_indoor();
        cfg.chirps_per_frame = 60;
        assert!(cfg.validate().is_err());
        let mut cfg = RadarConfig::iwr1443_indoor();
        cfg.chirp.samples_per_chirp = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_nonpositive_physics() {
        let mut cfg = RadarConfig::iwr1443_indoor();
        cfg.frame_period_s = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RadarConfig::iwr1443_indoor();
        cfg.noise_std = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn indoor_range_resolution_is_a_few_centimeters() {
        let cfg = RadarConfig::iwr1443_indoor();
        let res = cfg.range_resolution_m();
        // ~4.3 cm for ~3.5 GHz of swept bandwidth.
        assert!(res > 0.02 && res < 0.10, "range resolution {res}");
        assert!(cfg.max_range_m() > 2.0, "max range {}", cfg.max_range_m());
    }

    #[test]
    fn indoor_velocity_limits_cover_human_motion() {
        let cfg = RadarConfig::iwr1443_indoor();
        // Human limb speeds during rehab movements are < 4 m/s.
        assert!(cfg.max_velocity_mps() > 3.0, "max velocity {}", cfg.max_velocity_mps());
        assert!(cfg.velocity_resolution_mps() < 0.5);
    }

    #[test]
    fn wavelength_is_about_4_mm() {
        let cfg = RadarConfig::iwr1443_indoor();
        let lambda = cfg.chirp.wavelength_m();
        assert!(lambda > 0.0035 && lambda < 0.0042, "wavelength {lambda}");
    }

    #[test]
    fn beat_frequency_scales_linearly_with_range() {
        let cfg = RadarConfig::iwr1443_indoor();
        let f1 = cfg.beat_frequency_hz(1.0);
        let f2 = cfg.beat_frequency_hz(2.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn virtual_antenna_count() {
        let cfg = RadarConfig::iwr1443_indoor();
        assert_eq!(cfg.virtual_antennas(), 16);
    }
}
