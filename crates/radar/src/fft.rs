//! Radix-2 FFT and window functions.

use crate::complex::Complex32;
use crate::error::RadarError;
use crate::Result;

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
///
/// Returns [`RadarError::FftLengthNotPowerOfTwo`] unless `data.len()` is a
/// power of two (length 0 and 1 are accepted as no-ops).
pub fn fft_inplace(data: &mut [Complex32]) -> Result<()> {
    transform(data, false)
}

/// In-place inverse FFT (includes the `1/N` normalisation).
///
/// # Errors
///
/// Returns [`RadarError::FftLengthNotPowerOfTwo`] unless `data.len()` is a
/// power of two.
pub fn ifft_inplace(data: &mut [Complex32]) -> Result<()> {
    transform(data, true)?;
    let n = data.len() as f32;
    if n > 0.0 {
        for x in data.iter_mut() {
            *x = x.scale(1.0 / n);
        }
    }
    Ok(())
}

fn transform(data: &mut [Complex32], inverse: bool) -> Result<()> {
    let n = data.len();
    if n <= 1 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(RadarError::FftLengthNotPowerOfTwo(n));
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f32::consts::PI / len as f32;
        let w_len = Complex32::from_angle(angle);
        for start in (0..n).step_by(len) {
            let mut w = Complex32::ONE;
            for k in 0..len / 2 {
                let even = data[start + k];
                let odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Naive O(n²) DFT used as a reference in tests and for non-power-of-two
/// spectra (e.g. fine angle grids).
pub fn dft(data: &[Complex32]) -> Vec<Complex32> {
    let n = data.len();
    let mut out = vec![Complex32::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex32::ZERO;
        for (t, &x) in data.iter().enumerate() {
            let angle = -2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32;
            acc += x * Complex32::from_angle(angle);
        }
        *o = acc;
    }
    out
}

/// Hann window of length `n`.
pub fn hann_window(n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    (0..n)
        .map(|i| {
            let x = std::f32::consts::PI * i as f32 / (n as f32 - 1.0);
            x.sin() * x.sin()
        })
        .collect()
}

/// Blackman window of length `n` (lower sidelobes than Hann; used for the
/// Doppler dimension where ghost targets matter more).
pub fn blackman_window(n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    (0..n)
        .map(|i| {
            let x = 2.0 * std::f32::consts::PI * i as f32 / (n as f32 - 1.0);
            0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos()
        })
        .collect()
}

/// Applies a real window to a complex buffer element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn apply_window(data: &mut [Complex32], window: &[f32]) {
    assert_eq!(data.len(), window.len(), "window length must match data length");
    for (x, &w) in data.iter_mut().zip(window) {
        *x = x.scale(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex32], b: &[Complex32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let data: Vec<Complex32> = (0..32)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.7).cos()))
            .collect();
        let expected = dft(&data);
        let mut fast = data.clone();
        fft_inplace(&mut fast).unwrap();
        assert_close(&fast, &expected, 1e-3);
    }

    #[test]
    fn fft_of_single_tone_peaks_at_tone_bin() {
        let n = 64;
        let bin = 9;
        let data: Vec<Complex32> = (0..n)
            .map(|i| {
                Complex32::from_angle(2.0 * std::f32::consts::PI * bin as f32 * i as f32 / n as f32)
            })
            .collect();
        let mut spec = data.clone();
        fft_inplace(&mut spec).unwrap();
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin);
        assert!((spec[bin].abs() - n as f32).abs() < 1e-2);
    }

    #[test]
    fn ifft_inverts_fft() {
        let data: Vec<Complex32> = (0..128)
            .map(|i| Complex32::new((i as f32 * 0.11).cos(), (i as f32 * 0.05).sin()))
            .collect();
        let mut buf = data.clone();
        fft_inplace(&mut buf).unwrap();
        ifft_inplace(&mut buf).unwrap();
        assert_close(&buf, &data, 1e-3);
    }

    #[test]
    fn fft_is_linear() {
        let a: Vec<Complex32> = (0..16).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
        let b: Vec<Complex32> = (0..16).map(|i| Complex32::new((i as f32).sqrt(), 1.0)).collect();
        let mut sum: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        fft_inplace(&mut sum).unwrap();
        let mut fa = a.clone();
        fft_inplace(&mut fa).unwrap();
        let mut fb = b.clone();
        fft_inplace(&mut fb).unwrap();
        let expected: Vec<Complex32> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&sum, &expected, 1e-3);
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex32::ZERO; 12];
        assert!(matches!(fft_inplace(&mut data), Err(RadarError::FftLengthNotPowerOfTwo(12))));
        let mut tiny = vec![Complex32::ONE];
        assert!(fft_inplace(&mut tiny).is_ok());
    }

    #[test]
    fn hann_window_is_symmetric_and_bounded() {
        let w = hann_window(33);
        assert_eq!(w.len(), 33);
        assert!(w[0].abs() < 1e-6);
        assert!((w[16] - 1.0).abs() < 1e-6);
        for i in 0..33 {
            assert!((w[i] - w[32 - i]).abs() < 1e-6);
            assert!((0.0..=1.0).contains(&w[i]));
        }
        assert_eq!(hann_window(0).len(), 0);
        assert_eq!(hann_window(1), vec![1.0]);
    }

    #[test]
    fn blackman_window_has_lower_edge_values_than_hann() {
        let h = hann_window(64);
        let b = blackman_window(64);
        assert!(b[1] < h[1]);
        assert!((b[32] - 1.0).abs() < 0.01);
    }

    #[test]
    fn apply_window_scales_elements() {
        let mut data = vec![Complex32::ONE; 4];
        apply_window(&mut data, &[0.0, 0.5, 1.0, 2.0]);
        assert_eq!(data[0], Complex32::ZERO);
        assert_eq!(data[3], Complex32::new(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn apply_window_panics_on_length_mismatch() {
        let mut data = vec![Complex32::ONE; 4];
        apply_window(&mut data, &[1.0; 3]);
    }
}
