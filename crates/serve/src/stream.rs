//! Stateful streaming operators.
//!
//! The serving pipeline used to be a *replay* loop: every submitted frame
//! re-ran multi-frame fusion over the session's whole rolling history. This
//! module reworks fusion and featurization as explicit **streaming ops** in
//! the pulse/scan style: an operator is a small, immutable description
//! ([`StreamOp`]) and all mutable per-client storage lives in an explicit
//! `State` value owned by the [`crate::Session`]. Three properties fall out:
//!
//! * **Incremental updates** — [`FusionOp`] maintains a delay line of the
//!   last `M + 1` cadence slots plus a rolling fused-point buffer; pushing a
//!   frame drains the evicted slot's points from the front and appends the
//!   new frame's points at the back. On a fixed-cadence stream the buffer is
//!   byte-for-byte the concatenation the old full re-fuse produced, so the
//!   committed serve goldens are untouched, and each update costs `O(points
//!   in + points out)` instead of `O(window)`.
//! * **Variable cadence & dropout tolerance** — a missing frame is an
//!   explicit [`StreamOp::tick`]: the delay line advances deterministically
//!   with an empty slot, so two hosts replaying the same frame + tick pattern
//!   hold bit-identical state (the invariant session migration relies on).
//! * **Declared metadata** — every op declares its [`StreamOp::delay`] and
//!   [`StreamOp::window`], so schedulers can reason about how much history an
//!   op needs without inspecting its state.

use std::collections::VecDeque;

use fuse_dataset::{FeatureMapBuilder, FrameFusion};
use fuse_radar::{PointCloudFrame, RadarPoint};
use fuse_tensor::Tensor;

use crate::Result;

/// A stateful streaming operator.
///
/// The op itself is immutable configuration; all mutable per-session storage
/// lives in the explicit `State` value, created by [`StreamOp::init`] and
/// owned by the caller (one state per client session). Each cadence slot of
/// the input stream is either a [`StreamOp::step`] (a frame arrived) or a
/// [`StreamOp::tick`] (the frame was dropped or the producer skipped a
/// beat); both advance the state deterministically, so replaying the same
/// step/tick pattern reproduces the state bit for bit.
pub trait StreamOp {
    /// The per-session mutable state of this op.
    type State;
    /// One cadence slot's worth of input.
    type Input;
    /// What one step produces.
    type Output;

    /// Creates a fresh (empty) state.
    fn init(&self) -> Self::State;

    /// Resets a state in place to the freshly-initialised condition.
    fn reset(&self, state: &mut Self::State);

    /// Advances the state by one cadence slot carrying `input`.
    fn step(&self, state: &mut Self::State, input: Self::Input) -> Self::Output;

    /// Advances the state by one cadence slot with *no* input (a dropped or
    /// skipped frame). The default treats a missing frame as a no-op; ops
    /// with internal delay lines override this to shift them.
    fn tick(&self, _state: &mut Self::State) {}

    /// Number of cadence slots between an input entering the op and it no
    /// longer influencing the output (0 = memoryless).
    fn delay(&self) -> usize {
        0
    }

    /// Number of cadence slots of history one output draws on.
    fn window(&self) -> usize {
        1
    }
}

/// Streaming multi-frame fusion (the stateful form of
/// [`fuse_dataset::FrameFusion`], paper Eq. 3).
///
/// The op retains the last `M + 1` cadence slots (`M` =
/// [`FrameFusion::half_window`]); fusing around the newest frame can only
/// ever reach `M` slots into the past, so that is all the history a
/// streaming session needs. Each slot is `Some(frame)` or `None` (a tick),
/// and the fused output is the concatenation of the retained present frames'
/// points, oldest slot first — exactly what the offline
/// [`FrameFusion::fused_points`] produces over the same frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionOp {
    fusion: FrameFusion,
}

impl FusionOp {
    /// Wraps a fusion operator for streaming use.
    pub fn new(fusion: FrameFusion) -> Self {
        FusionOp { fusion }
    }

    /// The underlying fusion configuration.
    pub fn fusion(&self) -> &FrameFusion {
        &self.fusion
    }

    /// Number of cadence slots the delay line holds (`M + 1`).
    pub fn slots(&self) -> usize {
        self.fusion.half_window() + 1
    }

    /// Recomputes the fused point set from scratch over the state's retained
    /// frames — the old full re-fuse path, kept as the cross-check oracle for
    /// the incremental buffer. Tests and debug assertions compare this
    /// against [`FusionState::fused`]; production callers read the
    /// incremental buffer.
    pub fn refuse(&self, state: &FusionState) -> Vec<RadarPoint> {
        let frames: Vec<&PointCloudFrame> = state.frames().collect();
        if frames.is_empty() {
            return Vec::new();
        }
        self.fusion.fused_points(&frames, frames.len() - 1)
    }
}

/// The per-session state of a [`FusionOp`]: the delay line plus the rolling
/// fused-point buffer.
#[derive(Debug, Clone, Default)]
pub struct FusionState {
    /// The last `M + 1` cadence slots, oldest first. `None` marks a tick
    /// (dropped/skipped frame) — it occupies a slot so the window keeps
    /// advancing in wall-clock cadence, not in frames-received.
    slots: VecDeque<Option<PointCloudFrame>>,
    /// Concatenated points of the present frames in `slots`, oldest slot
    /// first — maintained incrementally, never recomputed.
    fused: Vec<RadarPoint>,
}

impl FusionState {
    /// The incrementally-maintained fused point set (the streaming
    /// equivalent of fusing the retained history around its newest frame).
    pub fn fused(&self) -> &[RadarPoint] {
        &self.fused
    }

    /// The retained frames, oldest first (ticks are skipped).
    pub fn frames(&self) -> impl Iterator<Item = &PointCloudFrame> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Number of retained frames (present slots only).
    pub fn frame_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// One boolean per occupied cadence slot, oldest first: `true` where a
    /// frame is retained, `false` where a tick advanced the line. Together
    /// with [`FusionState::frames`] this reconstructs the delay line exactly
    /// (a migration replays `true` slots as steps and `false` slots as
    /// ticks).
    pub fn slot_mask(&self) -> Vec<bool> {
        self.slots.iter().map(|s| s.is_some()).collect()
    }

    fn evict_if_full(&mut self, capacity: usize) {
        if self.slots.len() == capacity {
            if let Some(Some(old)) = self.slots.pop_front() {
                self.fused.drain(..old.points.len());
            }
        }
    }
}

impl StreamOp for FusionOp {
    type State = FusionState;
    type Input = PointCloudFrame;
    type Output = usize;

    fn init(&self) -> FusionState {
        FusionState { slots: VecDeque::with_capacity(self.slots()), fused: Vec::new() }
    }

    fn reset(&self, state: &mut FusionState) {
        state.slots.clear();
        state.fused.clear();
    }

    /// Pushes a frame into the delay line and returns the fused point count.
    /// The evicted slot's points leave the front of the fused buffer, the new
    /// frame's points join at the back — the buffer is always the
    /// concatenation of the present slots' points, oldest first.
    fn step(&self, state: &mut FusionState, frame: PointCloudFrame) -> usize {
        state.evict_if_full(self.slots());
        state.fused.extend_from_slice(&frame.points);
        state.slots.push_back(Some(frame));
        state.fused.len()
    }

    /// Advances the delay line with an empty slot: the oldest slot's points
    /// leave the fused buffer and nothing replaces them. A fully-ticked-out
    /// window fuses to the empty point set, exactly like a fresh session.
    fn tick(&self, state: &mut FusionState) {
        state.evict_if_full(self.slots());
        state.slots.push_back(None);
    }

    fn delay(&self) -> usize {
        self.fusion.half_window()
    }

    fn window(&self) -> usize {
        self.slots()
    }
}

/// Streaming feature-map construction (the stateful form of
/// [`fuse_dataset::FeatureMapBuilder`]).
///
/// Featurization is memoryless over the fused point set, so its state is
/// only the lifetime counters — but routing it through [`StreamOp`] gives it
/// the same reset/step/tick lifecycle as fusion, and leaves room for a
/// future incremental grid update without touching callers.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturizeOp {
    builder: FeatureMapBuilder,
}

impl FeaturizeOp {
    /// Wraps a feature-map builder for streaming use.
    pub fn new(builder: FeatureMapBuilder) -> Self {
        FeaturizeOp { builder }
    }

    /// The underlying feature-map geometry.
    pub fn builder(&self) -> &FeatureMapBuilder {
        &self.builder
    }

    /// Builds the `[C, H, W]` feature tensor for a fused point set,
    /// advancing the state's counters.
    ///
    /// # Errors
    ///
    /// Propagates feature-map construction failures as
    /// [`crate::ServeError::Dataset`].
    pub fn featurize(&self, state: &mut FeaturizeState, points: &[RadarPoint]) -> Result<Tensor> {
        state.built += 1;
        Ok(self.builder.build(points, None)?)
    }
}

/// The per-session state of a [`FeaturizeOp`]: lifetime counters only (the
/// grid itself is rebuilt per output — see the op docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeaturizeState {
    /// Feature maps built over the state's lifetime.
    built: u64,
    /// Cadence slots that passed without an output (ticks).
    skipped: u64,
}

impl FeaturizeState {
    /// Feature maps built over the state's lifetime.
    pub fn built(&self) -> u64 {
        self.built
    }

    /// Cadence slots that passed without an output (ticks).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl StreamOp for FeaturizeOp {
    type State = FeaturizeState;
    type Input = ();
    type Output = ();

    fn init(&self) -> FeaturizeState {
        FeaturizeState::default()
    }

    fn reset(&self, state: &mut FeaturizeState) {
        *state = FeaturizeState::default();
    }

    fn step(&self, state: &mut FeaturizeState, _input: ()) {
        state.built += 1;
    }

    fn tick(&self, state: &mut FeaturizeState) {
        state.skipped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: f32, n: usize) -> PointCloudFrame {
        let points =
            (0..n).map(|i| RadarPoint::new(tag, 2.0 + i as f32 * 0.01, 1.0, 0.0, 1.0)).collect();
        PointCloudFrame::new(0, 0.0, points)
    }

    #[test]
    fn incremental_fusion_matches_the_full_refuse_on_fixed_cadence() {
        let op = FusionOp::new(FrameFusion::new(2));
        let mut state = op.init();
        for i in 0..10 {
            op.step(&mut state, frame(i as f32, 3 + i % 4));
            assert_eq!(state.fused(), op.refuse(&state).as_slice(), "after frame {i}");
        }
        assert_eq!(state.frame_count(), 3, "delay line holds M + 1 slots");
        assert_eq!(op.window(), 3);
        assert_eq!(op.delay(), 2);
    }

    #[test]
    fn ticks_advance_the_delay_line_deterministically() {
        let op = FusionOp::new(FrameFusion::new(1));
        let mut state = op.init();
        op.step(&mut state, frame(0.0, 4));
        op.step(&mut state, frame(1.0, 5));
        assert_eq!(state.fused().len(), 9);
        // A tick evicts the oldest frame without replacing it.
        op.tick(&mut state);
        assert_eq!(state.slot_mask(), [true, false]);
        assert_eq!(state.fused().len(), 5);
        assert_eq!(state.fused(), op.refuse(&state).as_slice());
        // Another tick empties the window entirely.
        op.tick(&mut state);
        assert_eq!(state.slot_mask(), [false, false]);
        assert!(state.fused().is_empty());
        assert_eq!(state.frame_count(), 0);
        // A frame after a gap fuses alone, like a fresh session's first frame.
        op.step(&mut state, frame(2.0, 7));
        assert_eq!(state.fused().len(), 7);
        assert_eq!(state.fused(), op.refuse(&state).as_slice());
    }

    #[test]
    fn replaying_a_slot_mask_reproduces_the_state_bit_for_bit() {
        let op = FusionOp::new(FrameFusion::new(2));
        let mut live = op.init();
        let pattern = [true, true, false, true, false, false, true, true];
        let mut tag = 0.0f32;
        for &present in &pattern {
            if present {
                op.step(&mut live, frame(tag, 6));
                tag += 1.0;
            } else {
                op.tick(&mut live);
            }
        }
        // Rebuild from the exported view: retained frames + slot mask.
        let frames: Vec<PointCloudFrame> = live.frames().cloned().collect();
        let mut rebuilt = op.init();
        let mut next = frames.into_iter();
        for present in live.slot_mask() {
            if present {
                op.step(&mut rebuilt, next.next().expect("mask and frames agree"));
            } else {
                op.tick(&mut rebuilt);
            }
        }
        assert_eq!(rebuilt.fused(), live.fused());
        assert_eq!(rebuilt.slot_mask(), live.slot_mask());
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let op = FusionOp::new(FrameFusion::default());
        let mut state = op.init();
        op.step(&mut state, frame(0.0, 4));
        op.tick(&mut state);
        op.reset(&mut state);
        assert!(state.fused().is_empty());
        assert!(state.slot_mask().is_empty());
    }

    #[test]
    fn featurize_op_counts_steps_and_ticks() {
        let op = FeaturizeOp::new(FeatureMapBuilder::default());
        let mut state = op.init();
        let t = op.featurize(&mut state, &frame(0.0, 4).points).unwrap();
        assert_eq!(t.dims(), &[5, 8, 8]);
        op.tick(&mut state);
        assert_eq!((state.built(), state.skipped()), (1, 1));
        op.reset(&mut state);
        assert_eq!(state, FeaturizeState::default());
    }
}
