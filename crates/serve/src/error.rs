//! Error type for the serving engine.

use std::error::Error;
use std::fmt;

use fuse_core::FuseError;
use fuse_dataset::DatasetError;
use fuse_graph::GraphError;
use fuse_nn::NnError;

/// Error returned by fallible serving operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A frame or request referenced a session id that was never opened (or
    /// was already closed).
    UnknownSession(u64),
    /// A session with this id is already open.
    DuplicateSession(u64),
    /// The engine was configured inconsistently (e.g. a zero micro-batch cap).
    InvalidConfig(String),
    /// Feature-map construction failed.
    Dataset(DatasetError),
    /// Model inference or checkpoint (de)serialization failed.
    Nn(NnError),
    /// Online fine-tuning failed.
    Core(FuseError),
    /// Compiled-plan execution failed.
    Graph(GraphError),
    /// A remote host shard failed in a way that has no richer typed form on
    /// this side of the wire: transport failures, and server-side errors
    /// whose variants do not round-trip through the wire codec (those that
    /// do — unknown/duplicate session — arrive as their typed selves).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::DuplicateSession(id) => write!(f, "session {id} is already open"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Dataset(e) => write!(f, "feature pipeline error: {e}"),
            ServeError::Nn(e) => write!(f, "model error: {e}"),
            ServeError::Core(e) => write!(f, "adaptation error: {e}"),
            ServeError::Graph(e) => write!(f, "compiled plan error: {e}"),
            ServeError::Remote(msg) => write!(f, "remote shard error: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Dataset(e) => Some(e),
            ServeError::Nn(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for ServeError {
    fn from(e: DatasetError) -> Self {
        ServeError::Dataset(e)
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<FuseError> for ServeError {
    fn from(e: FuseError) -> Self {
        ServeError::Core(e)
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_tensor::TensorError;

    #[test]
    fn display_and_source() {
        assert!(ServeError::UnknownSession(7).to_string().contains('7'));
        assert!(ServeError::DuplicateSession(3).source().is_none());
        let e: ServeError = NnError::Serialization("broken".into()).into();
        assert!(e.to_string().contains("broken"));
        assert!(e.source().is_some());
        let e: ServeError = FuseError::from(TensorError::EmptyTensor).into();
        assert!(e.source().is_some());
        let e: ServeError = DatasetError::EmptySplit("train".into()).into();
        assert!(e.to_string().contains("train"));
        let e: ServeError = GraphError::Shape("rank mismatch".into()).into();
        assert!(e.to_string().contains("rank mismatch"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
