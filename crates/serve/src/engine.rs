//! The streaming inference engine.
//!
//! [`ServeEngine`] turns the ad-hoc per-frame loop of the `realtime_edge`
//! example into a reusable subsystem:
//!
//! * **Sessions** — each client holds its own fusion history and, after
//!   online adaptation, a private fine-tuned model ([`Session`]).
//! * **Micro-batching** — frames submitted between two [`ServeEngine::step`]
//!   calls are featurized on arrival and queued; `step` stacks every pending
//!   frame of base-model sessions into one `[N, C, H, W]` forward pass (the
//!   kernels underneath run on the `fuse-parallel` pool), while adapted
//!   sessions run one stacked pass per private model.
//! * **Determinism with fairness** — pending frames are scheduled
//!   round-robin across sessions (per-session queue rank, oldest first, ties
//!   by session id), so a flooding session cannot starve the others past
//!   `max_batch`; the schedule never depends on arrival order, and every
//!   per-sample kernel in the stack is batch-composition independent, so the
//!   responses of a step are bit-identical for any submission interleaving
//!   and any `FUSE_THREADS`.
//! * **Compiled execution plans** — at construction (and again after every
//!   hot-swap or adaptation) the served model is lowered to a `fuse-graph`
//!   op graph and compiled into an [`ExecPlan`]: fused conv+bias+ReLU
//!   dispatches, pre-planned arena buffers, zero steady-state allocations.
//!   Plans are bit-identical to the layer walk by contract. Any model the
//!   compiler cannot lower falls back to the legacy [`Sequential::forward`]
//!   path — *visibly*: the lowering error is logged once per model version,
//!   kept behind [`ServeEngine::fallback_reason`], and every frame served
//!   through the walk is counted by
//!   [`crate::LatencyRecorder::legacy_fallback_frames`].
//! * **Checkpoint & plan-artifact hot-swap** — [`ServeEngine::hot_swap`]
//!   loads a `fuse-nn` checkpoint (JSON or binary) into the shared base
//!   model without touching adapted sessions; the checkpoint is validated
//!   against the compiled plan's shape signature (or, without a plan, on a
//!   clone) first, so a corrupt checkpoint leaves the engine serving the old
//!   weights. [`ServeEngine::export_plan`] /
//!   [`ServeEngine::hot_swap_plan`] do the same with a serialized `.fplan`
//!   compiled-plan artifact, which carries the schedule alongside the
//!   weights and installs without recompiling.
//!   [`ServeEngine::export_quantized_plan`] writes the int8 weight-quantized
//!   variant (format v2); hot-swapping such an artifact installs the
//!   quantized plan and applies its dequantized weights to the base model,
//!   so the engine serves int8 end to end under the relaxed contract.
//! * **Latency accounting** — fusion, featurization, inference and
//!   submit-to-response totals are recorded per frame against the 100 ms
//!   frame budget ([`crate::LatencyRecorder`]).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use fuse_core::{FineTuneConfig, FineTuneResult};
use fuse_dataset::{EncodedDataset, FeatureMapBuilder, FrameFusion};
use fuse_graph::{ExecPlan, GraphError};
use fuse_nn::{Checkpoint, Compiled, FallbackPolicy, LoweringRequest, NnError, Sequential};
use fuse_radar::PointCloudFrame;
use fuse_tensor::Tensor;

use crate::error::ServeError;
use crate::latency::{LatencyRecorder, Stage, DEFAULT_BUDGET_MS};
use crate::session::{Session, SessionConfig, SloClass};
use crate::Result;

/// Engine-wide serving parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Multi-frame fusion applied to every session's history.
    pub fusion: FrameFusion,
    /// Feature-map geometry (must match the served model's input).
    pub feature_map: FeatureMapBuilder,
    /// Per-frame latency budget in milliseconds (100 ms at 10 Hz).
    pub budget_ms: f64,
    /// Maximum number of pending frames one [`ServeEngine::step`] consumes;
    /// excess frames stay queued for the next step.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fusion: FrameFusion::default(),
            feature_map: FeatureMapBuilder::default(),
            budget_ms: DEFAULT_BUDGET_MS,
            max_batch: 64,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero micro-batch cap or a
    /// non-positive budget.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be nonzero".into()));
        }
        if !self.budget_ms.is_finite() || self.budget_ms <= 0.0 {
            return Err(ServeError::InvalidConfig("budget_ms must be positive".into()));
        }
        Ok(())
    }
}

/// One inference result produced by [`ServeEngine::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Session the frame belonged to.
    pub session_id: u64,
    /// Lifetime index of the frame within its session.
    pub frame_index: u64,
    /// Version of the shared base model at inference time.
    pub model_version: u64,
    /// `true` when the prediction came from the session's private model.
    pub adapted: bool,
    /// Predicted joint coordinates (57 values: 19 joints × x/y/z).
    pub joints: Vec<f32>,
}

/// One forward-pass group: `(session id, frame index)` response keys paired
/// with the feature tensors to stack, in matching order.
type ForwardGroup = (Vec<(u64, u64)>, Vec<Tensor>);

/// A featurized frame waiting for the next micro-batch.
///
/// Pending frames become visible outside the engine when a session is closed
/// with work still queued ([`ServeEngine::close_session`] returns them so a
/// router can account for or re-route the unserved work instead of silently
/// losing it).
#[derive(Debug)]
pub struct PendingFrame {
    session_id: u64,
    frame_index: u64,
    features: Tensor,
    submitted: Instant,
}

impl PendingFrame {
    /// Session the frame belongs to.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Lifetime index of the frame within its session.
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// The featurized `[C, H, W]` input tensor built at submit time.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// When the frame was submitted.
    pub fn submitted(&self) -> Instant {
        self.submitted
    }
}

/// A checkpoint validated against the engine's architecture but not yet
/// applied (see [`ServeEngine::prepare_hot_swap`]).
///
/// Holding a `PreparedSwap` means the checkpoint decoded cleanly and its
/// layout matches the served model; committing it cannot fail. A cluster
/// router uses this split to fan a swap out atomically: *prepare* on every
/// shard, and only if all of them succeed, *commit* on all — so either every
/// shard serves the new weights or none does.
///
/// When the engine holds a compiled plan, validation runs against the plan's
/// [`fuse_graph::ShapeSignature`] and no candidate model is materialised; the
/// legacy clone-and-load path is kept only for non-lowerable models.
#[derive(Debug)]
pub struct PreparedSwap {
    /// Pre-loaded replacement model; `None` when validation went through the
    /// compiled plan's shape signature and commit applies the flat params
    /// directly.
    candidate: Option<Sequential>,
    checkpoint: Checkpoint,
    /// A deserialized `.fplan` artifact ([`ServeEngine::prepare_hot_swap_plan`]);
    /// commit installs it directly instead of recompiling the model.
    plan: Option<ExecPlan>,
}

impl PreparedSwap {
    /// Metadata of the validated checkpoint.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }
}

/// Everything needed to rebuild one session on another engine with
/// bit-identical subsequent outputs ([`ServeEngine::export_session`] /
/// [`ServeEngine::reopen_with_history`]).
///
/// The state is deliberately *model-relative*: an adapted session's private
/// weights travel as an `FCKP` [`Checkpoint`] (the same container the
/// hot-swap fan-out ships), and the receiving engine rebuilds the private
/// model by cloning its own base architecture and applying the checkpoint —
/// so a migration is validated by exactly the checks a hot-swap is.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The session id.
    pub id: u64,
    /// The session's service-level class, when one was configured (the
    /// receiving cluster re-applies its backpressure preset).
    pub slo: Option<SloClass>,
    /// The session's fusion window. Overrides change which frames fuse, so
    /// they must travel with the session for outputs to stay bit-identical.
    pub fusion: FrameFusion,
    /// Lifetime frame count at export time; subsequent frames continue the
    /// index sequence exactly where the source host stopped.
    pub frames_seen: u64,
    /// Lifetime cadence-slot count at export time (frames + missing-frame
    /// ticks).
    pub ticks_seen: u64,
    /// The retained frames of the fusion delay line, oldest first (at most
    /// the fusion window's `M + 1`; ticks excluded — see
    /// [`SessionState::slot_mask`]).
    pub history: Vec<PointCloudFrame>,
    /// One boolean per occupied delay-line slot, oldest first: `true` for a
    /// retained frame (the next entry of [`SessionState::history`]), `false`
    /// for a missing-frame tick. Replaying this mask rebuilds the delay line
    /// bit-exactly, dropout gaps included.
    pub slot_mask: Vec<bool>,
    /// The session's private fine-tuned weights as an `FCKP`-serializable
    /// checkpoint; `None` for a session serving the shared base model.
    pub checkpoint: Option<Checkpoint>,
    /// Frames that were featurized but not yet served at export time, as
    /// `(frame index, feature tensor)` in frame-index order. Carrying the
    /// tensors (rather than refeaturizing) keeps the unserved work
    /// bit-identical to what the source host would have served.
    pub pending: Vec<(u64, Tensor)>,
}

/// Sessionized streaming inference engine (see the module docs).
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    base: Sequential,
    /// Compiled execution plan of the base model; `None` when the model has a
    /// layer without an op-graph lowering (the step falls back to the legacy
    /// layer walk).
    base_plan: Option<ExecPlan>,
    /// Why the base model has no compiled plan, when it has none. The reason
    /// is logged once at compile time (compilation happens exactly once per
    /// model version) and kept here so operators can query it.
    fallback_reason: Option<GraphError>,
    /// Reusable `[max_batch × C·H·W]` input staging buffer for plan runs, so
    /// stacking a micro-batch allocates nothing in steady state.
    staging: Vec<f32>,
    model_version: u64,
    sessions: BTreeMap<u64, Session>,
    pending: Vec<PendingFrame>,
    ready: Vec<ServeResponse>,
    recorder: LatencyRecorder,
}

impl ServeEngine {
    /// Creates an engine serving `model` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the configuration is
    /// invalid.
    pub fn new(model: Sequential, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let recorder = LatencyRecorder::new(config.budget_ms);
        let (base_plan, fallback_reason) = compile_or_log(&model, &config, "base model v0");
        let input_len: usize = config.feature_map.input_dims().iter().product();
        let staging = vec![0.0; config.max_batch * input_len];
        Ok(ServeEngine {
            config,
            base: model,
            base_plan,
            fallback_reason,
            staging,
            model_version: 0,
            sessions: BTreeMap::new(),
            pending: Vec::new(),
            ready: Vec::new(),
            recorder,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared base model.
    pub fn base_model(&self) -> &Sequential {
        &self.base
    }

    /// The compiled execution plan of the base model, when it lowered
    /// cleanly; recompiled on every [`ServeEngine::hot_swap`].
    pub fn plan(&self) -> Option<&ExecPlan> {
        self.base_plan.as_ref()
    }

    /// Why the base model is served through the legacy layer walk, when it
    /// is (`None` while a compiled plan is installed). Frames served through
    /// the fallback are counted by
    /// [`crate::LatencyRecorder::legacy_fallback_frames`].
    pub fn fallback_reason(&self) -> Option<&GraphError> {
        self.fallback_reason.as_ref()
    }

    /// Version counter of the shared base model; each successful
    /// [`ServeEngine::hot_swap`] increments it.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// The latency recorder.
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Mutable access to the latency recorder (e.g. to clear it between
    /// measurement phases).
    pub fn recorder_mut(&mut self) -> &mut LatencyRecorder {
        &mut self.recorder
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of frames queued for the next step.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of frames queued for the next step that belong to `session_id`
    /// — the per-session queue depth backpressure policies act on.
    pub fn pending_for(&self, session_id: u64) -> usize {
        self.pending.iter().filter(|p| p.session_id == session_id).count()
    }

    /// Per-session queue depths of every session with pending work, keyed by
    /// session id (sessions with an empty queue are omitted).
    pub fn queue_depths(&self) -> BTreeMap<u64, usize> {
        let mut depths = BTreeMap::new();
        for p in &self.pending {
            *depths.entry(p.session_id).or_insert(0) += 1;
        }
        depths
    }

    /// Number of responses produced by past steps and not yet taken with
    /// [`ServeEngine::take_responses`].
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Removes and returns the oldest pending frame of `session_id` (the one
    /// with the smallest frame index), or `None` when the session has no
    /// queued work. Returns the dropped frame's index so the caller can
    /// account for it — this is the `DropOldest` backpressure primitive.
    pub fn drop_oldest_pending(&mut self, session_id: u64) -> Option<u64> {
        let (slot, _) = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.session_id == session_id)
            .min_by_key(|(_, p)| p.frame_index)?;
        Some(self.pending.remove(slot).frame_index)
    }

    /// Collapses the pending queue of `session_id` to its newest frame and
    /// returns the frame indices that were merged away (ascending), empty
    /// when the session had at most one frame queued.
    ///
    /// The newest frame already carries the session's fused history (features
    /// are built over the rolling fusion window at submit time), so it is the
    /// natural representative of the coalesced burst — this is the
    /// `MergeFrames` backpressure primitive.
    pub fn merge_pending(&mut self, session_id: u64) -> Vec<u64> {
        let newest =
            self.pending.iter().filter(|p| p.session_id == session_id).map(|p| p.frame_index).max();
        let Some(newest) = newest else { return Vec::new() };
        let mut merged = Vec::new();
        self.pending.retain(|p| {
            if p.session_id == session_id && p.frame_index != newest {
                merged.push(p.frame_index);
                false
            } else {
                true
            }
        });
        merged.sort_unstable();
        merged
    }

    /// Opens a new session from its typed configuration
    /// ([`SessionConfig::new`] builder). Unset options inherit the engine's
    /// [`ServeConfig`]; a feature-map override must keep the engine's input
    /// geometry (the compiled plans are shaped for it).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateSession`] when the id is already open
    /// and [`ServeError::InvalidConfig`] for a feature-map override whose
    /// input dimensions disagree with the engine's.
    pub fn open_session(&mut self, config: SessionConfig) -> Result<&mut Session> {
        if let Some(builder) = config.feature_map_override() {
            let expected = self.config.feature_map.input_dims();
            if builder.input_dims() != expected {
                return Err(ServeError::InvalidConfig(format!(
                    "session {} feature-map override produces {:?} but the engine's \
                     compiled plans expect {:?}",
                    config.id(),
                    builder.input_dims(),
                    expected
                )));
            }
        }
        let config = config.with_defaults(self.config.fusion, &self.config.feature_map);
        match self.sessions.entry(config.id()) {
            std::collections::btree_map::Entry::Occupied(_) => {
                Err(ServeError::DuplicateSession(config.id()))
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                Ok(slot.insert(Session::new(config)))
            }
        }
    }

    /// Closes a session and returns its state together with any frames that
    /// were still queued for it, in frame-index order. Nothing is silently
    /// dropped: a router closing a session mid-stream can re-route or account
    /// for the unserved work.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] when the id is not open.
    pub fn close_session(&mut self, id: u64) -> Result<(Session, Vec<PendingFrame>)> {
        let session = self.sessions.remove(&id).ok_or(ServeError::UnknownSession(id))?;
        let mut unserved = Vec::new();
        self.pending.retain_mut(|p| {
            if p.session_id == id {
                // `retain_mut` only hands out `&mut`, so move the frame out
                // through a cheap placeholder swap.
                unserved.push(PendingFrame {
                    session_id: p.session_id,
                    frame_index: p.frame_index,
                    features: std::mem::replace(&mut p.features, Tensor::scalar(0.0)),
                    submitted: p.submitted,
                });
                false
            } else {
                true
            }
        });
        unserved.sort_by_key(|p| p.frame_index);
        Ok((session, unserved))
    }

    /// A session by id.
    pub fn session(&self, id: u64) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// Iterates over the open sessions in id order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// Submits one point-cloud frame for a session: the frame joins the
    /// session's fusion history, is featurized immediately (so the queued
    /// request is independent of later history mutations), and waits for the
    /// next [`ServeEngine::step`]. Returns the frame's lifetime index within
    /// the session.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an unopened id and
    /// propagates featurization failures.
    pub fn submit(&mut self, session_id: u64, frame: PointCloudFrame) -> Result<u64> {
        // Split borrows: the fused points borrow the session (they live in
        // its incremental op state now) while the recorder and pending queue
        // are separate fields.
        let ServeEngine { sessions, pending, recorder, .. } = &mut *self;
        let session =
            sessions.get_mut(&session_id).ok_or(ServeError::UnknownSession(session_id))?;
        let submitted = Instant::now();
        let frame_index = session.push_frame(frame);
        let points = session.fused_points();
        recorder.record(Stage::Fuse, ms_since(submitted));
        let featurize_start = Instant::now();
        let features = session.feature_map().build(points, None)?;
        recorder.record(Stage::Featurize, ms_since(featurize_start));
        pending.push(PendingFrame { session_id, frame_index, features, submitted });
        Ok(frame_index)
    }

    /// Advances a session's streaming-op state one cadence slot with *no*
    /// frame: the oldest delay-line slot is evicted and nothing replaces it.
    /// A variable-rate or lossy producer calls this for every dropped or
    /// skipped frame so the fused window tracks wall-clock cadence
    /// deterministically — two hosts replaying the same submit/tick pattern
    /// hold bit-identical session state. No response is produced.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an unopened id.
    pub fn tick(&mut self, session_id: u64) -> Result<()> {
        let session =
            self.sessions.get_mut(&session_id).ok_or(ServeError::UnknownSession(session_id))?;
        session.tick_missing();
        Ok(())
    }

    /// Runs one micro-batch: consumes up to `max_batch` pending frames
    /// round-robin across sessions (by each frame's rank within its session's
    /// queue, oldest first, ties broken by session id) — never in arrival
    /// order — stacks the frames of base-model sessions into a single forward
    /// pass and runs one stacked pass per adapted session. The responses,
    /// sorted by `(session id, frame index)`, are appended to the ready
    /// buffer ([`ServeEngine::take_responses`]); the step returns how many
    /// were produced.
    ///
    /// Round-robin keeps the schedule fair under load: when one session
    /// floods the queue past `max_batch`, every other session's oldest frame
    /// still goes out in the current step instead of starving behind the
    /// flood — regardless of how long either session has existed. The rank is
    /// derived from the queue contents, not from arrival order, so the
    /// schedule — and with it every response — stays bit-identical for any
    /// submission interleaving.
    ///
    /// # Errors
    ///
    /// Propagates inference failures; the consumed frames are dropped in that
    /// case (the model state, not the queue, is the source of truth).
    pub fn step(&mut self) -> Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        // Rank every pending frame within its session (0 = that session's
        // oldest pending frame); the (session id, frame index) pre-sort makes
        // the rank a running per-session count.
        self.pending.sort_by_key(|p| (p.session_id, p.frame_index));
        let mut next_rank: BTreeMap<u64, u64> = BTreeMap::new();
        let mut order: Vec<(u64, usize)> = self
            .pending
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let rank = next_rank.entry(p.session_id).or_insert(0);
                let r = *rank;
                *rank += 1;
                (r, i)
            })
            .collect();
        order.sort_by_key(|&(rank, i)| (rank, self.pending[i].session_id));

        let take = self.config.max_batch.min(self.pending.len());
        let mut slots: Vec<Option<PendingFrame>> = self.pending.drain(..).map(Some).collect();
        let mut batch: Vec<PendingFrame> = Vec::with_capacity(take);
        for &(_, i) in order.iter().take(take) {
            batch.push(slots[i].take().expect("each slot is consumed once"));
        }
        self.pending.extend(slots.into_iter().flatten());

        let inference_start = Instant::now();
        let submit_times: Vec<Instant> = batch.iter().map(|p| p.submitted).collect();
        let mut responses: Vec<ServeResponse> = Vec::with_capacity(batch.len());

        // Split the micro-batch into the shared-model group and one group per
        // adapted session (sessions in id order; frames per session arrive in
        // frame-index order because a session's rank grows with its frame
        // index). The feature tensors are moved out of the consumed batch —
        // no copies on the per-frame hot path.
        let mut base_keys: Vec<(u64, u64)> = Vec::new();
        let mut base_features: Vec<Tensor> = Vec::new();
        let mut adapted_groups: BTreeMap<u64, ForwardGroup> = BTreeMap::new();
        for p in batch {
            let adapted =
                self.sessions.get(&p.session_id).is_some_and(|session| session.is_adapted());
            if adapted {
                let (keys, features) = adapted_groups.entry(p.session_id).or_default();
                keys.push((p.session_id, p.frame_index));
                features.push(p.features);
            } else {
                base_keys.push((p.session_id, p.frame_index));
                base_features.push(p.features);
            }
        }

        // Split borrows: the compiled plans, the staging buffer and the
        // models live in different fields, and the plan path needs the plan
        // (mutably, for its arena) and the staging buffer at the same time.
        let model_version = self.model_version;
        let ServeEngine { sessions, base, base_plan, staging, recorder, .. } = &mut *self;

        if !base_features.is_empty() {
            if let Some(plan) = base_plan.as_mut() {
                let cols = plan.output_meta().len();
                let output = run_plan(plan, staging, &base_features)?;
                extend_responses(&mut responses, &base_keys, output, cols, model_version, false);
            } else {
                recorder.record_legacy_fallback(base_keys.len() as u64);
                let stacked = Tensor::stack(&base_features).map_err(fuse_nn::NnError::from)?;
                let output = base.forward(&stacked, false)?;
                let cols = output.dims()[1];
                extend_responses(
                    &mut responses,
                    &base_keys,
                    output.as_slice(),
                    cols,
                    model_version,
                    false,
                );
            }
        }
        for (session_id, (keys, features)) in &adapted_groups {
            let session =
                sessions.get_mut(session_id).ok_or(ServeError::UnknownSession(*session_id))?;
            if let Some(plan) = session.plan_mut() {
                let cols = plan.output_meta().len();
                let output = run_plan(plan, staging, features)?;
                extend_responses(&mut responses, keys, output, cols, model_version, true);
            } else {
                recorder.record_legacy_fallback(keys.len() as u64);
                let model = session.model_mut().ok_or(ServeError::UnknownSession(*session_id))?;
                let stacked = Tensor::stack(features).map_err(fuse_nn::NnError::from)?;
                let output = model.forward(&stacked, false)?;
                let cols = output.dims()[1];
                extend_responses(
                    &mut responses,
                    keys,
                    output.as_slice(),
                    cols,
                    model_version,
                    true,
                );
            }
        }
        self.recorder.record(Stage::Inference, ms_since(inference_start));
        for submitted in submit_times {
            self.recorder.record(Stage::Total, ms_since(submitted));
        }

        responses.sort_by_key(|r| (r.session_id, r.frame_index));
        let produced = responses.len();
        self.ready.append(&mut responses);
        Ok(produced)
    }

    /// Drains the responses accumulated by past [`ServeEngine::step`] calls,
    /// in production order (each step's responses are sorted by
    /// `(session id, frame index)`, so per session the stream is always in
    /// frame order).
    pub fn take_responses(&mut self) -> Vec<ServeResponse> {
        std::mem::take(&mut self.ready)
    }

    /// Fine-tunes a session online on `data` (used as both the adaptation and
    /// per-epoch evaluation set). The first adaptation clones the shared base
    /// model into the session; later calls continue from the session's
    /// private weights.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an unopened id and
    /// propagates fine-tuning errors.
    pub fn adapt_session(
        &mut self,
        id: u64,
        data: &EncodedDataset,
        config: &FineTuneConfig,
    ) -> Result<FineTuneResult> {
        let session = self.sessions.get_mut(&id).ok_or(ServeError::UnknownSession(id))?;
        let result = session.adapt(&self.base, data, config)?;
        // The private weights changed; recompile the session's plan (the
        // parameters are snapshotted into the plan at lowering time).
        let plan = session.model().and_then(|model| {
            compile_or_log(model, &self.config, &format!("session {id} adapted model")).0
        });
        session.set_plan(plan);
        Ok(result)
    }

    /// Validates a `fuse-nn` checkpoint (JSON or binary, auto-detected by
    /// [`Checkpoint::read`]) against this engine's model architecture
    /// *without* applying it, returning a [`PreparedSwap`] whose commit
    /// cannot fail. The engine itself is untouched (`&self`).
    ///
    /// With a compiled plan the checkpoint is checked against the plan's
    /// [`fuse_graph::ShapeSignature`] — parameter count and layer names, the
    /// same checks [`Checkpoint::apply_to`] performs, in the same order — so
    /// a mismatched checkpoint is a typed pre-commit error and no model
    /// clone is ever materialised. Only a non-lowerable model falls back to
    /// validating on a clone.
    ///
    /// A cluster router calls this on every shard first and commits only if
    /// every shard prepared successfully — the all-or-nothing fan-out.
    ///
    /// # Errors
    ///
    /// Propagates read/decode/layout errors as [`ServeError::Nn`].
    pub fn prepare_hot_swap(&self, path: &Path) -> Result<PreparedSwap> {
        self.prepare_hot_swap_checkpoint(Checkpoint::read(path)?)
    }

    /// [`ServeEngine::prepare_hot_swap`] for a checkpoint that is already in
    /// memory — the entry point for checkpoints that arrive as wire payloads
    /// (a cluster router reads the file once and ships the decoded bytes to
    /// every shard, local or remote) rather than as per-shard file reads.
    ///
    /// # Errors
    ///
    /// Propagates layout mismatches as [`ServeError::Nn`].
    pub fn prepare_hot_swap_checkpoint(&self, checkpoint: Checkpoint) -> Result<PreparedSwap> {
        let Some(plan) = &self.base_plan else {
            let mut candidate = self.base.clone();
            checkpoint.apply_to(&mut candidate)?;
            return Ok(PreparedSwap { candidate: Some(candidate), checkpoint, plan: None });
        };
        let signature = plan.signature();
        if checkpoint.params.len() != signature.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: signature.param_len(),
                actual: checkpoint.params.len(),
            }
            .into());
        }
        // A param_len field disagreeing with the vector it describes is its
        // own mismatch; report the lying field, not the vector length.
        if checkpoint.param_len != signature.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: signature.param_len(),
                actual: checkpoint.param_len,
            }
            .into());
        }
        if checkpoint.layer_names.as_slice() != signature.layer_names() {
            return Err(NnError::ArchitectureMismatch {
                expected: signature.layer_names().to_vec(),
                actual: checkpoint.layer_names.clone(),
            }
            .into());
        }
        Ok(PreparedSwap { candidate: None, checkpoint, plan: None })
    }

    /// Validates a `.fplan` plan artifact ([`ServeEngine::export_plan`])
    /// against this engine *without* applying it, returning a
    /// [`PreparedSwap`] whose commit cannot fail. Unlike a checkpoint swap,
    /// committing a plan artifact installs the deserialized [`ExecPlan`]
    /// directly — weights *and* compiled schedule — so the new version never
    /// recompiles and can never regress to the layer-walk fallback.
    ///
    /// The artifact reuses the checkpoint swap's validation ladder: parameter
    /// count first ([`NnError::ParamLengthMismatch`]), then layer names
    /// ([`NnError::ArchitectureMismatch`]) — both against the served model —
    /// then the engine-specific geometry: the plan's input shape must equal
    /// the configured feature map's and its compiled `max_batch` must cover
    /// the engine's micro-batch cap (both [`fuse_graph::GraphError::Shape`]).
    ///
    /// # Errors
    ///
    /// Propagates read/decode errors ([`ServeError::Graph`]) and layout
    /// mismatches ([`ServeError::Nn`] / [`ServeError::Graph`]).
    pub fn prepare_hot_swap_plan(&self, path: &Path) -> Result<PreparedSwap> {
        let plan = ExecPlan::read_plan(path)?;
        let model_name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("fplan");
        self.validate_plan_swap(plan, model_name)
    }

    /// [`ServeEngine::prepare_hot_swap_plan`] for a `.fplan` artifact that is
    /// already in memory — the wire-payload entry point. `model_name` plays
    /// the role the file stem plays on the file path (the artifact itself
    /// carries no name).
    ///
    /// # Errors
    ///
    /// Propagates decode errors ([`ServeError::Graph`]) and layout
    /// mismatches ([`ServeError::Nn`] / [`ServeError::Graph`]).
    pub fn prepare_hot_swap_plan_bytes(
        &self,
        bytes: &[u8],
        model_name: &str,
    ) -> Result<PreparedSwap> {
        self.validate_plan_swap(ExecPlan::from_bytes(bytes)?, model_name)
    }

    /// The shared validation ladder of the two plan-artifact prepare entry
    /// points (see [`ServeEngine::prepare_hot_swap_plan`] for the order).
    fn validate_plan_swap(&self, plan: ExecPlan, model_name: &str) -> Result<PreparedSwap> {
        let signature = plan.signature();
        if signature.param_len() != self.base.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: self.base.param_len(),
                actual: signature.param_len(),
            }
            .into());
        }
        let expected: Vec<String> = self.base.layer_names().iter().map(|s| s.to_string()).collect();
        if signature.layer_names() != expected.as_slice() {
            return Err(NnError::ArchitectureMismatch {
                actual: signature.layer_names().to_vec(),
                expected,
            }
            .into());
        }
        let input_dims = self.config.feature_map.input_dims();
        if plan.input_meta().dims() != input_dims.as_slice() {
            return Err(GraphError::Shape(format!(
                "plan artifact expects input {:?} but the engine featurizes {:?}",
                plan.input_meta().dims(),
                input_dims
            ))
            .into());
        }
        if plan.max_batch() < self.config.max_batch {
            return Err(GraphError::Shape(format!(
                "plan artifact was compiled for max_batch {} but the engine batches up to {}",
                plan.max_batch(),
                self.config.max_batch
            ))
            .into());
        }
        // `dequantized_params` is the full-signature f32 layout for float
        // *and* quantized artifacts (a quantized plan's own `params` table
        // holds only biases); the base model always stores f32, so a
        // quantized swap applies the int8 weights' dequantized values —
        // carrying the bounded rounding — while the installed plan itself
        // executes the int8 tables.
        let checkpoint = Checkpoint {
            model_name: model_name.to_string(),
            param_len: signature.param_len(),
            layer_names: signature.layer_names().to_vec(),
            params: plan.dequantized_params(),
        };
        Ok(PreparedSwap { candidate: None, checkpoint, plan: Some(plan) })
    }

    /// Applies a [`PreparedSwap`] produced by
    /// [`ServeEngine::prepare_hot_swap`] or
    /// [`ServeEngine::prepare_hot_swap_plan`]: the base model is replaced,
    /// the execution plan installed (from the artifact) or recompiled
    /// against the new weights, and [`ServeEngine::model_version`] bumped.
    /// Infallible by construction — every way the swap can fail was checked
    /// at prepare time.
    pub fn commit_hot_swap(&mut self, prepared: PreparedSwap) -> Checkpoint {
        match prepared.candidate {
            Some(candidate) => self.base = candidate,
            None => self
                .base
                .set_flat_params(&prepared.checkpoint.params)
                .expect("prepare_hot_swap validated the parameter count against the plan"),
        }
        self.model_version += 1;
        match prepared.plan {
            // A plan artifact carries its own compiled schedule: install it
            // directly instead of recompiling.
            Some(plan) => {
                self.base_plan = Some(plan);
                self.fallback_reason = None;
            }
            None => {
                let (plan, reason) = compile_or_log(
                    &self.base,
                    &self.config,
                    &format!("base model v{}", self.model_version),
                );
                self.base_plan = plan;
                self.fallback_reason = reason;
            }
        }
        prepared.checkpoint
    }

    /// Loads a `fuse-nn` checkpoint (JSON or binary) into the shared base
    /// model and bumps [`ServeEngine::model_version`]. The checkpoint is
    /// validated first ([`ServeEngine::prepare_hot_swap`]): on any error the
    /// engine keeps serving the old weights. Adapted sessions keep their
    /// private models (call [`Session::reset_to_base`] to rejoin the shared
    /// model).
    ///
    /// # Errors
    ///
    /// Propagates read/decode/layout errors as [`ServeError::Nn`].
    pub fn hot_swap(&mut self, path: &Path) -> Result<Checkpoint> {
        let prepared = self.prepare_hot_swap(path)?;
        Ok(self.commit_hot_swap(prepared))
    }

    /// Loads a `.fplan` plan artifact into the engine: validates it
    /// ([`ServeEngine::prepare_hot_swap_plan`]), applies the parameter
    /// snapshot to the base model, installs the deserialized plan and bumps
    /// [`ServeEngine::model_version`]. On any error the engine keeps serving
    /// the old weights and plan.
    ///
    /// # Errors
    ///
    /// Propagates read/decode/layout errors as [`ServeError::Graph`] /
    /// [`ServeError::Nn`].
    pub fn hot_swap_plan(&mut self, path: &Path) -> Result<Checkpoint> {
        let prepared = self.prepare_hot_swap_plan(path)?;
        Ok(self.commit_hot_swap(prepared))
    }

    /// Saves the shared base model as a `fuse-nn` JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates write/encode errors as [`ServeError::Nn`].
    pub fn save_checkpoint(&self, model_name: &str, path: &Path) -> Result<()> {
        Ok(Checkpoint::capture(&self.base, model_name).write_json(path)?)
    }

    /// Serializes the base model's compiled plan as a versioned `.fplan`
    /// artifact ([`ExecPlan::write_plan`]) — the deployable unit a
    /// `fuse-edge` runtime (or another engine, via
    /// [`ServeEngine::hot_swap_plan`]) loads without any lowering stack.
    ///
    /// # Errors
    ///
    /// Returns [`fuse_graph::GraphError::Unsupported`] when the engine is
    /// serving through the layer-walk fallback (there is no plan to export;
    /// [`ServeEngine::fallback_reason`] says why) and propagates write
    /// failures as [`ServeError::Graph`].
    pub fn export_plan(&self, path: &Path) -> Result<()> {
        let plan = self.base_plan.as_ref().ok_or_else(|| {
            GraphError::Unsupported(
                "the served model has no compiled plan to export (legacy layer-walk fallback)"
                    .into(),
            )
        })?;
        Ok(plan.write_plan(path)?)
    }

    /// Like [`ServeEngine::export_plan`], but derives an int8 weight-quantized
    /// plan ([`ExecPlan::quantize`]) before writing, producing a `.fplan`
    /// **v2** artifact roughly a quarter the size of the float export. The
    /// engine itself keeps serving the float plan; the artifact is the
    /// relaxed-contract deployable — an edge runtime or peer engine that
    /// loads it serves int8 weights through the `fuse-quant` device seam and
    /// is verified against float goldens by tolerance, not byte equality (see
    /// `REPRODUCIBILITY.md`).
    ///
    /// # Errors
    ///
    /// Returns [`fuse_graph::GraphError::Unsupported`] when the engine is
    /// serving through the layer-walk fallback, propagates
    /// [`ExecPlan::quantize`] errors (e.g. non-finite weights) and write
    /// failures as [`ServeError::Graph`].
    pub fn export_quantized_plan(&self, path: &Path) -> Result<()> {
        let plan = self.base_plan.as_ref().ok_or_else(|| {
            GraphError::Unsupported(
                "the served model has no compiled plan to quantize (legacy layer-walk fallback)"
                    .into(),
            )
        })?;
        Ok(plan.quantize()?.write_plan(path)?)
    }

    /// Closes a session and packages everything a peer engine needs to
    /// continue it bit-identically: the fusion history and lifetime frame
    /// counter, the private fine-tuned weights (captured as an `FCKP`
    /// [`Checkpoint`]), and any still-unserved featurized frames. This is
    /// the source side of cross-host session migration; the counterpart is
    /// [`ServeEngine::reopen_with_history`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] when the id is not open.
    pub fn export_session(&mut self, id: u64) -> Result<SessionState> {
        let (session, unserved) = self.close_session(id)?;
        let checkpoint =
            session.model().map(|model| Checkpoint::capture(model, &format!("session-{id}")));
        Ok(SessionState {
            id,
            slo: session.slo_class(),
            fusion: *session.fusion(),
            frames_seen: session.frames_seen(),
            ticks_seen: session.ticks_seen(),
            history: session.history().cloned().collect(),
            slot_mask: session.slot_mask(),
            checkpoint,
            pending: unserved.into_iter().map(|p| (p.frame_index, p.features)).collect(),
        })
    }

    /// Reopens a migrated session from exported state: the fusion history is
    /// replayed (so the next submit fuses over exactly the frames the source
    /// host held), the frame-index sequence continues from `frames_seen`,
    /// an adapted session's private model is rebuilt by applying the `FCKP`
    /// checkpoint to a clone of this engine's base architecture (and its
    /// plan recompiled from those exact weights), and unserved frames rejoin
    /// the pending queue. Every subsequent response is bit-identical to what
    /// the source host would have produced — the parameters travel as exact
    /// `f32` bit patterns and featurized tensors travel as-is.
    ///
    /// Only the latency clock restarts: re-queued frames get a fresh submit
    /// timestamp, so `Stage::Total` samples around a migration measure the
    /// post-migration wait. Outputs are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateSession`] when the id is already open
    /// here, and propagates checkpoint-layout mismatches as
    /// [`ServeError::Nn`] (the state is dropped in that case; the source
    /// still holds nothing — export is destructive — so callers should
    /// validate architectures before migrating).
    pub fn reopen_with_history(&mut self, state: SessionState) -> Result<()> {
        if self.sessions.contains_key(&state.id) {
            return Err(ServeError::DuplicateSession(state.id));
        }
        let SessionState {
            id,
            slo,
            fusion,
            frames_seen,
            ticks_seen,
            history,
            slot_mask,
            checkpoint,
            pending,
        } = state;
        let mut config = SessionConfig::new(id).fusion(fusion);
        if let Some(slo) = slo {
            config = config.slo(slo);
        }
        let mut session =
            Session::new(config.with_defaults(self.config.fusion, &self.config.feature_map));
        // Replay the delay line exactly: `true` slots consume the next
        // retained frame, `false` slots replay the missing-frame ticks — so
        // a session migrated mid-dropout fuses over the same gapped window
        // the source host held.
        let mut frames = history.into_iter();
        for present in slot_mask {
            if present {
                let frame = frames.next().ok_or_else(|| {
                    ServeError::InvalidConfig(format!(
                        "session {id} state is inconsistent: slot mask marks more frames \
                         than the history carries"
                    ))
                })?;
                session.push_frame(frame);
            } else {
                session.tick_missing();
            }
        }
        session.set_counters(frames_seen, ticks_seen);
        if let Some(ckpt) = checkpoint {
            let mut model = self.base.clone();
            ckpt.apply_to(&mut model)?;
            let (plan, _) =
                compile_or_log(&model, &self.config, &format!("session {id} migrated model"));
            session.install_model(model, plan);
        }
        self.sessions.insert(id, session);
        let submitted = Instant::now();
        for (frame_index, features) in pending {
            self.pending.push(PendingFrame { session_id: id, frame_index, features, submitted });
        }
        Ok(())
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

/// Lowers `model` for the engine's feature geometry and compiles it into an
/// [`ExecPlan`] sized for the micro-batch cap, returning either the plan or
/// the reason compilation fell back to the legacy layer walk (a layer
/// without an op-graph lowering, or shapes that do not chain from the
/// configured feature map).
fn compile_plan(
    model: &Sequential,
    config: &ServeConfig,
) -> std::result::Result<ExecPlan, GraphError> {
    match LoweringRequest::new(model, &config.feature_map.input_dims())
        .max_batch(config.max_batch)
        .fallback(FallbackPolicy::LegacyWalk)
        .compile()?
    {
        Compiled::Plan(plan) => Ok(plan),
        Compiled::Fallback(reason) => Err(reason),
    }
}

/// [`compile_plan`], logging the fallback reason. Compilation runs exactly
/// once per model version (construction, hot-swap commit, adaptation), so
/// this logs once per version — not once per served frame.
fn compile_or_log(
    model: &Sequential,
    config: &ServeConfig,
    context: &str,
) -> (Option<ExecPlan>, Option<GraphError>) {
    match compile_plan(model, config) {
        Ok(plan) => (Some(plan), None),
        Err(reason) => {
            eprintln!(
                "fuse-serve: {context} cannot be compiled to a plan, \
                 serving via the legacy layer walk: {reason}"
            );
            (None, Some(reason))
        }
    }
}

/// Stages `features` contiguously into `staging` and runs the compiled plan
/// on the stacked micro-batch, returning the `[batch × out]` output rows.
fn run_plan<'p>(
    plan: &'p mut ExecPlan,
    staging: &mut [f32],
    features: &[Tensor],
) -> Result<&'p [f32]> {
    let sample_len = plan.input_meta().len();
    for (slot, tensor) in staging.chunks_exact_mut(sample_len).zip(features) {
        slot.copy_from_slice(tensor.as_slice());
    }
    Ok(plan.run(&staging[..features.len() * sample_len], features.len())?)
}

fn extend_responses(
    responses: &mut Vec<ServeResponse>,
    keys: &[(u64, u64)],
    output: &[f32],
    cols: usize,
    model_version: u64,
    adapted: bool,
) {
    for (row, &(session_id, frame_index)) in keys.iter().enumerate() {
        responses.push(ServeResponse {
            session_id,
            frame_index,
            model_version,
            adapted,
            joints: output[row * cols..(row + 1) * cols].to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_core::{build_mars_cnn, ModelConfig};
    use fuse_radar::RadarPoint;

    fn tiny_engine() -> ServeEngine {
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        ServeEngine::new(model, ServeConfig::default()).unwrap()
    }

    fn frame(seed: u64, n: usize) -> PointCloudFrame {
        let points = (0..n)
            .map(|i| {
                let t = (seed as f32) * 0.1 + i as f32 * 0.03;
                RadarPoint::new(
                    t.sin() * 0.5,
                    2.0 + t.cos() * 0.2,
                    0.2 + i as f32 * 0.04,
                    0.1,
                    1.0 + t,
                )
            })
            .collect();
        PointCloudFrame::new(0, 0.0, points)
    }

    #[test]
    fn base_plan_compiles_for_the_mars_cnn() {
        let engine = tiny_engine();
        let plan = engine.plan().expect("the MARS CNN must lower to a compiled plan");
        assert_eq!(plan.input_meta().dims(), &[5, 8, 8]);
        assert_eq!(plan.output_meta().dims(), &[57]);
        assert_eq!(plan.max_batch(), engine.config().max_batch);
        assert!(
            plan.step_count() < engine.base_model().len(),
            "fusion must collapse layers into fewer dispatches"
        );
    }

    #[test]
    fn plan_responses_match_the_legacy_forward_bit_for_bit() {
        let mut engine = tiny_engine();
        assert!(engine.plan().is_some());
        engine.open_session(SessionConfig::new(1)).unwrap();
        engine.submit(1, frame(2, 16)).unwrap();
        let features = engine.session(1).unwrap().featurize_latest().unwrap();
        let expected = {
            let mut model = engine.base_model().clone();
            let stacked = Tensor::stack(std::slice::from_ref(&features)).unwrap();
            model.forward(&stacked, false).unwrap()
        };
        engine.step().unwrap();
        let responses = engine.take_responses();
        assert_eq!(responses[0].joints.as_slice(), expected.as_slice());
    }

    #[test]
    fn prepare_hot_swap_rejects_a_mismatched_checkpoint_pre_commit() {
        use fuse_nn::NnError;
        let dir = std::env::temp_dir().join("fuse_serve_plan_swap_reject_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        // Same layer stack, larger widths: the parameter count disagrees with
        // the compiled plan's shape signature.
        let big = build_mars_cnn(&ModelConfig::default(), 3).unwrap();
        Checkpoint::capture(&big, "big").write_json(&path).unwrap();

        let engine = tiny_engine();
        assert!(engine.plan().is_some(), "this test exercises the signature path");
        let before = engine.base_model().flat_params();
        let err = engine.prepare_hot_swap(&path).unwrap_err();
        assert!(
            matches!(err, ServeError::Nn(NnError::ParamLengthMismatch { .. })),
            "expected a typed pre-commit mismatch, got {err}"
        );
        assert_eq!(engine.base_model().flat_params(), before);
        assert_eq!(engine.model_version(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(ServeConfig { max_batch: 0, ..ServeConfig::default() }.validate().is_err());
        assert!(ServeConfig { budget_ms: 0.0, ..ServeConfig::default() }.validate().is_err());
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn session_lifecycle_and_errors() {
        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(1)).unwrap();
        assert!(matches!(
            engine.open_session(SessionConfig::new(1)),
            Err(ServeError::DuplicateSession(1))
        ));
        assert!(matches!(engine.submit(9, frame(0, 4)), Err(ServeError::UnknownSession(9))));
        assert!(matches!(engine.close_session(9), Err(ServeError::UnknownSession(9))));
        engine.submit(1, frame(0, 4)).unwrap();
        engine.submit(1, frame(1, 4)).unwrap();
        assert_eq!(engine.pending_len(), 2);
        assert_eq!(engine.pending_for(1), 2);
        let (closed, unserved) = engine.close_session(1).unwrap();
        assert_eq!(closed.id(), 1);
        assert_eq!(engine.pending_len(), 0, "closing a session removes its queued frames");
        assert_eq!(unserved.len(), 2, "queued frames are returned, not silently dropped");
        assert_eq!(unserved[0].frame_index(), 0);
        assert_eq!(unserved[1].frame_index(), 1);
        assert!(unserved.iter().all(|p| p.session_id() == 1));
        assert_eq!(unserved[0].features().dims(), &[5, 8, 8]);
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn streaming_produces_one_response_per_frame() {
        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(5)).unwrap();
        for i in 0..4 {
            let index = engine.submit(5, frame(i, 16)).unwrap();
            assert_eq!(index, i);
        }
        assert_eq!(engine.step().unwrap(), 4);
        assert_eq!(engine.ready_len(), 4);
        let responses = engine.take_responses();
        assert_eq!(responses.len(), 4);
        assert_eq!(engine.ready_len(), 0);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.session_id, 5);
            assert_eq!(r.frame_index, i as u64);
            assert_eq!(r.model_version, 0);
            assert!(!r.adapted);
            assert_eq!(r.joints.len(), 57);
            assert!(r.joints.iter().all(|v| v.is_finite()));
        }
        assert_eq!(engine.pending_len(), 0);
        assert_eq!(engine.step().unwrap(), 0);
        assert_eq!(engine.recorder().count(Stage::Total), 4);
        assert_eq!(engine.recorder().count(Stage::Inference), 1);
        assert_eq!(engine.recorder().count(Stage::Fuse), 4);
    }

    #[test]
    fn stacked_micro_batch_matches_per_session_forwards() {
        // The batching contract: stacking N sessions' frames into one forward
        // pass produces bit-identical rows to running each frame alone.
        let mut batched = tiny_engine();
        for id in [2u64, 4, 8] {
            batched.open_session(SessionConfig::new(id)).unwrap();
            batched.submit(id, frame(id, 12)).unwrap();
        }
        assert_eq!(batched.step().unwrap(), 3);
        let together = batched.take_responses();
        assert_eq!(together.len(), 3);

        for (i, id) in [2u64, 4, 8].into_iter().enumerate() {
            let mut solo = tiny_engine();
            solo.open_session(SessionConfig::new(id)).unwrap();
            solo.submit(id, frame(id, 12)).unwrap();
            assert_eq!(solo.step().unwrap(), 1);
            let alone = solo.take_responses();
            assert_eq!(together[i].joints, alone[0].joints, "row {i} diverged from solo forward");
        }
    }

    #[test]
    fn flooding_session_cannot_starve_others() {
        // Session 0 floods the queue well past max_batch while session 7
        // submits a single frame; oldest-first scheduling must serve session
        // 7 in the first step instead of deferring it behind the flood.
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let config = ServeConfig { max_batch: 4, ..ServeConfig::default() };
        let mut engine = ServeEngine::new(model, config).unwrap();
        engine.open_session(SessionConfig::new(0)).unwrap();
        engine.open_session(SessionConfig::new(7)).unwrap();
        for i in 0..10 {
            engine.submit(0, frame(i, 8)).unwrap();
        }
        engine.submit(7, frame(99, 8)).unwrap();
        assert_eq!(engine.queue_depths(), [(0u64, 10usize), (7, 1)].into_iter().collect());
        engine.step().unwrap();
        let first = engine.take_responses();
        assert!(
            first.iter().any(|r| r.session_id == 7),
            "session 7's frame 0 must be served in the first micro-batch"
        );
    }

    #[test]
    fn new_flooding_session_cannot_starve_an_old_session() {
        // A long-lived session's frame indices are far ahead of a freshly
        // opened session's; fairness must not depend on session age, only on
        // each frame's position within its own queue.
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let config = ServeConfig { max_batch: 4, ..ServeConfig::default() };
        let mut engine = ServeEngine::new(model, config).unwrap();
        engine.open_session(SessionConfig::new(0)).unwrap();
        for i in 0..20 {
            engine.submit(0, frame(i, 8)).unwrap();
            engine.step().unwrap();
        }
        engine.open_session(SessionConfig::new(7)).unwrap();
        for i in 0..10 {
            engine.submit(7, frame(i, 8)).unwrap();
        }
        let index = engine.submit(0, frame(99, 8)).unwrap();
        assert_eq!(index, 20, "session 0 is genuinely older");
        engine.take_responses();
        engine.step().unwrap();
        let first = engine.take_responses();
        assert!(
            first.iter().any(|r| r.session_id == 0),
            "the old session's frame must be served in the first micro-batch"
        );
    }

    #[test]
    fn max_batch_defers_excess_frames() {
        let model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let config = ServeConfig { max_batch: 2, ..ServeConfig::default() };
        let mut engine = ServeEngine::new(model, config).unwrap();
        engine.open_session(SessionConfig::new(1)).unwrap();
        for i in 0..5 {
            engine.submit(1, frame(i, 8)).unwrap();
        }
        assert_eq!(engine.step().unwrap(), 2);
        assert_eq!(engine.pending_len(), 3);
        assert_eq!(engine.step().unwrap(), 2);
        assert_eq!(engine.step().unwrap(), 1);
        assert_eq!(engine.pending_len(), 0);
        let responses = engine.take_responses();
        assert_eq!(responses.len(), 5, "every step's responses accumulate until taken");
        assert_eq!(responses.iter().map(|r| r.frame_index).collect::<Vec<_>>(), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn adapted_sessions_use_a_private_model() {
        use fuse_dataset::{
            encode_dataset, FeatureMapBuilder, FrameFusion, MarsSynthesizer, SynthesisConfig,
        };
        let data = MarsSynthesizer::new(SynthesisConfig::tiny()).generate().unwrap();
        let encoded =
            encode_dataset(&data, &FrameFusion::default(), &FeatureMapBuilder::default()).unwrap();

        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(1)).unwrap();
        engine.open_session(SessionConfig::new(2)).unwrap();
        let before = engine.base_model().flat_params();
        let config = FineTuneConfig { epochs: 1, batch_size: 16, ..FineTuneConfig::default() };
        assert!(matches!(
            engine.adapt_session(42, &encoded, &config),
            Err(ServeError::UnknownSession(42))
        ));
        let result = engine.adapt_session(2, &encoded, &config).unwrap();
        assert_eq!(result.epochs(), 1);
        assert!(engine.session(2).unwrap().is_adapted());
        assert!(
            engine.session(2).unwrap().plan().is_some(),
            "adaptation must recompile the session's private plan"
        );
        assert!(!engine.session(1).unwrap().is_adapted());
        assert!(engine.session(1).unwrap().plan().is_none());
        assert_eq!(engine.base_model().flat_params(), before, "adaptation must not touch the base");

        // Same frame through both sessions: the adapted one must answer from
        // different (fine-tuned) weights.
        engine.submit(1, frame(3, 16)).unwrap();
        engine.submit(2, frame(3, 16)).unwrap();
        assert_eq!(engine.step().unwrap(), 2);
        let responses = engine.take_responses();
        assert!(!responses[0].adapted);
        assert!(responses[1].adapted);
        assert_ne!(responses[0].joints, responses[1].joints);
    }

    #[test]
    fn hot_swap_replaces_the_base_atomically() {
        let dir = std::env::temp_dir().join("fuse_serve_hot_swap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(1)).unwrap();

        // A differently-seeded model of the same architecture as "new weights".
        let other = build_mars_cnn(&ModelConfig::tiny(), 99).unwrap();
        let donor = ServeEngine::new(other, ServeConfig::default()).unwrap();
        donor.save_checkpoint("donor", &path).unwrap();

        engine.submit(1, frame(0, 16)).unwrap();
        engine.step().unwrap();
        let before = engine.take_responses();
        let checkpoint = engine.hot_swap(&path).unwrap();
        assert_eq!(checkpoint.model_name, "donor");
        assert_eq!(engine.model_version(), 1);
        engine.submit(1, frame(0, 16)).unwrap();
        engine.step().unwrap();
        let after = engine.take_responses();
        assert_ne!(before[0].joints, after[0].joints, "hot-swap must change predictions");
        assert_eq!(after[0].model_version, 1);

        // A corrupt checkpoint must leave the engine serving the old weights.
        std::fs::write(&path, "{\"model_name\":\"x\"").unwrap();
        let params = engine.base_model().flat_params();
        assert!(engine.hot_swap(&path).is_err());
        assert_eq!(engine.model_version(), 1);
        assert_eq!(engine.base_model().flat_params(), params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prepare_hot_swap_is_non_consuming_and_commit_is_infallible() {
        let dir = std::env::temp_dir().join("fuse_serve_prepare_swap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut engine = tiny_engine();
        let donor = ServeEngine::new(
            build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        donor.save_checkpoint("two-phase", &path).unwrap();

        let before = engine.base_model().flat_params();
        let prepared = engine.prepare_hot_swap(&path).unwrap();
        assert_eq!(prepared.checkpoint().model_name, "two-phase");
        assert_eq!(engine.model_version(), 0, "prepare must not bump the version");
        assert_eq!(engine.base_model().flat_params(), before, "prepare must not touch the base");

        let checkpoint = engine.commit_hot_swap(prepared);
        assert_eq!(checkpoint.model_name, "two-phase");
        assert_eq!(engine.model_version(), 1);
        assert_ne!(engine.base_model().flat_params(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exported_plan_hot_swaps_into_another_engine_bit_for_bit() {
        let dir = std::env::temp_dir().join("fuse_serve_plan_swap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("donor.fplan");

        // Donor and receiver share the architecture but not the weights.
        let donor_model = build_mars_cnn(&ModelConfig::tiny(), 99).unwrap();
        let donor = ServeEngine::new(donor_model, ServeConfig::default()).unwrap();
        donor.export_plan(&path).unwrap();

        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(1)).unwrap();
        let checkpoint = engine.hot_swap_plan(&path).unwrap();
        assert_eq!(checkpoint.model_name, "donor", "model name comes from the file stem");
        assert_eq!(engine.model_version(), 1);
        assert_eq!(
            engine.base_model().flat_params(),
            donor.base_model().flat_params(),
            "the artifact's parameter snapshot must land in the base model"
        );
        assert!(engine.plan().is_some(), "the swapped-in plan is installed, not recompiled");

        // Served predictions must be bit-identical to the donor engine's.
        let mut reference = ServeEngine::new(
            build_mars_cnn(&ModelConfig::tiny(), 99).unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        reference.open_session(SessionConfig::new(1)).unwrap();
        engine.submit(1, frame(4, 16)).unwrap();
        reference.submit(1, frame(4, 16)).unwrap();
        engine.step().unwrap();
        reference.step().unwrap();
        assert_eq!(
            engine.take_responses()[0].joints,
            reference.take_responses()[0].joints,
            "plan-artifact serving must match the donor bit for bit"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_export_hot_swaps_and_serves_within_budget() {
        use fuse_quant::compare::{assert_close_ulp, top1, Tolerance};
        let dir = std::env::temp_dir().join("fuse_serve_quant_swap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quantized.fplan");

        let donor = ServeEngine::new(
            build_mars_cnn(&ModelConfig::tiny(), 7).unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        donor.export_quantized_plan(&path).unwrap();

        // The quantized artifact is strictly smaller than the float export:
        // every conv/linear weight shrinks from 4 bytes to 1 (+ one f32
        // scale per output row).
        let float_path = dir.join("float.fplan");
        donor.export_plan(&float_path).unwrap();
        let (qsize, fsize) = (
            std::fs::metadata(&path).unwrap().len(),
            std::fs::metadata(&float_path).unwrap().len(),
        );
        assert!(qsize * 2 < fsize, "quantized artifact {qsize}B vs float {fsize}B");

        let mut engine = tiny_engine();
        let checkpoint = engine.hot_swap_plan(&path).unwrap();
        assert_eq!(checkpoint.model_name, "quantized");
        assert_eq!(engine.model_version(), 1);
        assert!(engine.plan().unwrap().is_quantized(), "the int8 plan itself is installed");
        assert_eq!(
            checkpoint.params.len(),
            engine.base_model().param_len(),
            "the base model receives the full-length dequantized snapshot"
        );

        // A multi-session stream served through the quantized plan must
        // track the float donor's responses within the relaxed-contract
        // budget and agree on every top-1 joint-coordinate index.
        let mut float_engine = ServeEngine::new(
            build_mars_cnn(&ModelConfig::tiny(), 7).unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        let budget = Tolerance { max_ulp: 0, max_abs: 5e-2, max_rel: 2e-2 };
        for id in [1u64, 2, 3] {
            engine.open_session(SessionConfig::new(id)).unwrap();
            float_engine.open_session(SessionConfig::new(id)).unwrap();
        }
        for step in 0..4u64 {
            for id in [1u64, 2, 3] {
                engine.submit(id, frame(id * 10 + step, 12)).unwrap();
                float_engine.submit(id, frame(id * 10 + step, 12)).unwrap();
            }
            engine.step().unwrap();
            float_engine.step().unwrap();
            let (got, want) = (engine.take_responses(), float_engine.take_responses());
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.session_id, g.frame_index), (w.session_id, w.frame_index));
                assert_close_ulp(
                    &w.joints,
                    &g.joints,
                    &budget,
                    &format!("session {} frame {}", g.session_id, g.frame_index),
                );
                assert_eq!(top1(&g.joints), top1(&w.joints), "top-1 agreement must hold");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_quantized_plan_requires_a_compiled_plan() {
        use fuse_nn::layers::Linear;
        let model = Sequential::new(vec![Box::new(Linear::new(10, 4, 1).unwrap())]);
        let engine = ServeEngine::new(model, ServeConfig::default()).unwrap();
        assert!(engine.plan().is_none());
        assert!(matches!(
            engine.export_quantized_plan(Path::new("/nonexistent/out.fplan")).unwrap_err(),
            ServeError::Graph(GraphError::Unsupported(_))
        ));
    }

    #[test]
    fn prepare_hot_swap_plan_rejects_mismatched_artifacts() {
        use fuse_graph::GraphError;
        let dir = std::env::temp_dir().join("fuse_serve_plan_swap_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Wrong architecture: a bigger model's plan against a tiny engine.
        let big_path = dir.join("big.fplan");
        let big = build_mars_cnn(&ModelConfig::default(), 3).unwrap();
        ServeEngine::new(big, ServeConfig::default()).unwrap().export_plan(&big_path).unwrap();
        let engine = tiny_engine();
        assert!(matches!(
            engine.prepare_hot_swap_plan(&big_path).unwrap_err(),
            ServeError::Nn(NnError::ParamLengthMismatch { .. })
        ));

        // Right model, too small a compiled batch for the receiving engine.
        let small_path = dir.join("small-batch.fplan");
        let donor_model = build_mars_cnn(&ModelConfig::tiny(), 7).unwrap();
        let small =
            ServeEngine::new(donor_model, ServeConfig { max_batch: 2, ..ServeConfig::default() })
                .unwrap();
        small.export_plan(&small_path).unwrap();
        assert!(matches!(
            engine.prepare_hot_swap_plan(&small_path).unwrap_err(),
            ServeError::Graph(GraphError::Shape(_))
        ));

        // A corrupt artifact is a typed decode error, and a rejected prepare
        // leaves the engine untouched.
        let bad_path = dir.join("corrupt.fplan");
        std::fs::write(&bad_path, b"not a plan").unwrap();
        assert!(matches!(
            engine.prepare_hot_swap_plan(&bad_path).unwrap_err(),
            ServeError::Graph(_)
        ));
        assert_eq!(engine.model_version(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_lowerable_models_fall_back_visibly_and_are_counted() {
        use fuse_nn::layers::Linear;
        // A model whose first layer disagrees with the feature geometry
        // cannot be lowered; the engine must serve (or fail) through the
        // legacy walk *visibly* instead of silently.
        let model = Sequential::new(vec![Box::new(Linear::new(10, 4, 1).unwrap())]);
        let mut engine = ServeEngine::new(model, ServeConfig::default()).unwrap();
        assert!(engine.plan().is_none());
        assert!(engine.fallback_reason().is_some(), "the lowering error must be kept");
        assert!(matches!(
            engine.export_plan(Path::new("/nonexistent/out.fplan")).unwrap_err(),
            ServeError::Graph(fuse_graph::GraphError::Unsupported(_))
        ));
        assert_eq!(engine.recorder().legacy_fallback_frames(), 0);
        engine.open_session(SessionConfig::new(1)).unwrap();
        engine.submit(1, frame(0, 8)).unwrap();
        // The forward itself fails (the layer rejects the stacked feature
        // map), but the frame was already routed to — and counted against —
        // the fallback path.
        let _ = engine.step();
        assert_eq!(engine.recorder().legacy_fallback_frames(), 1);
    }

    #[test]
    fn drop_oldest_pending_removes_exactly_the_oldest_frame() {
        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(3)).unwrap();
        engine.open_session(SessionConfig::new(9)).unwrap();
        for i in 0..3 {
            engine.submit(3, frame(i, 8)).unwrap();
        }
        engine.submit(9, frame(7, 8)).unwrap();
        assert_eq!(engine.drop_oldest_pending(3), Some(0));
        assert_eq!(engine.drop_oldest_pending(3), Some(1));
        assert_eq!(engine.pending_for(3), 1);
        assert_eq!(engine.pending_for(9), 1, "other sessions' queues are untouched");
        assert_eq!(engine.drop_oldest_pending(42), None);
        engine.step().unwrap();
        let served: Vec<(u64, u64)> =
            engine.take_responses().iter().map(|r| (r.session_id, r.frame_index)).collect();
        assert_eq!(served, [(3, 2), (9, 0)]);
    }

    #[test]
    fn merge_pending_collapses_the_queue_to_its_newest_frame() {
        let mut engine = tiny_engine();
        engine.open_session(SessionConfig::new(5)).unwrap();
        engine.open_session(SessionConfig::new(6)).unwrap();
        for i in 0..4 {
            engine.submit(5, frame(i, 8)).unwrap();
        }
        engine.submit(6, frame(0, 8)).unwrap();
        assert_eq!(engine.merge_pending(5), [0, 1, 2]);
        assert_eq!(engine.merge_pending(5), [] as [u64; 0], "a single frame has nothing to merge");
        assert_eq!(engine.merge_pending(42), [] as [u64; 0]);
        engine.step().unwrap();
        let served: Vec<(u64, u64)> =
            engine.take_responses().iter().map(|r| (r.session_id, r.frame_index)).collect();
        assert_eq!(served, [(5, 3), (6, 0)], "the newest frame represents the merged burst");
    }
}
