//! Per-client serving sessions.
//!
//! A [`Session`] owns everything one streaming client needs: the rolling
//! point-cloud history that multi-frame fusion consumes, the feature-map
//! geometry, and — once the client has been adapted online — a private
//! fine-tuned clone of the served model. Sessions are plain state holders;
//! the [`crate::ServeEngine`] drives them and owns the shared base model.

use std::collections::VecDeque;

use fuse_core::{fine_tune, FineTuneConfig, FineTuneResult};
use fuse_dataset::{EncodedDataset, FeatureMapBuilder, FrameFusion};
use fuse_graph::ExecPlan;
use fuse_nn::Sequential;
use fuse_radar::{PointCloudFrame, RadarPoint};
use fuse_tensor::Tensor;

use crate::error::ServeError;
use crate::Result;

/// One client's streaming state inside a [`crate::ServeEngine`].
#[derive(Debug)]
pub struct Session {
    id: u64,
    fusion: FrameFusion,
    builder: FeatureMapBuilder,
    history: VecDeque<PointCloudFrame>,
    /// Private fine-tuned model; `None` means the session serves from the
    /// engine's shared base model.
    model: Option<Sequential>,
    /// Compiled execution plan of the private model, rebuilt by the engine
    /// after every adaptation; `None` falls back to the layer walk.
    plan: Option<ExecPlan>,
    /// Number of frames ingested over the session's lifetime.
    frames_seen: u64,
}

impl Session {
    /// Creates an empty session with the given fusion and feature geometry.
    pub fn new(id: u64, fusion: FrameFusion, builder: FeatureMapBuilder) -> Self {
        Session {
            id,
            fusion,
            builder,
            history: VecDeque::with_capacity(fusion.half_window() + 1),
            model: None,
            plan: None,
            frames_seen: 0,
        }
    }

    /// Number of frames the streaming history retains: fusing around the
    /// newest frame can only ever reach `M` frames into the past, so `M + 1`
    /// frames are all a session needs (a lagged-center mode fusing future
    /// frames at a latency cost would need the full `2M + 1`).
    fn history_capacity(&self) -> usize {
        self.fusion.half_window() + 1
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The fusion operator applied to this session's history.
    pub fn fusion(&self) -> &FrameFusion {
        &self.fusion
    }

    /// The feature-map geometry of this session.
    pub fn feature_map(&self) -> &FeatureMapBuilder {
        &self.builder
    }

    /// Number of frames currently held in the fusion history (at most
    /// `M + 1`, the reachable streaming window).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Number of frames ingested over the session's lifetime.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// The retained fusion history, oldest frame first. Together with
    /// [`Session::frames_seen`] this is everything a migration needs to
    /// rebuild the session's fusion state bit-exactly on another host
    /// ([`crate::ServeEngine::export_session`]).
    pub fn history(&self) -> impl Iterator<Item = &PointCloudFrame> {
        self.history.iter()
    }

    /// Overwrites the lifetime frame counter; used when a migrated session
    /// is rebuilt from exported state (the replayed history pushes reset the
    /// counter to the history length, not the true lifetime count).
    pub(crate) fn set_frames_seen(&mut self, frames_seen: u64) {
        self.frames_seen = frames_seen;
    }

    /// Installs a private model (and its compiled plan) directly; used when
    /// a migrated session's fine-tuned weights are restored from an `FCKP`
    /// payload rather than produced by [`Session::adapt`].
    pub(crate) fn install_model(&mut self, model: Sequential, plan: Option<ExecPlan>) {
        self.model = Some(model);
        self.plan = plan;
    }

    /// `true` once the session serves from a private fine-tuned model.
    pub fn is_adapted(&self) -> bool {
        self.model.is_some()
    }

    /// The session's private model, when adapted.
    pub fn model(&self) -> Option<&Sequential> {
        self.model.as_ref()
    }

    pub(crate) fn model_mut(&mut self) -> Option<&mut Sequential> {
        self.model.as_mut()
    }

    /// The compiled execution plan of the session's private model, when the
    /// session is adapted and its model lowered cleanly.
    pub fn plan(&self) -> Option<&ExecPlan> {
        self.plan.as_ref()
    }

    pub(crate) fn plan_mut(&mut self) -> Option<&mut ExecPlan> {
        self.plan.as_mut()
    }

    pub(crate) fn set_plan(&mut self, plan: Option<ExecPlan>) {
        self.plan = plan;
    }

    /// Appends a frame to the fusion history, evicting the oldest frame once
    /// the window is full, and returns this frame's lifetime index.
    pub fn push_frame(&mut self, frame: PointCloudFrame) -> u64 {
        if self.history.len() == self.history_capacity() {
            self.history.pop_front();
        }
        self.history.push_back(frame);
        let index = self.frames_seen;
        self.frames_seen += 1;
        index
    }

    /// Fuses the current history around its newest frame (the streaming
    /// boundary case of Eq. 3: only past frames are available).
    pub fn fused_points(&self) -> Vec<RadarPoint> {
        if self.history.is_empty() {
            return Vec::new();
        }
        let refs: Vec<&PointCloudFrame> = self.history.iter().collect();
        self.fusion.fused_points(&refs, refs.len() - 1)
    }

    /// Builds the `[C, H, W]` feature tensor for the newest frame in the
    /// history (fusion followed by feature-map construction).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`]-free pipeline errors only:
    /// feature-map construction failures propagate as
    /// [`ServeError::Dataset`].
    pub fn featurize_latest(&self) -> Result<Tensor> {
        let points = self.fused_points();
        Ok(self.builder.build(&points, None)?)
    }

    /// Fine-tunes this session's private model on `data` (used both as the
    /// adaptation set and as the per-epoch evaluation set), cloning `base`
    /// first if the session has not been adapted yet.
    ///
    /// # Errors
    ///
    /// Propagates configuration and training errors as [`ServeError::Core`].
    pub(crate) fn adapt(
        &mut self,
        base: &Sequential,
        data: &EncodedDataset,
        config: &FineTuneConfig,
    ) -> Result<FineTuneResult> {
        let model = self.model.get_or_insert_with(|| base.clone());
        fine_tune(model, data, data, data, config).map_err(ServeError::from)
    }

    /// Drops the private model (and its compiled plan): the session goes back
    /// to serving from the engine's shared base model (e.g. after a
    /// checkpoint hot-swap).
    pub fn reset_to_base(&mut self) {
        self.model = None;
        self.plan = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: f32, n: usize) -> PointCloudFrame {
        let points =
            (0..n).map(|i| RadarPoint::new(tag, 2.0 + i as f32 * 0.01, 1.0, 0.0, 1.0)).collect();
        PointCloudFrame::new(0, 0.0, points)
    }

    #[test]
    fn history_is_bounded_by_the_fusion_window() {
        let mut s = Session::new(1, FrameFusion::new(1), FeatureMapBuilder::default());
        assert_eq!(s.history_len(), 0);
        for i in 0..10 {
            let index = s.push_frame(frame(i as f32, 4));
            assert_eq!(index, i as u64);
        }
        assert_eq!(s.history_len(), 2, "history must hold at most M+1 frames");
        assert_eq!(s.frames_seen(), 10);
        // The retained frames are the newest two (tags 8, 9): fusing around
        // the newest frame reaches back exactly M = 1 frames, so both are
        // part of the fused set.
        let fused = s.fused_points();
        assert_eq!(fused.len(), 8);
        assert!(fused.iter().all(|p| p.x >= 8.0));
    }

    #[test]
    fn featurize_latest_matches_the_manual_pipeline() {
        let fusion = FrameFusion::new(1);
        let builder = FeatureMapBuilder::default();
        let mut s = Session::new(2, fusion, builder.clone());
        let frames: Vec<PointCloudFrame> = (0..3).map(|i| frame(i as f32, 8)).collect();
        for f in &frames {
            s.push_frame(f.clone());
        }
        let expected_points = fusion.fused_points_owned(&frames, 2);
        let expected = builder.build(&expected_points, None).unwrap();
        let actual = s.featurize_latest().unwrap();
        assert_eq!(actual, expected);
    }

    #[test]
    fn empty_history_featurizes_to_zeros() {
        let s = Session::new(3, FrameFusion::default(), FeatureMapBuilder::default());
        assert!(s.fused_points().is_empty());
        let features = s.featurize_latest().unwrap();
        assert_eq!(features.dims(), &[5, 8, 8]);
        assert!(features.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reset_to_base_drops_the_private_model() {
        let mut s = Session::new(4, FrameFusion::default(), FeatureMapBuilder::default());
        assert!(!s.is_adapted());
        assert!(s.model().is_none());
        s.model = Some(Sequential::new(Vec::new()));
        assert!(s.is_adapted());
        s.reset_to_base();
        assert!(!s.is_adapted());
    }
}
