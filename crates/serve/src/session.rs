//! Per-client serving sessions and the typed session-creation API.
//!
//! A [`Session`] owns everything one streaming client needs: the per-session
//! state of the streaming ops (the fusion delay line and featurization
//! counters — see [`crate::stream`]), an optional service-level class, and —
//! once the client has been adapted online — a private fine-tuned clone of
//! the served model. Sessions are plain state holders; the
//! [`crate::ServeEngine`] drives them and owns the shared base model.
//!
//! Sessions are created from a [`SessionConfig`], the typed builder that
//! replaced the old positional `Session::new(id, fusion, builder)`:
//!
//! ```
//! use fuse_serve::{Session, SessionConfig, SloClass};
//!
//! let session = Session::new(SessionConfig::new(7).slo(SloClass::Clinical));
//! assert_eq!(session.id(), 7);
//! assert_eq!(session.slo_class(), Some(SloClass::Clinical));
//! ```

use fuse_core::{fine_tune, FineTuneConfig, FineTuneResult};
use fuse_dataset::{EncodedDataset, FeatureMapBuilder, FrameFusion};
use fuse_graph::ExecPlan;
use fuse_nn::Sequential;
use fuse_radar::{PointCloudFrame, RadarPoint};
use fuse_tensor::Tensor;

use crate::error::ServeError;
use crate::stream::{FeaturizeOp, FeaturizeState, FusionOp, FusionState, StreamOp};
use crate::Result;

/// Service-level class of a session, mapping to a backpressure preset at the
/// cluster layer (`fuse-cluster`'s `BackpressureSpec`).
///
/// | Class         | Preset intent                                        |
/// |---------------|------------------------------------------------------|
/// | `Clinical`    | every frame matters — block, deep queue              |
/// | `Interactive` | keep up with the user — merge bursts, moderate queue |
/// | `Dashboard`   | freshest pose wins — drop oldest, shallow queue      |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Lossless clinical capture: no frame may be discarded.
    Clinical,
    /// Interactive use: bounded latency, bursts coalesced.
    Interactive,
    /// Monitoring dashboards: bounded latency, oldest frames expendable.
    Dashboard,
}

impl SloClass {
    /// Every class, in a fixed order (useful for iteration in tests and
    /// controllers).
    pub const ALL: [SloClass; 3] = [SloClass::Clinical, SloClass::Interactive, SloClass::Dashboard];

    /// Short lowercase class name used in reports and the
    /// `FUSE_SLO_DEFAULT` environment knob.
    pub fn name(&self) -> &'static str {
        match self {
            SloClass::Clinical => "clinical",
            SloClass::Interactive => "interactive",
            SloClass::Dashboard => "dashboard",
        }
    }

    /// Parses a class name as accepted by `FUSE_SLO_DEFAULT` (trimmed, ASCII
    /// case-insensitive).
    pub fn parse(raw: &str) -> Option<SloClass> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "clinical" => Some(SloClass::Clinical),
            "interactive" => Some(SloClass::Interactive),
            "dashboard" => Some(SloClass::Dashboard),
            _ => None,
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed configuration for opening one session.
///
/// Only the id is mandatory; everything else is optional and falls back to
/// the owning engine's [`crate::ServeConfig`] (or the crate defaults when a
/// session is built standalone). The builder is the *only* session-creation
/// path — `ServeEngine::open_session`, the cluster router and the wire
/// protocol all take a `SessionConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    id: u64,
    slo: Option<SloClass>,
    fusion: Option<FrameFusion>,
    feature_map: Option<FeatureMapBuilder>,
}

impl SessionConfig {
    /// Starts a configuration for session `id` with every option unset.
    pub fn new(id: u64) -> Self {
        SessionConfig { id, slo: None, fusion: None, feature_map: None }
    }

    /// Assigns a service-level class (drives per-session backpressure at the
    /// cluster layer; unset sessions use the cluster default).
    pub fn slo(mut self, slo: SloClass) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Overrides the fusion window for this session (default: the engine's).
    pub fn fusion(mut self, fusion: FrameFusion) -> Self {
        self.fusion = Some(fusion);
        self
    }

    /// Overrides the feature-map geometry for this session. An engine
    /// rejects overrides whose input dimensions disagree with its compiled
    /// plans ([`ServeError::InvalidConfig`]).
    pub fn feature_map(mut self, builder: FeatureMapBuilder) -> Self {
        self.feature_map = Some(builder);
        self
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The configured service-level class, when set.
    pub fn slo_class(&self) -> Option<SloClass> {
        self.slo
    }

    /// The configured fusion override, when set.
    pub fn fusion_override(&self) -> Option<&FrameFusion> {
        self.fusion.as_ref()
    }

    /// The configured feature-map override, when set.
    pub fn feature_map_override(&self) -> Option<&FeatureMapBuilder> {
        self.feature_map.as_ref()
    }

    /// Fills every unset option from an engine's defaults (the engine calls
    /// this before building the session, so a bare `SessionConfig::new(id)`
    /// inherits the engine geometry, not the crate defaults).
    pub(crate) fn with_defaults(
        mut self,
        fusion: FrameFusion,
        builder: &FeatureMapBuilder,
    ) -> Self {
        self.fusion.get_or_insert(fusion);
        if self.feature_map.is_none() {
            self.feature_map = Some(builder.clone());
        }
        self
    }
}

/// One client's streaming state inside a [`crate::ServeEngine`].
#[derive(Debug)]
pub struct Session {
    id: u64,
    slo: Option<SloClass>,
    fusion_op: FusionOp,
    fusion_state: FusionState,
    featurize_op: FeaturizeOp,
    featurize_state: FeaturizeState,
    /// Private fine-tuned model; `None` means the session serves from the
    /// engine's shared base model.
    model: Option<Sequential>,
    /// Compiled execution plan of the private model, rebuilt by the engine
    /// after every adaptation; `None` falls back to the layer walk.
    plan: Option<ExecPlan>,
    /// Number of frames ingested over the session's lifetime (ticks are not
    /// frames — see [`Session::ticks_seen`]).
    frames_seen: u64,
    /// Number of cadence slots over the session's lifetime: frames *plus*
    /// missing-frame ticks.
    ticks_seen: u64,
}

impl Session {
    /// Creates an empty session from its typed configuration. Unset fusion /
    /// feature-map options fall back to the crate defaults; inside an engine,
    /// [`crate::ServeEngine::open_session`] fills them from the engine's
    /// [`crate::ServeConfig`] first.
    pub fn new(config: SessionConfig) -> Self {
        let fusion = config.fusion.unwrap_or_default();
        let builder = config.feature_map.unwrap_or_default();
        let fusion_op = FusionOp::new(fusion);
        let featurize_op = FeaturizeOp::new(builder);
        let fusion_state = fusion_op.init();
        let featurize_state = featurize_op.init();
        Session {
            id: config.id,
            slo: config.slo,
            fusion_op,
            fusion_state,
            featurize_op,
            featurize_state,
            model: None,
            plan: None,
            frames_seen: 0,
            ticks_seen: 0,
        }
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's service-level class, when one was configured.
    pub fn slo_class(&self) -> Option<SloClass> {
        self.slo
    }

    /// The fusion operator applied to this session's stream.
    pub fn fusion(&self) -> &FrameFusion {
        self.fusion_op.fusion()
    }

    /// The feature-map geometry of this session.
    pub fn feature_map(&self) -> &FeatureMapBuilder {
        self.featurize_op.builder()
    }

    /// Number of frames currently held in the fusion delay line (present
    /// slots only; at most `M + 1`, the reachable streaming window).
    pub fn history_len(&self) -> usize {
        self.fusion_state.frame_count()
    }

    /// Number of frames ingested over the session's lifetime.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Number of cadence slots over the session's lifetime: every
    /// [`Session::push_frame`] *and* every [`Session::tick_missing`].
    pub fn ticks_seen(&self) -> u64 {
        self.ticks_seen
    }

    /// The retained frames of the fusion delay line, oldest first (ticks are
    /// skipped). Together with [`Session::slot_mask`],
    /// [`Session::frames_seen`] and [`Session::ticks_seen`] this is
    /// everything a migration needs to rebuild the session's op state
    /// bit-exactly on another host ([`crate::ServeEngine::export_session`]).
    pub fn history(&self) -> impl Iterator<Item = &PointCloudFrame> {
        self.fusion_state.frames()
    }

    /// One boolean per occupied delay-line slot, oldest first: `true` where
    /// a frame is retained, `false` where a missing-frame tick advanced the
    /// line.
    pub fn slot_mask(&self) -> Vec<bool> {
        self.fusion_state.slot_mask()
    }

    /// Overwrites the lifetime counters; used when a migrated session is
    /// rebuilt from exported state (the replayed history pushes reset the
    /// counters to the replay length, not the true lifetime counts).
    pub(crate) fn set_counters(&mut self, frames_seen: u64, ticks_seen: u64) {
        self.frames_seen = frames_seen;
        self.ticks_seen = ticks_seen;
    }

    /// Installs a private model (and its compiled plan) directly; used when
    /// a migrated session's fine-tuned weights are restored from an `FCKP`
    /// payload rather than produced by [`Session::adapt`].
    pub(crate) fn install_model(&mut self, model: Sequential, plan: Option<ExecPlan>) {
        self.model = Some(model);
        self.plan = plan;
    }

    /// `true` once the session serves from a private fine-tuned model.
    pub fn is_adapted(&self) -> bool {
        self.model.is_some()
    }

    /// The session's private model, when adapted.
    pub fn model(&self) -> Option<&Sequential> {
        self.model.as_ref()
    }

    pub(crate) fn model_mut(&mut self) -> Option<&mut Sequential> {
        self.model.as_mut()
    }

    /// The compiled execution plan of the session's private model, when the
    /// session is adapted and its model lowered cleanly.
    pub fn plan(&self) -> Option<&ExecPlan> {
        self.plan.as_ref()
    }

    pub(crate) fn plan_mut(&mut self) -> Option<&mut ExecPlan> {
        self.plan.as_mut()
    }

    pub(crate) fn set_plan(&mut self, plan: Option<ExecPlan>) {
        self.plan = plan;
    }

    /// Advances the fusion delay line with a frame (evicting the oldest slot
    /// once the window is full and updating the fused buffer incrementally)
    /// and returns this frame's lifetime index.
    pub fn push_frame(&mut self, frame: PointCloudFrame) -> u64 {
        self.fusion_op.step(&mut self.fusion_state, frame);
        self.featurize_op.step(&mut self.featurize_state, ());
        self.ticks_seen += 1;
        let index = self.frames_seen;
        self.frames_seen += 1;
        index
    }

    /// Advances the fusion delay line one cadence slot with *no* frame: the
    /// oldest slot leaves the window and nothing replaces it. This is how a
    /// variable-rate or lossy producer tells the session that a frame was
    /// dropped — the fused window shrinks deterministically instead of
    /// serving stale history as if it were current.
    pub fn tick_missing(&mut self) {
        self.fusion_op.tick(&mut self.fusion_state);
        self.featurize_op.tick(&mut self.featurize_state);
        self.ticks_seen += 1;
    }

    /// The fused point set of the current window — the incrementally
    /// maintained delay-line buffer, *not* a re-fuse of the whole history
    /// (that recompute survives as [`Session::fused_points_recomputed`], the
    /// cross-check oracle).
    pub fn fused_points(&self) -> &[RadarPoint] {
        self.fusion_state.fused()
    }

    /// Recomputes the fused point set from scratch over the retained frames
    /// — the pre-streaming implementation, kept as the oracle the
    /// incremental buffer is cross-checked against (debug assertions in
    /// [`Session::featurize_latest`], explicit comparisons in tests).
    pub fn fused_points_recomputed(&self) -> Vec<RadarPoint> {
        self.fusion_op.refuse(&self.fusion_state)
    }

    /// Lifetime counters of the featurization op: feature maps built and
    /// cadence slots skipped.
    pub fn featurize_counters(&self) -> (u64, u64) {
        (self.featurize_state.built(), self.featurize_state.skipped())
    }

    /// Builds the `[C, H, W]` feature tensor for the newest frame in the
    /// window (incremental fusion followed by feature-map construction).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`]-free pipeline errors only:
    /// feature-map construction failures propagate as
    /// [`ServeError::Dataset`].
    pub fn featurize_latest(&self) -> Result<Tensor> {
        let points = self.fused_points();
        debug_assert_eq!(
            points,
            self.fused_points_recomputed().as_slice(),
            "incremental fused buffer drifted from the full re-fuse"
        );
        Ok(self.feature_map().build(points, None)?)
    }

    /// Fine-tunes this session's private model on `data` (used both as the
    /// adaptation set and as the per-epoch evaluation set), cloning `base`
    /// first if the session has not been adapted yet.
    ///
    /// # Errors
    ///
    /// Propagates configuration and training errors as [`ServeError::Core`].
    pub(crate) fn adapt(
        &mut self,
        base: &Sequential,
        data: &EncodedDataset,
        config: &FineTuneConfig,
    ) -> Result<FineTuneResult> {
        let model = self.model.get_or_insert_with(|| base.clone());
        fine_tune(model, data, data, data, config).map_err(ServeError::from)
    }

    /// Drops the private model (and its compiled plan): the session goes back
    /// to serving from the engine's shared base model (e.g. after a
    /// checkpoint hot-swap).
    pub fn reset_to_base(&mut self) {
        self.model = None;
        self.plan = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: f32, n: usize) -> PointCloudFrame {
        let points =
            (0..n).map(|i| RadarPoint::new(tag, 2.0 + i as f32 * 0.01, 1.0, 0.0, 1.0)).collect();
        PointCloudFrame::new(0, 0.0, points)
    }

    #[test]
    fn history_is_bounded_by_the_fusion_window() {
        let mut s = Session::new(SessionConfig::new(1).fusion(FrameFusion::new(1)));
        assert_eq!(s.history_len(), 0);
        for i in 0..10 {
            let index = s.push_frame(frame(i as f32, 4));
            assert_eq!(index, i as u64);
        }
        assert_eq!(s.history_len(), 2, "history must hold at most M+1 frames");
        assert_eq!(s.frames_seen(), 10);
        assert_eq!(s.ticks_seen(), 10);
        // The retained frames are the newest two (tags 8, 9): fusing around
        // the newest frame reaches back exactly M = 1 frames, so both are
        // part of the fused set.
        let fused = s.fused_points();
        assert_eq!(fused.len(), 8);
        assert!(fused.iter().all(|p| p.x >= 8.0));
        assert_eq!(fused, s.fused_points_recomputed().as_slice());
    }

    #[test]
    fn featurize_latest_matches_the_manual_pipeline() {
        let fusion = FrameFusion::new(1);
        let builder = FeatureMapBuilder::default();
        let mut s = Session::new(SessionConfig::new(2).fusion(fusion).feature_map(builder.clone()));
        let frames: Vec<PointCloudFrame> = (0..3).map(|i| frame(i as f32, 8)).collect();
        for f in &frames {
            s.push_frame(f.clone());
        }
        let expected_points = fusion.fused_points_owned(&frames, 2);
        let expected = builder.build(&expected_points, None).unwrap();
        let actual = s.featurize_latest().unwrap();
        assert_eq!(actual, expected);
    }

    #[test]
    fn missing_frame_ticks_shrink_the_window_deterministically() {
        let mut s = Session::new(SessionConfig::new(7).fusion(FrameFusion::new(1)));
        s.push_frame(frame(0.0, 4));
        s.push_frame(frame(1.0, 6));
        assert_eq!(s.fused_points().len(), 10);
        s.tick_missing();
        assert_eq!(s.slot_mask(), [true, false]);
        assert_eq!(s.fused_points().len(), 6, "only the newest frame remains fused");
        assert_eq!(s.fused_points(), s.fused_points_recomputed().as_slice());
        assert_eq!(s.frames_seen(), 2);
        assert_eq!(s.ticks_seen(), 3);
        assert_eq!(s.featurize_counters(), (2, 1));
        // The next frame's index continues the *frame* sequence; ticks do
        // not consume indices.
        assert_eq!(s.push_frame(frame(2.0, 3)), 2);
    }

    #[test]
    fn empty_history_featurizes_to_zeros() {
        let s = Session::new(SessionConfig::new(3));
        assert!(s.fused_points().is_empty());
        let features = s.featurize_latest().unwrap();
        assert_eq!(features.dims(), &[5, 8, 8]);
        assert!(features.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn session_config_builder_sets_every_option() {
        let config = SessionConfig::new(9)
            .slo(SloClass::Dashboard)
            .fusion(FrameFusion::new(2))
            .feature_map(FeatureMapBuilder::new(4, 4));
        assert_eq!(config.id(), 9);
        assert_eq!(config.slo_class(), Some(SloClass::Dashboard));
        let s = Session::new(config);
        assert_eq!(s.slo_class(), Some(SloClass::Dashboard));
        assert_eq!(s.fusion().half_window(), 2);
        assert_eq!(s.feature_map().input_dims(), [5, 4, 4]);
    }

    #[test]
    fn slo_class_names_parse_and_render() {
        for class in SloClass::ALL {
            assert_eq!(SloClass::parse(class.name()), Some(class));
            assert_eq!(SloClass::parse(&class.name().to_uppercase()), Some(class));
        }
        assert_eq!(SloClass::parse("gold-tier"), None);
        assert_eq!(SloClass::Clinical.to_string(), "clinical");
    }

    #[test]
    fn reset_to_base_drops_the_private_model() {
        let mut s = Session::new(SessionConfig::new(4));
        assert!(!s.is_adapted());
        assert!(s.model().is_none());
        s.model = Some(Sequential::new(Vec::new()));
        assert!(s.is_adapted());
        s.reset_to_base();
        assert!(!s.is_adapted());
    }
}
