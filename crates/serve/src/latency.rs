//! Per-stage latency and throughput accounting for the serving engine.
//!
//! The FUSE deployment story is a 10 Hz radar: every frame must clear the
//! pipeline within a 100 ms budget. The recorder collects per-stage wall-clock
//! samples (fusion, feature-map construction, CNN inference, and the
//! submit-to-response total) and summarises them as p50/p95/p99 percentiles
//! against that budget, which is what the `realtime_edge` example and the
//! serving benches report.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Default per-frame latency budget: the 100 ms frame period of a 10 Hz radar.
pub const DEFAULT_BUDGET_MS: f64 = 100.0;

/// Default per-stage sample window. A long-running server records forever;
/// the recorder keeps the most recent window so memory stays bounded and the
/// percentiles describe recent behaviour.
pub const DEFAULT_SAMPLE_WINDOW: usize = 65_536;

/// A pipeline stage whose latency the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Multi-frame point-cloud fusion over the session history.
    Fuse,
    /// Feature-map construction from the fused point set.
    Featurize,
    /// CNN forward pass (one stacked micro-batch per [`Stage::Inference`] sample).
    Inference,
    /// Submit-to-response time of one frame, including micro-batch queueing.
    Total,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Fuse, Stage::Featurize, Stage::Inference, Stage::Total];

    /// Short lowercase stage name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Fuse => "fuse",
            Stage::Featurize => "featurize",
            Stage::Inference => "inference",
            Stage::Total => "total",
        }
    }

    fn index(&self) -> usize {
        match self {
            Stage::Fuse => 0,
            Stage::Featurize => 1,
            Stage::Inference => 2,
            Stage::Total => 3,
        }
    }
}

/// Percentile summary of one stage's latency samples, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Number of recorded samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (50th percentile).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed sample.
    pub max_ms: f64,
}

impl StageStats {
    fn from_samples(samples: &VecDeque<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.iter().copied().collect();
        // `record` rejects non-finite samples, so `total_cmp` is belt and
        // braces: even a sample smuggled in through deserialization cannot
        // silently corrupt the percentile ordering the way
        // `partial_cmp(..).unwrap_or(Equal)` used to.
        sorted.sort_by(f64::total_cmp);
        Some(StageStats {
            count: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: percentile(&sorted, 50.0),
            p95_ms: percentile(&sorted, 95.0),
            p99_ms: percentile(&sorted, 99.0),
            max_ms: *sorted.last().expect("non-empty"),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted sample vector.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Collects per-stage latency samples for one engine, bounded to the most
/// recent [`LatencyRecorder::sample_window`] samples per stage.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    budget_ms: f64,
    sample_window: usize,
    samples: [VecDeque<f64>; 4],
    /// Frames served through the legacy layer walk because the model had no
    /// compiled plan — a lifetime counter, not windowed like the samples: a
    /// fallback is an operational condition worth noticing even when it
    /// happened longer ago than the sample window remembers.
    legacy_fallback_frames: u64,
}

impl LatencyRecorder {
    /// Creates a recorder with the given per-frame budget in milliseconds and
    /// the default sample window.
    pub fn new(budget_ms: f64) -> Self {
        LatencyRecorder {
            budget_ms,
            sample_window: DEFAULT_SAMPLE_WINDOW,
            samples: std::array::from_fn(|_| VecDeque::new()),
            legacy_fallback_frames: 0,
        }
    }

    /// Overrides the per-stage sample window (values below 1 are clamped).
    pub fn with_sample_window(mut self, window: usize) -> Self {
        self.sample_window = window.max(1);
        for s in &mut self.samples {
            while s.len() > self.sample_window {
                s.pop_front();
            }
        }
        self
    }

    /// The configured per-frame budget in milliseconds.
    pub fn budget_ms(&self) -> f64 {
        self.budget_ms
    }

    /// Number of most-recent samples retained per stage.
    pub fn sample_window(&self) -> usize {
        self.sample_window
    }

    /// Records one sample for a stage, evicting the oldest sample once the
    /// window is full.
    ///
    /// Non-finite samples (NaN, ±∞) are rejected: a NaN would poison the
    /// sort order every percentile summary depends on, and a clock that
    /// produced one has nothing truthful to say about latency anyway.
    pub fn record(&mut self, stage: Stage, ms: f64) {
        if !ms.is_finite() {
            return;
        }
        let samples = &mut self.samples[stage.index()];
        if samples.len() == self.sample_window {
            samples.pop_front();
        }
        samples.push_back(ms);
    }

    /// Counts `frames` served through the legacy layer walk instead of a
    /// compiled plan. The engine calls this per micro-batch group so the
    /// fallback — a silent perf cliff before it was metered — shows up in
    /// every report.
    pub fn record_legacy_fallback(&mut self, frames: u64) {
        self.legacy_fallback_frames += frames;
    }

    /// Lifetime count of frames served through the legacy layer walk (zero
    /// while the engine holds a compiled plan for every model it serves).
    pub fn legacy_fallback_frames(&self) -> u64 {
        self.legacy_fallback_frames
    }

    /// Number of samples recorded for a stage.
    pub fn count(&self, stage: Stage) -> usize {
        self.samples[stage.index()].len()
    }

    /// Percentile summary of a stage, or `None` when nothing was recorded.
    pub fn stats(&self, stage: Stage) -> Option<StageStats> {
        StageStats::from_samples(&self.samples[stage.index()])
    }

    /// Fraction of [`Stage::Total`] samples that met the budget, or `None`
    /// when no totals were recorded.
    pub fn within_budget_fraction(&self) -> Option<f64> {
        let totals = &self.samples[Stage::Total.index()];
        if totals.is_empty() {
            return None;
        }
        let ok = totals.iter().filter(|&&ms| ms <= self.budget_ms).count();
        Some(ok as f64 / totals.len() as f64)
    }

    /// Raw samples recorded for a stage, oldest first. Used by the wire
    /// codec to ship a drained snapshot across hosts byte-exactly.
    pub fn stage_samples(&self, stage: Stage) -> impl Iterator<Item = f64> + '_ {
        self.samples[stage.index()].iter().copied()
    }

    /// Takes every sample and the legacy-fallback delta accumulated since
    /// the previous drain, leaving this recorder empty (budget and window
    /// are kept). This is the shard side of cluster aggregation: a worker
    /// drains its engine recorder per metrics snapshot and the router
    /// [`absorb`](LatencyRecorder::absorb)s the drained deltas into one
    /// long-lived aggregate, so polling metrics twice can never re-count a
    /// sample or re-add the fallback counter.
    pub fn drain(&mut self) -> LatencyRecorder {
        LatencyRecorder {
            budget_ms: self.budget_ms,
            sample_window: self.sample_window,
            samples: std::mem::replace(&mut self.samples, std::array::from_fn(|_| VecDeque::new())),
            legacy_fallback_frames: std::mem::take(&mut self.legacy_fallback_frames),
        }
    }

    /// Appends every sample held by `other`, stage by stage in pipeline
    /// order, bounded by this recorder's own window, and adds `other`'s
    /// legacy-fallback count. This is the cluster aggregation primitive: a
    /// router absorbs each shard's *drained* snapshot (in shard order, so
    /// the merged view is deterministic for a given set of shard snapshots)
    /// to report fleet-wide percentiles against one budget. Feed it the
    /// output of [`drain`](LatencyRecorder::drain), not a live recorder —
    /// absorbing the same live recorder twice double-counts everything.
    pub fn absorb(&mut self, other: &LatencyRecorder) {
        for stage in Stage::ALL {
            for i in 0..other.samples[stage.index()].len() {
                self.record(stage, other.samples[stage.index()][i]);
            }
        }
        self.legacy_fallback_frames += other.legacy_fallback_frames;
    }

    /// Discards all recorded samples and counters, keeping the budget.
    pub fn clear(&mut self) {
        for s in &mut self.samples {
            s.clear();
        }
        self.legacy_fallback_frames = 0;
    }

    /// Renders the full per-stage summary.
    pub fn report(&self) -> LatencyReport {
        LatencyReport {
            budget_ms: self.budget_ms,
            stages: Stage::ALL.iter().filter_map(|&s| Some((s, self.stats(s)?))).collect(),
            within_budget_fraction: self.within_budget_fraction(),
            legacy_fallback_frames: self.legacy_fallback_frames,
        }
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new(DEFAULT_BUDGET_MS)
    }
}

/// A rendered latency summary: one row per recorded stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Per-frame budget the totals are judged against.
    pub budget_ms: f64,
    /// Summaries for each stage that recorded at least one sample.
    pub stages: Vec<(Stage, StageStats)>,
    /// Fraction of frames that met the budget (when totals were recorded).
    pub within_budget_fraction: Option<f64>,
    /// Frames served through the legacy layer walk instead of a compiled
    /// plan (see [`LatencyRecorder::record_legacy_fallback`]).
    pub legacy_fallback_frames: u64,
}

impl std::fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<10} {:>7} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "p50", "p95", "p99", "max"
        )?;
        for (stage, stats) in &self.stages {
            writeln!(
                f,
                "{:<10} {:>7} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms",
                stage.name(),
                stats.count,
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms,
                stats.max_ms
            )?;
        }
        match self.within_budget_fraction {
            Some(frac) => {
                write!(f, "within {:.0} ms budget: {:.1}% of frames", self.budget_ms, 100.0 * frac)
            }
            None => write!(f, "budget: {:.0} ms (no end-to-end samples recorded)", self.budget_ms),
        }?;
        if self.legacy_fallback_frames > 0 {
            write!(
                f,
                "\nlegacy layer-walk fallback served {} frame(s) (no compiled plan)",
                self.legacy_fallback_frames
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn stats_summarise_samples() {
        let mut rec = LatencyRecorder::new(100.0);
        assert!(rec.stats(Stage::Fuse).is_none());
        for ms in [1.0, 2.0, 3.0, 4.0] {
            rec.record(Stage::Fuse, ms);
        }
        let stats = rec.stats(Stage::Fuse).unwrap();
        assert_eq!(stats.count, 4);
        assert!((stats.mean_ms - 2.5).abs() < 1e-12);
        assert_eq!(stats.p50_ms, 2.0);
        assert_eq!(stats.max_ms, 4.0);
    }

    #[test]
    fn budget_fraction_counts_totals_only() {
        let mut rec = LatencyRecorder::new(10.0);
        assert!(rec.within_budget_fraction().is_none());
        rec.record(Stage::Total, 5.0);
        rec.record(Stage::Total, 9.9);
        rec.record(Stage::Total, 50.0);
        rec.record(Stage::Inference, 500.0); // not a total; must not count
        let frac = rec.within_budget_fraction().unwrap();
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_every_recorded_stage() {
        let mut rec = LatencyRecorder::default();
        assert_eq!(rec.budget_ms(), DEFAULT_BUDGET_MS);
        rec.record(Stage::Fuse, 0.1);
        rec.record(Stage::Inference, 2.0);
        rec.record(Stage::Total, 2.5);
        let report = rec.report();
        assert_eq!(report.stages.len(), 3);
        let text = report.to_string();
        assert!(text.contains("fuse"));
        assert!(text.contains("inference"));
        assert!(text.contains("100.0%"));
        rec.clear();
        assert_eq!(rec.count(Stage::Fuse), 0);
    }

    #[test]
    fn legacy_fallback_counter_flows_through_absorb_clear_and_report() {
        let mut rec = LatencyRecorder::new(100.0);
        assert_eq!(rec.legacy_fallback_frames(), 0);
        rec.record_legacy_fallback(3);
        rec.record_legacy_fallback(2);
        assert_eq!(rec.legacy_fallback_frames(), 5);

        let mut agg = LatencyRecorder::new(100.0);
        agg.record_legacy_fallback(1);
        agg.absorb(&rec);
        assert_eq!(agg.legacy_fallback_frames(), 6, "absorb must sum shard counters");

        let report = agg.report();
        assert_eq!(report.legacy_fallback_frames, 6);
        assert!(report.to_string().contains("legacy layer-walk fallback served 6 frame(s)"));
        assert!(
            !LatencyRecorder::new(100.0).report().to_string().contains("fallback"),
            "a plan-served engine's report must not mention the fallback"
        );

        agg.clear();
        assert_eq!(agg.legacy_fallback_frames(), 0);
    }

    #[test]
    fn non_finite_samples_are_rejected_at_record_time() {
        let mut rec = LatencyRecorder::new(100.0);
        rec.record(Stage::Total, 1.0);
        rec.record(Stage::Total, f64::NAN);
        rec.record(Stage::Total, f64::INFINITY);
        rec.record(Stage::Total, f64::NEG_INFINITY);
        rec.record(Stage::Total, 3.0);
        let stats = rec.stats(Stage::Total).unwrap();
        assert_eq!(stats.count, 2, "non-finite samples must not be stored");
        assert_eq!(stats.p50_ms, 1.0);
        assert_eq!(stats.p99_ms, 3.0);
        assert_eq!(stats.max_ms, 3.0);
        assert!(stats.mean_ms.is_finite());
        assert_eq!(rec.within_budget_fraction(), Some(1.0));
    }

    #[test]
    fn draining_twice_cannot_double_count_samples_or_fallbacks() {
        let mut shard = LatencyRecorder::new(100.0).with_sample_window(8);
        shard.record(Stage::Total, 4.0);
        shard.record(Stage::Total, 6.0);
        shard.record_legacy_fallback(5);

        let mut agg = LatencyRecorder::new(100.0);
        agg.absorb(&shard.drain());
        // Nothing new happened on the shard: a second metrics poll must
        // contribute zero samples and zero fallback frames.
        agg.absorb(&shard.drain());
        let stats = agg.stats(Stage::Total).unwrap();
        assert_eq!(stats.count, 2, "a re-drained shard must not re-add its samples");
        assert_eq!(agg.legacy_fallback_frames(), 5, "fallback counter must be a drained delta");

        // The shard keeps recording after a drain; only the delta travels.
        shard.record(Stage::Total, 8.0);
        shard.record_legacy_fallback(1);
        let snapshot = shard.drain();
        assert_eq!(snapshot.sample_window(), 8, "drain preserves the window");
        assert_eq!(snapshot.budget_ms(), 100.0, "drain preserves the budget");
        agg.absorb(&snapshot);
        assert_eq!(agg.stats(Stage::Total).unwrap().count, 3);
        assert_eq!(agg.legacy_fallback_frames(), 6);
        assert_eq!(shard.count(Stage::Total), 0);
        assert_eq!(shard.legacy_fallback_frames(), 0);
    }

    #[test]
    fn sample_window_keeps_the_most_recent_samples() {
        let mut rec = LatencyRecorder::new(100.0).with_sample_window(3);
        assert_eq!(rec.sample_window(), 3);
        for ms in [10.0, 20.0, 30.0, 40.0, 50.0] {
            rec.record(Stage::Total, ms);
        }
        let stats = rec.stats(Stage::Total).unwrap();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.p50_ms, 40.0, "oldest samples must be evicted");
        assert_eq!(stats.max_ms, 50.0);
    }
}
