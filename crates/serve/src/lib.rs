//! # fuse-serve
//!
//! Sessionized streaming inference for the FUSE pipeline: the subsystem that
//! turns the single-subject `realtime_edge` loop into a multi-client serving
//! engine with per-session adaptation, micro-batching, checkpoint hot-swap
//! and latency accounting against the 10 Hz radar's 100 ms frame budget.
//!
//! * [`stream`] — stateful streaming operators: fusion as an incremental
//!   delay line and featurization as an explicit per-session op state, with
//!   deterministic missing-frame ticks for variable cadence and dropout;
//! * [`Session`] — one client's streaming-op state plus, once adapted
//!   online, a private fine-tuned clone of the served model; created from
//!   the typed [`SessionConfig`] builder, optionally carrying a service
//!   class ([`SloClass`]) the cluster layer maps to backpressure;
//! * [`ServeEngine`] — owns the shared base model and the open sessions,
//!   micro-batches pending frames across sessions into stacked forward
//!   passes, and hot-swaps `fuse-nn` checkpoints without downtime;
//! * [`LatencyRecorder`] — per-stage p50/p95/p99 latency summaries.
//!
//! Responses are **deterministic by construction**: pending frames are
//! scheduled round-robin across sessions by their per-session queue rank
//! (never by arrival interleaving), and every kernel underneath is
//! bit-reproducible for any `FUSE_THREADS` × `FUSE_BACKEND` combination
//! (see `fuse-parallel`, `fuse-backend` and `REPRODUCIBILITY.md`), so a
//! serving trace is bit-identical across thread counts, kernel backends and
//! submission orders. Dropout streams keep the same property: a missing
//! frame is an explicit [`ServeEngine::tick`] that advances the session's
//! op state deterministically.
//!
//! ## Deployment knobs
//!
//! An engine operator tunes the compute substrate entirely through
//! environment knobs (all parsed through the typed helper — garbage is a
//! named error or fail-fast panic, never a silent fallback). The knobs are
//! declared as typed `fuse_parallel::env::KnobDef` registries next to
//! their parsers; the consolidated reference table lives in the workspace
//! `README.md` and is generated from those registries, so it cannot drift.
//!
//! [`BackendChoice`] and [`FUSE_BACKEND_ENV`] are re-exported here so
//! serving embedders can pin or report the backend without depending on
//! `fuse-backend` directly.
//!
//! ```no_run
//! use fuse_serve::prelude::*;
//!
//! let model = build_mars_cnn(&ModelConfig::default(), 11)?;
//! let mut engine = ServeEngine::new(model, ServeConfig::default())?;
//! engine.open_session(SessionConfig::new(0).slo(SloClass::Clinical))?;
//! // engine.submit(0, frame)?; ... and for every dropped frame:
//! engine.tick(0)?;
//! // then, each frame period:
//! engine.step()?;
//! for response in engine.take_responses() {
//!     assert_eq!(response.joints.len(), 57);
//! }
//! println!("{}", engine.recorder().report());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod latency;
pub mod session;
pub mod stream;

pub use engine::{
    PendingFrame, PreparedSwap, ServeConfig, ServeEngine, ServeResponse, SessionState,
};
pub use error::ServeError;
pub use fuse_backend::{BackendChoice, FUSE_BACKEND_ENV};
pub use latency::{
    LatencyRecorder, LatencyReport, Stage, StageStats, DEFAULT_BUDGET_MS, DEFAULT_SAMPLE_WINDOW,
};
pub use session::{Session, SessionConfig, SloClass};
pub use stream::{FeaturizeOp, FeaturizeState, FusionOp, FusionState, StreamOp};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Commonly used types for serving call sites, re-exported alongside the
/// `fuse-core` pieces an engine embedder needs (model construction and online
/// fine-tuning).
pub mod prelude {
    pub use crate::engine::{
        PendingFrame, PreparedSwap, ServeConfig, ServeEngine, ServeResponse, SessionState,
    };
    pub use crate::error::ServeError;
    pub use crate::latency::{LatencyRecorder, LatencyReport, Stage, StageStats};
    pub use crate::session::{Session, SessionConfig, SloClass};
    pub use crate::stream::{FeaturizeOp, FusionOp, StreamOp};
    pub use fuse_core::{build_mars_cnn, FineTuneConfig, FineTuneScope, ModelConfig};
    pub use fuse_dataset::{FeatureMapBuilder, FrameFusion};
}
