//! x86_64 `std::arch` kernels (AVX2 and SSE lane widths, plus the opt-in
//! AVX2+FMA relaxed level).
//!
//! The **exact-contract** levels (`avx2`, `sse`) vectorise **across
//! independent output elements** and perform each lane's arithmetic as a
//! separate IEEE-754 multiply followed by a separate add (`mul_ps` +
//! `add_ps`, never FMA — a fused multiply-add skips the intermediate
//! rounding and would change bits). Because each output element still sees
//! exactly the scalar reference's operation sequence, results are
//! bit-identical to [`crate::scalar`] by construction; see
//! `REPRODUCIBILITY.md`.
//!
//! The `avx2fma` level is stamped from the same macro with the multiply-add
//! helper swapped for `_mm256_fmadd_ps`: one fused rounding per term instead
//! of two. That **breaks bit-identity on purpose** — it is only reachable
//! through the relaxed contract mode ([`crate::ContractMode::Relaxed`]) and
//! is compared against goldens by tolerance, never by bits.
//!
//! The submodules are stamped from one macro and differ only in lane width,
//! intrinsic set and multiply-add composition: `avx2` (8 lanes, runtime AVX2
//! detection), `sse` (4 lanes, part of the x86_64 baseline ABI) and
//! `avx2fma` (8 lanes, runtime AVX2+FMA detection, fused).

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::{
    __m128, __m256, _mm256_add_ps, _mm256_fmadd_ps, _mm256_mul_ps, _mm_add_ps, _mm_mul_ps,
};

/// `a*b + c` with two separate IEEE-754 roundings — the exact-contract
/// composition (256-bit lanes).
///
/// # Safety
///
/// Caller must ensure AVX is available (guaranteed inside the `avx2`
/// module's `#[target_feature]` kernels).
#[inline(always)]
unsafe fn mul_then_add_256(a: __m256, b: __m256, c: __m256) -> __m256 {
    _mm256_add_ps(_mm256_mul_ps(a, b), c)
}

/// `a*b + c` with two separate roundings (128-bit lanes).
///
/// # Safety
///
/// Caller must ensure SSE is available (baseline on x86_64).
#[inline(always)]
unsafe fn mul_then_add_128(a: __m128, b: __m128, c: __m128) -> __m128 {
    _mm_add_ps(_mm_mul_ps(a, b), c)
}

/// `a*b + c` fused into a single rounding — the relaxed-contract
/// composition. Bit-*different* from [`mul_then_add_256`] whenever the
/// intermediate product is inexact.
///
/// # Safety
///
/// Caller must ensure FMA is available (guaranteed inside the `avx2fma`
/// module's `#[target_feature]` kernels).
#[inline(always)]
unsafe fn fused_mul_add_256(a: __m256, b: __m256, c: __m256) -> __m256 {
    _mm256_fmadd_ps(a, b, c)
}

macro_rules! simd_level {
    ($name:ident, $feature:literal, $lanes:literal,
     $load:ident, $store:ident, $set1:ident, $mul:ident, $add:ident, $muladd:ident) => {
        pub(crate) mod $name {
            use std::arch::x86_64::*;

            /// `y += alpha * x`.
            ///
            /// # Safety
            ///
            /// The caller must ensure the CPU supports the module's target
            /// feature (checked once at [`crate::SimdBackend`] construction).
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
                debug_assert!(x.len() >= y.len(), "axpy operand shorter than output");
                let n = y.len();
                let va = $set1(alpha);
                let mut j = 0;
                while j + $lanes <= n {
                    let vx = $load(x.as_ptr().add(j));
                    let vy = $load(y.as_ptr().add(j));
                    $store(y.as_mut_ptr().add(j), super::$muladd(va, vx, vy));
                    j += $lanes;
                }
                while j < n {
                    y[j] += alpha * x[j];
                    j += 1;
                }
            }

            /// `y += x`.
            ///
            /// # Safety
            ///
            /// Caller must ensure the module's target feature is available.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn add_assign(y: &mut [f32], x: &[f32]) {
                debug_assert!(x.len() >= y.len(), "add_assign operand shorter than output");
                let n = y.len();
                let mut j = 0;
                while j + $lanes <= n {
                    let vx = $load(x.as_ptr().add(j));
                    let vy = $load(y.as_ptr().add(j));
                    $store(y.as_mut_ptr().add(j), $add(vy, vx));
                    j += $lanes;
                }
                while j < n {
                    y[j] += x[j];
                    j += 1;
                }
            }

            /// `data *= s`.
            ///
            /// # Safety
            ///
            /// Caller must ensure the module's target feature is available.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn scale_assign(data: &mut [f32], s: f32) {
                let n = data.len();
                let vs = $set1(s);
                let mut j = 0;
                while j + $lanes <= n {
                    let v = $load(data.as_ptr().add(j));
                    $store(data.as_mut_ptr().add(j), $mul(v, vs));
                    j += $lanes;
                }
                while j < n {
                    data[j] *= s;
                    j += 1;
                }
            }

            /// `data += s` (bias broadcast).
            ///
            /// # Safety
            ///
            /// Caller must ensure the module's target feature is available.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn add_scalar_assign(data: &mut [f32], s: f32) {
                let n = data.len();
                let vs = $set1(s);
                let mut j = 0;
                while j + $lanes <= n {
                    let v = $load(data.as_ptr().add(j));
                    $store(data.as_mut_ptr().add(j), $add(v, vs));
                    j += $lanes;
                }
                while j < n {
                    data[j] += s;
                    j += 1;
                }
            }

            /// Per-row GEMM kernel: `out_row (+)= a_row · b`. The `p` loop and
            /// the zero-skip mirror the scalar reference exactly; only the
            /// independent `j` lanes are processed `$lanes` at a time.
            ///
            /// # Safety
            ///
            /// Caller must ensure the module's target feature is available.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn gemm_row(
                a_row: &[f32],
                b: &[f32],
                out_row: &mut [f32],
                accumulate: bool,
            ) {
                let n = out_row.len();
                if !accumulate {
                    out_row.fill(0.0);
                }
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    axpy(a_ip, &b[p * n..(p + 1) * n], out_row);
                }
            }

            /// Register-blocked block kernel of `out (+)= a·b`: four output
            /// rows per pass, each keeping one vector accumulator per
            /// `$lanes`-wide column tile. Reuses every `b` row load across
            /// the four rows (the axpy-per-row kernel reloads `b` for each
            /// output row, which leaves it cache-bandwidth-bound) and keeps
            /// partial sums in registers instead of round-tripping
            /// `out_row` through memory once per `p`.
            ///
            /// Bit-identity: each output element still accumulates its
            /// `a[i][p] * b[p][j]` terms in `p`-ascending order with the
            /// reference's exact zero-skip (`a[i][p] == 0.0` contributes
            /// nothing, applied per row), so the value stream per element is
            /// unchanged — only *when* independent elements are computed
            /// moves.
            ///
            /// # Safety
            ///
            /// Caller must ensure the module's target feature is available.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn gemm_rows(
                a_rows: &[f32],
                b: &[f32],
                out_rows: &mut [f32],
                k: usize,
                n: usize,
                accumulate: bool,
            ) {
                const R: usize = 4;
                let rows = out_rows.len() / n;
                debug_assert!(a_rows.len() >= rows * k, "lhs block shorter than output rows");
                debug_assert!(b.len() >= k * n, "rhs shorter than [k x n]");
                let mut r = 0;
                while r + R <= rows {
                    let mut j = 0;
                    // Wide tiles first: 2 vectors per row amortise the
                    // per-(row, p) scalar broadcast and zero-test over twice
                    // the lanes.
                    while j + 2 * $lanes <= n {
                        // Freshly derived per tile so the raw accesses never
                        // interleave with the slice accesses below.
                        let out = out_rows.as_mut_ptr();
                        let mut acc = [[$set1(0.0); 2]; R];
                        if accumulate {
                            for (i, a) in acc.iter_mut().enumerate() {
                                a[0] = $load(out.add((r + i) * n + j));
                                a[1] = $load(out.add((r + i) * n + j + $lanes));
                            }
                        }
                        for p in 0..k {
                            let vb0 = $load(b.as_ptr().add(p * n + j));
                            let vb1 = $load(b.as_ptr().add(p * n + j + $lanes));
                            for (i, a) in acc.iter_mut().enumerate() {
                                let a_ip = a_rows[(r + i) * k + p];
                                if a_ip != 0.0 {
                                    let va = $set1(a_ip);
                                    a[0] = super::$muladd(va, vb0, a[0]);
                                    a[1] = super::$muladd(va, vb1, a[1]);
                                }
                            }
                        }
                        for (i, a) in acc.iter().enumerate() {
                            $store(out.add((r + i) * n + j), a[0]);
                            $store(out.add((r + i) * n + j + $lanes), a[1]);
                        }
                        j += 2 * $lanes;
                    }
                    while j + $lanes <= n {
                        let out = out_rows.as_mut_ptr();
                        let mut acc = [$set1(0.0); R];
                        if accumulate {
                            for (i, a) in acc.iter_mut().enumerate() {
                                *a = $load(out.add((r + i) * n + j));
                            }
                        }
                        for p in 0..k {
                            let vb = $load(b.as_ptr().add(p * n + j));
                            for (i, a) in acc.iter_mut().enumerate() {
                                let a_ip = a_rows[(r + i) * k + p];
                                if a_ip != 0.0 {
                                    *a = super::$muladd($set1(a_ip), vb, *a);
                                }
                            }
                        }
                        for (i, a) in acc.iter().enumerate() {
                            $store(out.add((r + i) * n + j), *a);
                        }
                        j += $lanes;
                    }
                    // Remainder columns of this row block: the scalar
                    // reference per element (same order, same zero-skip).
                    for i in 0..R {
                        for jj in j..n {
                            let mut o = if accumulate { out_rows[(r + i) * n + jj] } else { 0.0 };
                            for p in 0..k {
                                let a_ip = a_rows[(r + i) * k + p];
                                if a_ip != 0.0 {
                                    o += a_ip * b[p * n + jj];
                                }
                            }
                            out_rows[(r + i) * n + jj] = o;
                        }
                    }
                    r += R;
                }
                // Remaining rows: the vectorised single-row kernel.
                while r < rows {
                    gemm_row(
                        &a_rows[r * k..(r + 1) * k],
                        b,
                        &mut out_rows[r * n..(r + 1) * n],
                        accumulate,
                    );
                    r += 1;
                }
            }

            /// Band kernel of `out = aᵀ·b` (see the scalar reference for the
            /// layout). Accumulation stays `p`-ascending per output element.
            ///
            /// # Safety
            ///
            /// Caller must ensure the module's target feature is available.
            #[target_feature(enable = $feature)]
            pub(crate) unsafe fn gemm_at_b_band(
                a: &[f32],
                b: &[f32],
                out_band: &mut [f32],
                row0: usize,
                m: usize,
                n: usize,
            ) {
                out_band.fill(0.0);
                let a_rows = a.chunks_exact(m);
                let b_rows = b.chunks_exact(n);
                debug_assert_eq!(a_rows.len(), b_rows.len(), "operands disagree on k");
                for (a_row, b_row) in a_rows.zip(b_rows) {
                    for (i, out_row) in out_band.chunks_exact_mut(n).enumerate() {
                        let a_pi = a_row[row0 + i];
                        if a_pi == 0.0 {
                            continue;
                        }
                        axpy(a_pi, b_row, out_row);
                    }
                }
            }
        }
    };
}

simd_level!(
    avx2,
    "avx2",
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_mul_ps,
    _mm256_add_ps,
    mul_then_add_256
);
simd_level!(
    sse,
    "sse2",
    4,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_set1_ps,
    _mm_mul_ps,
    _mm_add_ps,
    mul_then_add_128
);
// The relaxed level: identical loop structure, fused multiply-add. Only
// dispatched through `ContractMode::Relaxed` (see `crate::FmaBackend`).
simd_level!(
    avx2fma,
    "avx2,fma",
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_mul_ps,
    _mm256_add_ps,
    fused_mul_add_256
);
