//! The scalar reference kernels.
//!
//! These are the original `fuse-tensor` hot loops, extracted verbatim: the
//! floating-point order they define **is** the numeric contract of the
//! workspace — every committed golden trace was produced by these loops, and
//! [`crate::SimdBackend`] is only allowed to reorganise work in ways that
//! leave every per-element operation sequence unchanged (see
//! `REPRODUCIBILITY.md`). They live as free functions so the SIMD backend can
//! delegate to them for the ops it must not vectorise (in-order reductions,
//! first-maximum scans) without duplicating code.

use crate::KernelBackend;

/// Per-row GEMM kernel: `out_row (+)= a_row · b` where `b` is `[k x n]` and
/// `n == out_row.len()`. The `p`-ascending accumulation order is the single
/// source of truth for every backend.
#[inline]
pub(crate) fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], accumulate: bool) {
    let n = out_row.len();
    if !accumulate {
        out_row.fill(0.0);
    }
    for (p, &a_ip) in a_row.iter().enumerate() {
        if a_ip == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
            *o += a_ip * b_pj;
        }
    }
}

/// `k`-outer band kernel of `out = aᵀ·b` over a contiguous band of output
/// rows starting at absolute row `row0` (`a` stored `[k x m]`, `b` stored
/// `[k x n]`). Each output row accumulates in `p`-ascending order — the same
/// order for any banding, so parallel output is bit-identical to serial.
pub(crate) fn gemm_at_b_band(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    row0: usize,
    m: usize,
    n: usize,
) {
    out_band.fill(0.0);
    let a_rows = a.chunks_exact(m);
    let b_rows = b.chunks_exact(n);
    debug_assert_eq!(a_rows.len(), b_rows.len(), "lhs and rhs must agree on the shared k extent");
    debug_assert_eq!(out_band.len() % n, 0, "output band must hold whole rows of length n");
    for (a_row, b_row) in a_rows.zip(b_rows) {
        for (i, out_row) in out_band.chunks_exact_mut(n).enumerate() {
            let a_pi = a_row[row0 + i];
            if a_pi == 0.0 {
                continue;
            }
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// Per-row kernel of `out = a·bᵀ`: `out_row[j] = a_row · b[j]` with `b`
/// stored `[n x k]`. One running accumulator per output element, `p`
/// ascending.
#[inline]
pub(crate) fn gemm_a_bt_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
        let mut acc = 0.0f32;
        for (x, y) in a_row.iter().zip(b_row) {
            acc += x * y;
        }
        *o = acc;
    }
}

/// Fills one row of an im2col matrix: the lowered window values for kernel
/// tap `(ch, ky, kx) = decode(row)` at every output position. Pure data
/// movement — no arithmetic, so any backend may reorganise it freely.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col_row(
    input: &[f32],
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    row: usize,
    row_out: &mut [f32],
    out_w: usize,
) {
    let ch = row / (kernel * kernel);
    let ky = (row / kernel) % kernel;
    let kx = row % kernel;
    let out_h = row_out.len() / out_w;
    for oy in 0..out_h {
        let iy = (oy * stride + ky) as isize - padding as isize;
        for ox in 0..out_w {
            let ix = (ox * stride + kx) as isize - padding as isize;
            let val = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                input[(ch * h + iy as usize) * w + ix as usize]
            } else {
                0.0
            };
            row_out[oy * out_w + ox] = val;
        }
    }
}

/// `y += alpha * x`, element order ascending.
#[inline]
pub(crate) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y += x`, element order ascending.
#[inline]
pub(crate) fn add_assign(y: &mut [f32], x: &[f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// `data *= s`, element order ascending.
#[inline]
pub(crate) fn scale_assign(data: &mut [f32], s: f32) {
    for v in data {
        *v *= s;
    }
}

/// `data += s` (bias broadcast), element order ascending.
#[inline]
pub(crate) fn add_scalar_assign(data: &mut [f32], s: f32) {
    for v in data {
        *v += s;
    }
}

/// In-order running sum. The left-to-right association is part of the
/// contract: a lane-blocked SIMD sum would change the result, so every
/// backend must use exactly this reduction.
#[inline]
pub(crate) fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// In-order dot product (`Σ a[i]*b[i]`, left-to-right).
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// First-maximum scan with strict `>` against a running best that starts at
/// `-∞`: returns the index and value of the first element strictly greater
/// than everything before it. `None` when no element exceeds `-∞` (empty
/// slices, all `-∞`, all NaN) — mirroring the max-pooling loop this was
/// extracted from, where such a window leaves the argmax untouched.
#[inline]
pub(crate) fn max_scan(x: &[f32]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in x.iter().enumerate() {
        let greater = match best {
            None => v > f32::NEG_INFINITY,
            Some((_, b)) => v > b,
        };
        if greater {
            best = Some((i, v));
        }
    }
    best
}

/// The reference backend: the workspace's original scalar loops, unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], accumulate: bool) {
        gemm_row(a_row, b, out_row, accumulate);
    }

    fn gemm_at_b_band(
        &self,
        a: &[f32],
        b: &[f32],
        out_band: &mut [f32],
        row0: usize,
        m: usize,
        n: usize,
    ) {
        gemm_at_b_band(a, b, out_band, row0, m, n);
    }

    fn gemm_a_bt_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
        gemm_a_bt_row(a_row, b, out_row, k);
    }

    fn im2col_row(
        &self,
        input: &[f32],
        h: usize,
        w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        row: usize,
        row_out: &mut [f32],
        out_w: usize,
    ) {
        im2col_row(input, h, w, kernel, stride, padding, row, row_out, out_w);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        axpy(alpha, x, y);
    }

    fn add_assign(&self, y: &mut [f32], x: &[f32]) {
        add_assign(y, x);
    }

    fn scale_assign(&self, data: &mut [f32], s: f32) {
        scale_assign(data, s);
    }

    fn add_scalar_assign(&self, data: &mut [f32], s: f32) {
        add_scalar_assign(data, s);
    }

    fn sum(&self, x: &[f32]) -> f32 {
        sum(x)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dot(a, b)
    }

    fn max_scan(&self, x: &[f32]) -> Option<(usize, f32)> {
        max_scan(x)
    }
}
