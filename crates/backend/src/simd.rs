//! The SIMD backend: runtime-detected x86_64 AVX2/SSE kernels with a
//! portable unrolled-accumulator fallback.
//!
//! Three rules keep this backend inside the bit-reproducibility contract
//! (`REPRODUCIBILITY.md`):
//!
//! 1. **Vectorise across independent output elements only.** The GEMM and
//!    elementwise kernels process 8 (AVX2) or 4 (SSE) output elements per
//!    instruction, but each element still sees exactly the scalar
//!    reference's operation sequence — same multiplies, same adds, same
//!    `p`-ascending order, no FMA contraction.
//! 2. **Never reassociate a reduction.** In-order reductions (`sum`, `dot`)
//!    and the order-sensitive first-maximum scan (`max_scan`) delegate to
//!    the scalar reference: a lane-blocked accumulator would change the
//!    floating-point association and therefore the bits.
//! 3. **Data movement is free.** `im2col` rows are pure copies, so the
//!    stride-1 fast path lowers interior spans with `copy_from_slice`
//!    instead of per-element bounds checks.
//!
//! Off x86_64 (or when even SSE2 is unavailable, which the x86_64 ABI rules
//! out) the backend runs the portable path: the unrolled-accumulator
//! `gemm_a_bt` kernel plus the scalar reference for everything else, which
//! the autovectoriser is free to widen because the lanes are independent.

use crate::scalar;
#[cfg(target_arch = "x86_64")]
use crate::x86;
use crate::KernelBackend;

/// The instruction-set level a [`SimdBackend`] detected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// 8-lane AVX2 kernels (x86_64 with runtime `avx2` detection).
    Avx2,
    /// 4-lane SSE kernels (always available on x86_64 — part of the ABI).
    Sse,
    /// Portable unrolled-accumulator kernels (non-x86_64 hosts).
    Portable,
}

impl SimdLevel {
    /// Short lowercase name used in reports and the backend table.
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Sse => "sse",
            SimdLevel::Portable => "portable",
        }
    }
}

/// Detects the best level the current CPU supports.
pub(crate) fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline ABI: every x86_64 CPU has it.
            SimdLevel::Sse
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Portable
    }
}

/// Unrolled-accumulator kernel for `out = a·bᵀ` rows: processes
/// [`UNROLL`](gemm_a_bt_row_unrolled) output elements per pass with one
/// independent running accumulator each. Every accumulator still adds its
/// `a_row[p] * b[j*k + p]` terms in `p`-ascending order — the exact
/// per-element sequence of the scalar reference — so this reorganisation is
/// free under the contract while breaking the single-accumulator dependency
/// chain that bounds the scalar kernel's throughput.
fn gemm_a_bt_row_unrolled(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    const UNROLL: usize = 8;
    if k == 0 {
        out_row.fill(0.0);
        return;
    }
    let mut out_chunks = out_row.chunks_exact_mut(UNROLL);
    let mut b_chunks = b.chunks_exact(UNROLL * k);
    for (out_c, b_c) in out_chunks.by_ref().zip(b_chunks.by_ref()) {
        let mut acc = [0.0f32; UNROLL];
        for (p, &x) in a_row.iter().enumerate() {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += x * b_c[l * k + p];
            }
        }
        out_c.copy_from_slice(&acc);
    }
    // Remainder columns: the scalar reference, one accumulator per element.
    scalar::gemm_a_bt_row(a_row, b_chunks.remainder(), out_chunks.into_remainder(), k);
}

/// Stride-1 fast path for one im2col row: each output row of the lowering is
/// a contiguous span of the input row (shifted by the kernel tap) flanked by
/// padding zeros, so it can be filled with two `fill`s and one
/// `copy_from_slice`. Pure data movement — bit-identical to the scalar
/// per-element loop by construction. Non-unit strides fall back to the
/// scalar reference.
#[allow(clippy::too_many_arguments)]
fn im2col_row_fast(
    input: &[f32],
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    row: usize,
    row_out: &mut [f32],
    out_w: usize,
) {
    if stride != 1 {
        scalar::im2col_row(input, h, w, kernel, stride, padding, row, row_out, out_w);
        return;
    }
    let ch = row / (kernel * kernel);
    let ky = (row / kernel) % kernel;
    let kx = row % kernel;
    let out_h = row_out.len() / out_w;
    // ix = ox + off for every output column ox.
    let off = kx as isize - padding as isize;
    let first_valid = usize::try_from(-off).unwrap_or(0).min(out_w);
    let end_valid = usize::try_from(w as isize - off).unwrap_or(0).min(out_w).max(first_valid);
    for oy in 0..out_h {
        let iy = (oy + ky) as isize - padding as isize;
        let dst = &mut row_out[oy * out_w..(oy + 1) * out_w];
        if iy < 0 || iy >= h as isize {
            dst.fill(0.0);
            continue;
        }
        let base = (ch * h + iy as usize) * w;
        dst[..first_valid].fill(0.0);
        dst[end_valid..].fill(0.0);
        if end_valid > first_valid {
            // Non-empty span implies `first_valid >= -off`, so the source
            // index cannot go negative; an empty span must skip this — its
            // `first_valid + off` can be negative (wide kernels on narrow
            // inputs, e.g. kernel 9 on w = 2) and would wrap the usize.
            let src = base + (first_valid as isize + off) as usize;
            dst[first_valid..end_valid]
                .copy_from_slice(&input[src..src + (end_valid - first_valid)]);
        }
    }
}

/// Dispatches `$func` to the detected instruction-set level.
///
/// # Safety (of the generated `unsafe` calls)
///
/// The `Avx2`/`Sse` arms call `#[target_feature]` kernels; the level was
/// chosen by [`detect_level`] at construction, so the required feature is
/// guaranteed present on this CPU.
macro_rules! level_dispatch {
    ($self:ident, $func:ident ( $($arg:expr),* )) => {
        match $self.level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { x86::avx2::$func($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse => unsafe { x86::sse::$func($($arg),*) },
            _ => scalar::$func($($arg),*),
        }
    };
}

/// The SIMD backend. Construction detects the CPU once; every kernel then
/// dispatches to the matching `std::arch` module (or the portable fallback)
/// without further branching on features.
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend {
    level: SimdLevel,
}

impl SimdBackend {
    pub(crate) fn new() -> Self {
        SimdBackend { level: detect_level() }
    }

    /// The instruction-set level detected at construction.
    pub fn level(&self) -> SimdLevel {
        self.level
    }
}

impl KernelBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], accumulate: bool) {
        level_dispatch!(self, gemm_row(a_row, b, out_row, accumulate));
    }

    fn gemm_rows(
        &self,
        a_rows: &[f32],
        b: &[f32],
        out_rows: &mut [f32],
        k: usize,
        n: usize,
        accumulate: bool,
    ) {
        match self.level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe {
                x86::avx2::gemm_rows(a_rows, b, out_rows, k, n, accumulate)
            },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse => unsafe { x86::sse::gemm_rows(a_rows, b, out_rows, k, n, accumulate) },
            _ => {
                for (a_row, out_row) in a_rows.chunks_exact(k).zip(out_rows.chunks_exact_mut(n)) {
                    scalar::gemm_row(a_row, b, out_row, accumulate);
                }
            }
        }
    }

    fn gemm_at_b_band(
        &self,
        a: &[f32],
        b: &[f32],
        out_band: &mut [f32],
        row0: usize,
        m: usize,
        n: usize,
    ) {
        level_dispatch!(self, gemm_at_b_band(a, b, out_band, row0, m, n));
    }

    fn gemm_a_bt_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
        // Unrolled independent accumulators at every level: the win is ILP
        // (eight dependency chains instead of one), not lane width.
        gemm_a_bt_row_unrolled(a_row, b, out_row, k);
    }

    fn im2col_row(
        &self,
        input: &[f32],
        h: usize,
        w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        row: usize,
        row_out: &mut [f32],
        out_w: usize,
    ) {
        im2col_row_fast(input, h, w, kernel, stride, padding, row, row_out, out_w);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
        level_dispatch!(self, axpy(alpha, x, y));
    }

    fn add_assign(&self, y: &mut [f32], x: &[f32]) {
        assert_eq!(x.len(), y.len(), "add_assign operands must have equal length");
        level_dispatch!(self, add_assign(y, x));
    }

    fn scale_assign(&self, data: &mut [f32], s: f32) {
        level_dispatch!(self, scale_assign(data, s));
    }

    fn add_scalar_assign(&self, data: &mut [f32], s: f32) {
        level_dispatch!(self, add_scalar_assign(data, s));
    }

    // In-order reductions and order-sensitive scans cannot be vectorised
    // without reassociating floating-point ops, so per the contract they
    // fall back to the scalar reference rather than relax bit-identity.

    fn sum(&self, x: &[f32]) -> f32 {
        scalar::sum(x)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        scalar::dot(a, b)
    }

    fn max_scan(&self, x: &[f32]) -> Option<(usize, f32)> {
        scalar::max_scan(x)
    }
}
