//! The relaxed-contract FMA backend: AVX2 + fused multiply-add kernels.
//!
//! Everything here is **outside the bit-reproducibility contract**: a fused
//! multiply-add performs one rounding where the scalar reference performs
//! two, and the `a·bᵀ` row kernel accumulates eight-lane partial sums that
//! it reduces at the end (a reassociated reduction). Results are compared
//! against the float goldens by *tolerance* (see `fuse-quant`'s comparator
//! and the relaxed-contract section of `REPRODUCIBILITY.md`), never by
//! bits.
//!
//! The backend is only constructed when the host CPU reports both `avx2`
//! and `fma`, and is only reachable through
//! [`ContractMode::Relaxed`](crate::ContractMode) dispatch — exact-mode
//! call sites demote `FUSE_BACKEND=simd-fma` to the plain SIMD backend, so
//! training, checkpointing and the exact golden suite never see these
//! kernels.

#![cfg(target_arch = "x86_64")]

use crate::simd::SimdBackend;
use crate::x86;
use crate::KernelBackend;

/// Horizontal sum of an 8-lane register, reduced pairwise. Any association
/// is acceptable here — the kernel is already relaxed.
///
/// # Safety
///
/// Caller must ensure AVX is available.
#[inline(always)]
unsafe fn hsum256(v: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let q = _mm_add_ps(lo, hi);
    let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(d, _mm_shuffle_ps::<1>(d, d));
    _mm_cvtss_f32(s)
}

/// One output row of `out = a·bᵀ` with eight-lane FMA accumulators per dot
/// product (reassociated reduction + fused rounding — relaxed only).
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available.
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_a_bt_row_fma(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    use std::arch::x86_64::*;
    for (j, out) in out_row.iter_mut().enumerate() {
        let b_row = &b[j * k..(j + 1) * k];
        let mut acc = _mm256_setzero_ps();
        let mut p = 0;
        while p + 8 <= k {
            let va = _mm256_loadu_ps(a_row.as_ptr().add(p));
            let vb = _mm256_loadu_ps(b_row.as_ptr().add(p));
            acc = _mm256_fmadd_ps(va, vb, acc);
            p += 8;
        }
        let mut s = hsum256(acc);
        while p < k {
            s += a_row[p] * b_row[p];
            p += 1;
        }
        *out = s;
    }
}

/// The relaxed AVX2+FMA backend. GEMM-family kernels run the `avx2fma`
/// macro level (fused multiply-add) or the reassociated row-dot kernel;
/// everything order-insensitive or outside the hot GEMM paths delegates to
/// the exact SIMD backend.
#[derive(Debug, Clone, Copy)]
pub struct FmaBackend {
    inner: SimdBackend,
}

impl FmaBackend {
    /// Constructs the backend when the host CPU supports AVX2 + FMA,
    /// `None` otherwise (relaxed dispatch then falls back to the exact
    /// SIMD backend, so non-FMA hosts degrade to exact results).
    pub(crate) fn detect() -> Option<Self> {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            Some(FmaBackend { inner: SimdBackend::new() })
        } else {
            None
        }
    }
}

impl KernelBackend for FmaBackend {
    fn name(&self) -> &'static str {
        "simd-fma"
    }

    fn gemm_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], accumulate: bool) {
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::gemm_row(a_row, b, out_row, accumulate) }
    }

    fn gemm_rows(
        &self,
        a_rows: &[f32],
        b: &[f32],
        out_rows: &mut [f32],
        k: usize,
        n: usize,
        accumulate: bool,
    ) {
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::gemm_rows(a_rows, b, out_rows, k, n, accumulate) }
    }

    fn gemm_at_b_band(
        &self,
        a: &[f32],
        b: &[f32],
        out_band: &mut [f32],
        row0: usize,
        m: usize,
        n: usize,
    ) {
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::gemm_at_b_band(a, b, out_band, row0, m, n) }
    }

    fn gemm_a_bt_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
        if k == 0 {
            out_row.fill(0.0);
            return;
        }
        // Safety: construction proved avx2+fma.
        unsafe { gemm_a_bt_row_fma(a_row, b, out_row, k) }
    }

    fn im2col_row(
        &self,
        input: &[f32],
        h: usize,
        w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        row: usize,
        row_out: &mut [f32],
        out_w: usize,
    ) {
        // Pure data movement — identical at every contract level.
        self.inner.im2col_row(input, h, w, kernel, stride, padding, row, row_out, out_w);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::axpy(alpha, x, y) }
    }

    // The remaining elementwise kernels never compose a multiply with an
    // add, so the `avx2fma` instantiations are bit-identical to `avx2` —
    // dispatching them here just keeps the whole backend on one module.

    fn add_assign(&self, y: &mut [f32], x: &[f32]) {
        assert_eq!(x.len(), y.len(), "add_assign operands must have equal length");
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::add_assign(y, x) }
    }

    fn scale_assign(&self, data: &mut [f32], s: f32) {
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::scale_assign(data, s) }
    }

    fn add_scalar_assign(&self, data: &mut [f32], s: f32) {
        // Safety: construction proved avx2+fma.
        unsafe { x86::avx2fma::add_scalar_assign(data, s) }
    }

    // Reductions and scans stay on the exact reference even in relaxed
    // mode: they are cheap, and keeping them exact narrows the surface the
    // tolerance budgets have to cover.

    fn sum(&self, x: &[f32]) -> f32 {
        self.inner.sum(x)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        self.inner.dot(a, b)
    }

    fn max_scan(&self, x: &[f32]) -> Option<(usize, f32)> {
        self.inner.max_scan(x)
    }
}
