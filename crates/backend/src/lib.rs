//! # fuse-backend
//!
//! Pluggable compute-kernel backends for the FUSE workspace, behind a
//! **bit-reproducibility contract**: every backend must produce bit-identical
//! results to the scalar reference for every operation (the full contract is
//! documented in `REPRODUCIBILITY.md` at the workspace root).
//!
//! The [`KernelBackend`] trait covers the row/band-level kernels under the
//! workspace's hot paths — the GEMM family, im2col lowering, the conv2d
//! forward/backward building blocks, elementwise ops and in-order
//! reductions. `fuse-tensor` and `fuse-nn` fetch the active backend once per
//! kernel dispatch and hand it into their `fuse-parallel` row/sample tasks,
//! so the thread pool composes with SIMD: parallel across rows and batch
//! samples, vector lanes within a row.
//!
//! ## Backends
//!
//! * [`ScalarBackend`] — the original scalar loops, extracted as the
//!   reference implementation. Its floating-point order defines the
//!   contract.
//! * [`SimdBackend`] — x86_64 AVX2/SSE kernels via `std::arch` with runtime
//!   feature detection, plus a portable unrolled-accumulator fallback.
//!   Vectorises only across independent output elements (never inside a
//!   reduction), so it is bit-identical to scalar; ops that cannot be
//!   vectorised under that rule delegate to the scalar reference.
//!
//! ## Selection
//!
//! | `FUSE_BACKEND` | Meaning                                                    |
//! |----------------|------------------------------------------------------------|
//! | `scalar`       | the reference kernels, always                              |
//! | `simd`         | the SIMD backend (portable fallback off x86_64)            |
//! | `auto`         | `simd` — safe everywhere because of the contract (default) |
//! | `simd-fma`     | **relaxed**: AVX2+FMA fused kernels on relaxed-mode        |
//! |                | dispatch only; exact-mode dispatch demotes it to `simd`    |
//!
//! The knob is parsed through the workspace's typed env helper
//! ([`fuse_parallel::env`]): garbage never silently falls back. Read once
//! per process; tests pin the backend per-call with [`with_backend`], which
//! mirrors `fuse_parallel::with_threads`.
//!
//! ## Contract modes
//!
//! [`ContractMode`] is the typed gate between the two numeric regimes.
//! Exact-mode dispatch ([`active`]) can never resolve a relaxed backend —
//! `simd-fma` is demoted to `simd` there, so every existing exact code
//! path stays bit-identical even when the knob opts into the relaxed tier.
//! Relaxed-mode dispatch ([`active_for`] with [`ContractMode::Relaxed`])
//! honours `simd-fma` when the host CPU has AVX2+FMA and falls back to the
//! exact SIMD backend otherwise, so non-FMA hosts degrade to exact results
//! rather than failing. `auto` never resolves to a relaxed level in either
//! mode.

#![warn(missing_docs)]

mod fma;
mod scalar;
mod simd;
mod x86;

use std::sync::OnceLock;

use fuse_parallel::env::{self, InvalidEnv};

#[cfg(target_arch = "x86_64")]
pub use fma::FmaBackend;
pub use scalar::ScalarBackend;
pub use simd::{SimdBackend, SimdLevel};

/// Environment knob selecting the kernel backend.
pub const FUSE_BACKEND_ENV: &str = "FUSE_BACKEND";

/// The environment knobs owned by `fuse-backend` (see
/// [`fuse_parallel::env::KnobDef`] for how these feed the generated
/// `README.md` reference table).
pub const BACKEND_KNOBS: &[env::KnobDef] = &[env::KnobDef {
    name: FUSE_BACKEND_ENV,
    default: "auto",
    accepts: "one of scalar / simd / auto / simd-fma",
    description: "Kernel backend: scalar reference, SIMD, runtime autodetection, or relaxed FMA",
}];

/// The numeric regime a kernel dispatch belongs to.
///
/// Exact-mode call sites (training, checkpointing, the legacy model walk,
/// every golden pinned by bits) resolve backends through
/// [`ContractMode::Exact`], which can never produce a relaxed backend:
/// `FUSE_BACKEND=simd-fma` is demoted to the plain SIMD backend there.
/// Only call sites that have explicitly opted into tolerance-based
/// verification (the compiled-plan serve path) dispatch through
/// [`ContractMode::Relaxed`]. The enum makes that opt-in typed: a code
/// path cannot dispatch relaxed kernels by accident, only by naming the
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContractMode {
    /// Bit-reproducibility required: every backend must match the scalar
    /// reference bit-for-bit (the default everywhere).
    #[default]
    Exact,
    /// Tolerance-based verification: fused multiply-add and reassociated
    /// reductions are permitted; outputs are compared to goldens within a
    /// declared accuracy budget.
    Relaxed,
}

/// Row/band-level compute kernels behind the workspace's hot paths.
///
/// Callers own shape validation and parallel banding; implementations own
/// the innermost loops. Every method must be bit-identical to
/// [`ScalarBackend`]'s (the contract in `REPRODUCIBILITY.md`); slices follow
/// the layout conventions of `fuse_tensor::linalg`.
///
/// ```
/// use fuse_backend::{active, KernelBackend, ScalarBackend};
///
/// // One row of out = a·b (a is 1×2, b is 2×3) through the active backend —
/// // which must agree bit-for-bit with the scalar reference.
/// let a = [1.0_f32, 2.0];
/// let b = [10.0_f32, 20.0, 30.0, 40.0, 50.0, 60.0];
/// let mut out = [0.0_f32; 3];
/// active().gemm_row(&a, &b, &mut out, false);
/// assert_eq!(out, [90.0, 120.0, 150.0]);
/// let mut reference = [0.0_f32; 3];
/// ScalarBackend.gemm_row(&a, &b, &mut reference, false);
/// assert_eq!(out, reference);
/// ```
pub trait KernelBackend: Send + Sync {
    /// Short lowercase backend name used in reports and bench IDs.
    fn name(&self) -> &'static str;

    /// One output row of `out (+)= a·b`: `out_row (+)= a_row · b`, with `b`
    /// row-major `[k x n]` and `n == out_row.len()`. Accumulation is
    /// `p`-ascending per output element.
    fn gemm_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], accumulate: bool);

    /// A contiguous block of output rows of `out (+)= a·b` (`a_rows` holds
    /// `rows = out_rows.len() / n` rows of length `k`). Semantically
    /// identical to [`KernelBackend::gemm_row`] per row; a backend may
    /// register-block across rows to reuse `b` loads as long as every output
    /// element keeps its `p`-ascending accumulation order (the SIMD backend
    /// processes four rows per pass this way).
    fn gemm_rows(
        &self,
        a_rows: &[f32],
        b: &[f32],
        out_rows: &mut [f32],
        k: usize,
        n: usize,
        accumulate: bool,
    ) {
        for (a_row, out_row) in a_rows.chunks_exact(k).zip(out_rows.chunks_exact_mut(n)) {
            self.gemm_row(a_row, b, out_row, accumulate);
        }
    }

    /// A contiguous band of output rows of `out = aᵀ·b` starting at absolute
    /// row `row0` (`a` stored `[k x m]`, `b` stored `[k x n]`). Overwrites
    /// the band; accumulation is `p`-ascending per output element.
    fn gemm_at_b_band(
        &self,
        a: &[f32],
        b: &[f32],
        out_band: &mut [f32],
        row0: usize,
        m: usize,
        n: usize,
    );

    /// One output row of `out = a·bᵀ`: `out_row[j] = a_row · b[j*k..][..k]`
    /// with `b` stored `[n x k]` and `k >= 1` (callers shortcut `k == 0`).
    fn gemm_a_bt_row(&self, a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize);

    /// One row of the im2col lowering of a `[C, H, W]` sample: the window
    /// values for kernel tap `(ch, ky, kx) = decode(row)` at every output
    /// position (`row_out` holds `out_h * out_w` values). Pure data
    /// movement.
    #[allow(clippy::too_many_arguments)]
    fn im2col_row(
        &self,
        input: &[f32],
        h: usize,
        w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        row: usize,
        row_out: &mut [f32],
        out_w: usize,
    );

    /// `y += alpha * x` (equal lengths).
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]);

    /// `y += x` (equal lengths).
    fn add_assign(&self, y: &mut [f32], x: &[f32]);

    /// `data *= s`.
    fn scale_assign(&self, data: &mut [f32], s: f32);

    /// `data += s` (bias broadcast).
    fn add_scalar_assign(&self, data: &mut [f32], s: f32);

    /// In-order sum `Σ x[i]` (left-to-right association is the contract).
    fn sum(&self, x: &[f32]) -> f32;

    /// In-order dot product `Σ a[i]*b[i]`.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// First-maximum scan with strict `>` starting from `-∞`: the index and
    /// value of the running maximum, `None` when nothing exceeds `-∞`. The
    /// max-pooling forward pass composes window argmaxes from this.
    fn max_scan(&self, x: &[f32]) -> Option<(usize, f32)>;
}

/// The `FUSE_BACKEND` knob values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Always the scalar reference kernels.
    Scalar,
    /// Always the SIMD backend (portable fallback off x86_64).
    Simd,
    /// Pick the fastest backend for this host. Because every backend is
    /// bit-identical by contract, `auto` resolves to [`BackendChoice::Simd`]
    /// on every platform; backends that *relax* the contract (like
    /// [`BackendChoice::SimdFma`]) are opt-in only, never selected by
    /// `auto` — in either contract mode.
    #[default]
    Auto,
    /// **Relaxed**: AVX2+FMA fused kernels when the host supports them.
    /// Exact-mode dispatch demotes this to [`BackendChoice::Simd`]; only
    /// [`ContractMode::Relaxed`] call sites run the fused kernels, and
    /// hosts without AVX2+FMA fall back to the exact SIMD backend.
    SimdFma,
}

/// Accepted `FUSE_BACKEND` values, in [`BackendChoice`] discriminant order.
const CHOICES: &[&str] = &["scalar", "simd", "auto", "simd-fma"];
const EXPECTED: &str = "one of scalar|simd|auto|simd-fma";

impl BackendChoice {
    /// Short lowercase name (the knob syntax).
    pub fn name(&self) -> &'static str {
        CHOICES[*self as usize]
    }

    /// Resolves a [`CHOICES`] index — the wire format shared by the env
    /// parser and the pool's inherited-context word — back to a choice. The
    /// single source of truth for that mapping: `parse`, `from_env` and
    /// [`active_choice`] all go through here.
    fn from_index(i: usize) -> Option<Self> {
        match i {
            0 => Some(BackendChoice::Scalar),
            1 => Some(BackendChoice::Simd),
            2 => Some(BackendChoice::Auto),
            3 => Some(BackendChoice::SimdFma),
            _ => None,
        }
    }

    /// Parses a knob value (trimmed, ASCII case-insensitive) — the same
    /// matching rule `from_env` applies through the shared env helper.
    pub fn parse(value: &str) -> Option<Self> {
        let lowered = value.trim().to_ascii_lowercase();
        CHOICES.iter().position(|c| *c == lowered).and_then(Self::from_index)
    }

    /// Reads `FUSE_BACKEND`, distinguishing *unset* (`Ok(None)`) from
    /// *unparseable* (a typed error naming the knob — configuration surfaces
    /// like `fuse-cluster` turn this into their own `InvalidEnv` variant).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidEnv`] when the variable is set but is not one of
    /// `scalar`, `simd`, `auto`, `simd-fma`.
    pub fn from_env() -> Result<Option<Self>, InvalidEnv> {
        Ok(env::env_choice(FUSE_BACKEND_ENV, CHOICES, EXPECTED)?
            .map(|i| Self::from_index(i).expect("env_choice returns an index into CHOICES")))
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide backend choice: `FUSE_BACKEND` when set, else `auto`.
/// Read once; garbage fails fast with the typed [`InvalidEnv`] message (the
/// same behaviour as `FUSE_THREADS` — configuration surfaces that want a
/// `Result` instead call [`BackendChoice::from_env`] before kernels run).
fn configured_choice() -> BackendChoice {
    static CONFIG: OnceLock<BackendChoice> = OnceLock::new();
    *CONFIG.get_or_init(|| match BackendChoice::from_env() {
        Ok(choice) => choice.unwrap_or_default(),
        Err(e) => panic!("{e}"),
    })
}

/// The backend choice governing kernels dispatched from the current thread
/// (the [`with_backend`] override, else `FUSE_BACKEND`, else `auto`).
///
/// A context word that is not a valid choice index (which would mean some
/// other code started using the pool's inherited-context word — it is
/// reserved by this crate, see [`fuse_parallel::inherited_context`]) is
/// rejected loudly in debug builds and ignored in release builds rather
/// than silently remapped.
pub fn active_choice() -> BackendChoice {
    match fuse_parallel::inherited_context() {
        Some(word) => BackendChoice::from_index(word).unwrap_or_else(|| {
            debug_assert!(
                false,
                "inherited context word {word} is not a backend choice — the word is \
                 reserved by fuse-backend"
            );
            configured_choice()
        }),
        None => configured_choice(),
    }
}

/// Runs `f` with the backend choice pinned for work dispatched from the
/// current thread. This is the hook the scalar↔SIMD equivalence tests use,
/// mirroring `fuse_parallel::with_threads` — with one strengthening: the
/// choice rides `fuse-parallel`'s inheritable context word, so it follows
/// fork-join work onto pool workers and nested kernel dispatches inside
/// parallel tasks resolve the same backend as the caller.
pub fn with_backend<R>(choice: BackendChoice, f: impl FnOnce() -> R) -> R {
    fuse_parallel::with_inherited_context(Some(choice as usize), f)
}

fn simd_backend() -> &'static SimdBackend {
    static SIMD: OnceLock<SimdBackend> = OnceLock::new();
    SIMD.get_or_init(SimdBackend::new)
}

#[cfg(target_arch = "x86_64")]
fn fma_backend() -> Option<&'static FmaBackend> {
    static FMA: OnceLock<Option<FmaBackend>> = OnceLock::new();
    FMA.get_or_init(FmaBackend::detect).as_ref()
}

/// Whether the relaxed AVX2+FMA backend is available on this host. When
/// `false`, `FUSE_BACKEND=simd-fma` still parses but relaxed dispatch
/// degrades to the exact SIMD backend (so relaxed-leg tests pass
/// trivially on non-FMA hosts).
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        fma_backend().is_some()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a choice to its **exact-contract** backend
/// ([`BackendChoice::Auto`] → SIMD; the contract makes that safe on every
/// platform). [`BackendChoice::SimdFma`] is demoted to the exact SIMD
/// backend here — exact-mode call sites can never run relaxed kernels.
pub fn backend_for(choice: BackendChoice) -> &'static dyn KernelBackend {
    static SCALAR: ScalarBackend = ScalarBackend;
    match choice {
        BackendChoice::Scalar => &SCALAR,
        BackendChoice::Simd | BackendChoice::Auto | BackendChoice::SimdFma => simd_backend(),
    }
}

/// Resolves a choice to its backend under **relaxed** dispatch:
/// [`BackendChoice::SimdFma`] becomes the FMA backend when the host
/// supports AVX2+FMA (exact SIMD otherwise); every other choice —
/// including `auto` — resolves exactly as [`backend_for`] does, so `auto`
/// never selects a relaxed level.
pub fn relaxed_backend_for(choice: BackendChoice) -> &'static dyn KernelBackend {
    match choice {
        BackendChoice::SimdFma => {
            #[cfg(target_arch = "x86_64")]
            if let Some(be) = fma_backend() {
                return be;
            }
            simd_backend()
        }
        other => backend_for(other),
    }
}

/// The backend kernels dispatched from the current thread should use under
/// the given [`ContractMode`]. Hot paths call this **once per kernel
/// dispatch** (not per row) and pass the reference into their parallel
/// tasks.
pub fn active_for(mode: ContractMode) -> &'static dyn KernelBackend {
    match mode {
        ContractMode::Exact => backend_for(active_choice()),
        ContractMode::Relaxed => relaxed_backend_for(active_choice()),
    }
}

/// The **exact-contract** backend kernels dispatched from the current
/// thread should use (shorthand for [`active_for`] with
/// [`ContractMode::Exact`]).
///
/// Hot paths call this **once per kernel dispatch** (not per row) and pass
/// the reference into their parallel tasks — thread-local overrides do not
/// cross into pool workers, the reference does.
pub fn active() -> &'static dyn KernelBackend {
    active_for(ContractMode::Exact)
}

/// The SIMD instruction-set level this host resolved to (what `auto`/`simd`
/// will run): `avx2`, `sse` or `portable`.
pub fn detected_level() -> SimdLevel {
    simd_backend().level()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [&'static dyn KernelBackend; 2] {
        [backend_for(BackendChoice::Scalar), backend_for(BackendChoice::Simd)]
    }

    /// Deterministic pseudo-random fill that exercises signs, magnitudes and
    /// exact zeros (the GEMM kernels skip zero multipliers).
    fn data(len: usize, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = ((i * 2654435761 + salt * 40503) % 2048) as f32 * 1e-3 - 1.0;
                if i % 13 == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    /// Non-lane-multiple widths: 1 and 3 (below SSE width), 7 (below AVX2
    /// width), 17 (two AVX2 blocks + 1), plus lane-aligned 8/16.
    const WIDTHS: &[usize] = &[1, 3, 7, 8, 16, 17];

    #[test]
    fn gemm_row_bit_identical_across_backends_and_widths() {
        let [s, v] = backends();
        for &n in WIDTHS {
            for &k in WIDTHS {
                let a = data(k, n);
                let b = data(k * n, n + k);
                for acc in [false, true] {
                    let mut out_s = data(n, 7);
                    let mut out_v = out_s.clone();
                    s.gemm_row(&a, &b, &mut out_s, acc);
                    v.gemm_row(&a, &b, &mut out_v, acc);
                    assert_eq!(out_s, out_v, "gemm_row k={k} n={n} acc={acc}");
                }
            }
        }
    }

    #[test]
    fn gemm_rows_block_kernel_bit_identical_across_backends() {
        let [s, v] = backends();
        // Row counts around the 4-row register block (1..9) × odd widths.
        for &rows in &[1usize, 2, 3, 4, 5, 7, 8, 9] {
            for &n in WIDTHS {
                for &k in &[1usize, 7, 16] {
                    let a = data(rows * k, n);
                    let b = data(k * n, rows);
                    for acc in [false, true] {
                        let mut out_s = data(rows * n, 11);
                        let mut out_v = out_s.clone();
                        s.gemm_rows(&a, &b, &mut out_s, k, n, acc);
                        v.gemm_rows(&a, &b, &mut out_v, k, n, acc);
                        assert_eq!(out_s, out_v, "gemm_rows rows={rows} k={k} n={n} acc={acc}");
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_at_b_band_bit_identical_across_backends() {
        let [s, v] = backends();
        for &n in WIDTHS {
            for &(k, m) in &[(1usize, 1usize), (3, 5), (8, 4), (17, 3)] {
                let a = data(k * m, n);
                let b = data(k * n, m);
                let mut out_s = vec![1.0f32; m * n];
                let mut out_v = vec![-1.0f32; m * n];
                s.gemm_at_b_band(&a, &b, &mut out_s, 0, m, n);
                v.gemm_at_b_band(&a, &b, &mut out_v, 0, m, n);
                assert_eq!(out_s, out_v, "gemm_at_b_band k={k} m={m} n={n}");
            }
        }
    }

    #[test]
    fn gemm_a_bt_row_bit_identical_across_backends() {
        let [s, v] = backends();
        for &n in WIDTHS {
            for &k in WIDTHS {
                let a = data(k, n + 1);
                let b = data(n * k, k + 2);
                let mut out_s = vec![0.0f32; n];
                let mut out_v = vec![0.5f32; n];
                s.gemm_a_bt_row(&a, &b, &mut out_s, k);
                v.gemm_a_bt_row(&a, &b, &mut out_v, k);
                assert_eq!(out_s, out_v, "gemm_a_bt_row k={k} n={n}");
            }
        }
    }

    #[test]
    fn im2col_row_bit_identical_across_backends() {
        let [s, v] = backends();
        let (h, w, c) = (5usize, 7usize, 2usize);
        let input = data(c * h * w, 3);
        for &(kernel, stride, padding) in &[(3usize, 1usize, 1usize), (3, 2, 0), (1, 1, 0)] {
            let out_h = (h + 2 * padding - kernel) / stride + 1;
            let out_w = (w + 2 * padding - kernel) / stride + 1;
            for row in 0..c * kernel * kernel {
                let mut out_s = vec![9.0f32; out_h * out_w];
                let mut out_v = vec![-9.0f32; out_h * out_w];
                s.im2col_row(&input, h, w, kernel, stride, padding, row, &mut out_s, out_w);
                v.im2col_row(&input, h, w, kernel, stride, padding, row, &mut out_v, out_w);
                assert_eq!(out_s, out_v, "im2col_row k={kernel} s={stride} p={padding} row={row}");
            }
        }
    }

    #[test]
    fn im2col_row_wide_kernel_on_narrow_input_matches_scalar() {
        // Regression: kernel taps whose entire output row falls outside the
        // input (kernel 9 on a 2x2 input with padding 4) produce an empty
        // valid span; the stride-1 fast path must emit the all-zero row the
        // scalar reference does instead of wrapping a negative source index.
        let [s, v] = backends();
        let (h, w, c, kernel, padding) = (2usize, 2usize, 1usize, 9usize, 4usize);
        let input = data(c * h * w, 4);
        let (out_h, out_w) = (h, w); // "same" geometry
        for row in 0..c * kernel * kernel {
            let mut out_s = vec![7.0f32; out_h * out_w];
            let mut out_v = vec![-7.0f32; out_h * out_w];
            s.im2col_row(&input, h, w, kernel, 1, padding, row, &mut out_s, out_w);
            v.im2col_row(&input, h, w, kernel, 1, padding, row, &mut out_v, out_w);
            assert_eq!(out_s, out_v, "im2col_row wide-kernel row={row}");
        }
    }

    #[test]
    fn elementwise_ops_bit_identical_across_backends() {
        let [s, v] = backends();
        for &n in WIDTHS {
            let x = data(n, 1);
            let (mut ys, mut yv) = (data(n, 2), data(n, 2));
            s.axpy(0.37, &x, &mut ys);
            v.axpy(0.37, &x, &mut yv);
            assert_eq!(ys, yv, "axpy n={n}");
            s.add_assign(&mut ys, &x);
            v.add_assign(&mut yv, &x);
            assert_eq!(ys, yv, "add_assign n={n}");
            s.scale_assign(&mut ys, -1.7);
            v.scale_assign(&mut yv, -1.7);
            assert_eq!(ys, yv, "scale_assign n={n}");
            s.add_scalar_assign(&mut ys, 0.11);
            v.add_scalar_assign(&mut yv, 0.11);
            assert_eq!(ys, yv, "add_scalar_assign n={n}");
        }
    }

    #[test]
    fn reductions_and_scans_bit_identical_across_backends() {
        let [s, v] = backends();
        for &n in WIDTHS {
            let a = data(n, 5);
            let b = data(n, 6);
            assert_eq!(s.sum(&a).to_bits(), v.sum(&a).to_bits(), "sum n={n}");
            assert_eq!(s.dot(&a, &b).to_bits(), v.dot(&a, &b).to_bits(), "dot n={n}");
            assert_eq!(s.max_scan(&a), v.max_scan(&a), "max_scan n={n}");
        }
    }

    #[test]
    fn max_scan_keeps_first_maximum_and_ignores_nan_and_neg_inf() {
        let s = backend_for(BackendChoice::Scalar);
        assert_eq!(s.max_scan(&[]), None);
        assert_eq!(s.max_scan(&[f32::NEG_INFINITY; 3]), None);
        assert_eq!(s.max_scan(&[f32::NAN, f32::NAN]), None);
        // First of equal maxima wins (strict `>` never replaces it).
        assert_eq!(s.max_scan(&[1.0, 5.0, 5.0, 2.0]), Some((1, 5.0)));
        assert_eq!(s.max_scan(&[f32::NAN, 2.0, 1.0]), Some((1, 2.0)));
    }

    #[test]
    fn choice_parses_and_renders() {
        assert_eq!(BackendChoice::parse(" SIMD "), Some(BackendChoice::Simd));
        assert_eq!(BackendChoice::parse("scalar"), Some(BackendChoice::Scalar));
        assert_eq!(BackendChoice::parse("auto"), Some(BackendChoice::Auto));
        assert_eq!(BackendChoice::parse("simd-fma"), Some(BackendChoice::SimdFma));
        assert_eq!(BackendChoice::parse(" Simd-FMA "), Some(BackendChoice::SimdFma));
        assert_eq!(BackendChoice::parse("gpu"), None);
        assert_eq!(BackendChoice::parse("fma"), None);
        assert_eq!(BackendChoice::Simd.to_string(), "simd");
        assert_eq!(BackendChoice::SimdFma.to_string(), "simd-fma");
        assert_eq!(BackendChoice::default(), BackendChoice::Auto);
    }

    #[test]
    fn auto_never_resolves_to_a_relaxed_level() {
        // The satellite guarantee: `auto` is exact in *both* contract
        // modes. Only an explicit `simd-fma` opt-in can reach relaxed
        // kernels, and only through relaxed dispatch.
        assert_eq!(backend_for(BackendChoice::Auto).name(), "simd");
        assert_eq!(relaxed_backend_for(BackendChoice::Auto).name(), "simd");
        for choice in [BackendChoice::Scalar, BackendChoice::Simd, BackendChoice::Auto] {
            assert_ne!(relaxed_backend_for(choice).name(), "simd-fma", "{choice} must stay exact");
        }
    }

    #[test]
    fn exact_mode_demotes_simd_fma() {
        // Exact-contract dispatch can never produce the FMA backend, even
        // when the knob (or a per-thread override) selects it.
        assert_eq!(backend_for(BackendChoice::SimdFma).name(), "simd");
        with_backend(BackendChoice::SimdFma, || {
            assert_eq!(active().name(), "simd");
            assert_eq!(active_for(ContractMode::Exact).name(), "simd");
        });
    }

    #[test]
    fn relaxed_dispatch_honours_simd_fma_when_detected() {
        let expected = if fma_available() { "simd-fma" } else { "simd" };
        assert_eq!(relaxed_backend_for(BackendChoice::SimdFma).name(), expected);
        with_backend(BackendChoice::SimdFma, || {
            assert_eq!(active_for(ContractMode::Relaxed).name(), expected);
        });
        // Relaxed dispatch under a non-relaxed choice is identical to exact.
        with_backend(BackendChoice::Scalar, || {
            assert_eq!(active_for(ContractMode::Relaxed).name(), "scalar");
        });
    }

    #[test]
    fn fma_kernels_match_scalar_within_tolerance() {
        if !fma_available() {
            return; // Non-FMA host: relaxed dispatch is exact, nothing to compare.
        }
        let fma = relaxed_backend_for(BackendChoice::SimdFma);
        let s = backend_for(BackendChoice::Scalar);
        let (k, n, rows) = (33usize, 17usize, 5usize);
        let a = data(rows * k, 1);
        let b = data(k * n, 2);
        let rel = |x: f32, y: f32| (x - y).abs() / x.abs().max(y.abs()).max(1e-6);

        let mut out_f = vec![0.0f32; rows * n];
        let mut out_s = vec![0.0f32; rows * n];
        fma.gemm_rows(&a, &b, &mut out_f, k, n, false);
        s.gemm_rows(&a, &b, &mut out_s, k, n, false);
        for (f, r) in out_f.iter().zip(&out_s) {
            assert!(rel(*f, *r) < 1e-4, "gemm_rows fma={f} scalar={r}");
        }

        let bt = data(n * k, 3);
        let mut row_f = vec![0.0f32; n];
        let mut row_s = vec![0.0f32; n];
        fma.gemm_a_bt_row(&a[..k], &bt, &mut row_f, k);
        s.gemm_a_bt_row(&a[..k], &bt, &mut row_s, k);
        for (f, r) in row_f.iter().zip(&row_s) {
            assert!(rel(*f, *r) < 1e-4, "gemm_a_bt_row fma={f} scalar={r}");
        }
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        // Pin the config first so the OnceLock is initialised from the clean
        // ambient environment, then override per-thread.
        let ambient = active_choice();
        with_backend(BackendChoice::Scalar, || {
            assert_eq!(active_choice(), BackendChoice::Scalar);
            assert_eq!(active().name(), "scalar");
            with_backend(BackendChoice::Simd, || {
                assert_eq!(active().name(), "simd");
            });
            assert_eq!(active_choice(), BackendChoice::Scalar);
        });
        assert_eq!(active_choice(), ambient);
    }

    #[test]
    fn auto_resolves_to_simd_and_detection_is_stable() {
        assert_eq!(backend_for(BackendChoice::Auto).name(), "simd");
        let level = detected_level();
        assert_eq!(level, detected_level(), "detection must be cached");
        #[cfg(target_arch = "x86_64")]
        assert_ne!(level, SimdLevel::Portable, "x86_64 always has at least SSE");
        assert!(!level.name().is_empty());
    }

    #[test]
    fn backend_env_parse_rejects_garbage_with_typed_error() {
        // `BackendChoice::from_env` reads the real FUSE_BACKEND (left
        // untouched here: it is process-global and the CI matrix owns it);
        // the parse itself is pinned through the shared helper on a
        // test-private knob name.
        let err = fuse_parallel::env::env_choice("FUSE_TEST_BACKEND_KNOB", CHOICES, EXPECTED);
        assert_eq!(err.unwrap(), None);
        std::env::set_var("FUSE_TEST_BACKEND_KNOB", "fpga");
        let err = fuse_parallel::env::env_choice("FUSE_TEST_BACKEND_KNOB", CHOICES, EXPECTED)
            .unwrap_err();
        assert_eq!(err.value, "fpga");
        assert!(err.to_string().contains("scalar|simd|auto|simd-fma"));
        std::env::remove_var("FUSE_TEST_BACKEND_KNOB");
    }
}
