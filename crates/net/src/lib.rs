//! fuse-net — the cluster wire layer: framed, checksummed, loss-tolerant
//! transport plus the shard-serving message vocabulary.
//!
//! The stack, bottom to top:
//!
//! 1. [`frame`] — the `FNET` container every byte on a link travels in:
//!    ASCII magic, version, explicit payload length, FNV-1a-64 trailer
//!    (the same discipline as the `FCKP` checkpoint and `FPLN` plan
//!    containers). Corruption surfaces as typed errors, never as silently
//!    wrong bytes.
//! 2. [`wire`] — primitive little-endian encoders/decoders. Floats travel
//!    as IEEE-754 bit patterns, so every value decodes to exactly the bits
//!    that were encoded: the workspace's bit-reproducibility contract
//!    extends across hosts.
//! 3. [`transport`] — the pluggable link: [`transport::TcpTransport`] for
//!    real/loopback TCP, [`sim::SimTransport`] for deterministic in-memory
//!    links with injectable delay, drop, duplication and reordering.
//! 4. [`rpc`] — stop-and-wait request/response with retransmission and
//!    duplicate suppression: exactly-once request execution over a link
//!    that may drop, duplicate or reorder frames.
//! 5. [`message`] — [`message::WireRequest`] / [`message::WireResponse`],
//!    the operations a host shard serves. They mirror the local shard
//!    worker's command set, so a cluster router drives remote and
//!    in-process shards through the same contract.
//!
//! The crate deliberately knows nothing about shard *execution* — host and
//! remote shard loops live in `fuse-cluster`, which composes these layers.

#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod message;
pub mod rpc;
pub mod sim;
pub mod transport;
pub mod wire;

pub use error::NetError;
pub use frame::{decode_frame, encode_frame, fnv1a64, FRAME_MAGIC, FRAME_VERSION};
pub use message::{
    WireCheckpointMeta, WireCloseReport, WireError, WireFlushReport, WireGauge, WireRequest,
    WireResponse,
};
pub use rpc::{RpcClient, RpcServer};
pub use sim::{sim_pair, FaultConfig, FaultHandle, FaultStats, SimTransport};
pub use transport::{TcpTransport, Transport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
