//! In-memory simulated transport with deterministic fault injection.
//!
//! [`sim_pair`] builds two connected [`SimTransport`] endpoints whose send
//! paths can drop, duplicate, reorder and delay frames according to a
//! seeded, purely sequence-dependent schedule: given the same
//! [`FaultConfig`] and the same sequence of sends, the faults fire at the
//! same positions on every run and every platform. That makes "the serving
//! stream is bit-identical even over a flaky link" a *deterministic* test
//! assertion instead of a flaky one.
//!
//! Faults model a lossy datagram link, the weakest contract [`Transport`]
//! permits; the RPC layer's retransmission/deduplication is what turns it
//! back into exactly-once request execution, and the tests assert (via
//! [`FaultHandle`]) that the faults actually fired — a sim test that never
//! dropped anything would prove nothing.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use fuse_parallel::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use crate::error::NetError;
use crate::frame::{decode_frame, encode_frame};
use crate::transport::Transport;
use crate::Result;

/// Queued frames per direction; far beyond what stop-and-wait RPC can have
/// in flight (retransmissions + duplications of one request), so a send
/// never blocks in practice.
const SIM_QUEUE_CAPACITY: usize = 1024;

/// Deterministic fault schedule for one direction of a simulated link.
///
/// Each `*_1_in` period means "roughly one in N sends" (0 disables the
/// fault); which sends are hit is decided by a seeded LCG advanced once per
/// potential fault, so the schedule depends only on the seed and the send
/// sequence — never on timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the per-endpoint fault schedule.
    pub seed: u64,
    /// Drop one in this many frames (0 = never drop).
    pub drop_1_in: u32,
    /// Duplicate one in this many frames (0 = never duplicate).
    pub dup_1_in: u32,
    /// Hold one in this many frames back so the next frame overtakes it
    /// (0 = never reorder).
    pub reorder_1_in: u32,
    /// Fixed extra latency added to every send.
    pub delay: Duration,
}

impl Default for FaultConfig {
    /// A perfectly well-behaved link: no faults, no delay.
    fn default() -> Self {
        FaultConfig { seed: 0, drop_1_in: 0, dup_1_in: 0, reorder_1_in: 0, delay: Duration::ZERO }
    }
}

impl FaultConfig {
    /// A convenient "everything misbehaves" schedule used by the flaky-link
    /// tests: drops, duplications and reordering all enabled with small
    /// periods so even short exchanges hit every fault class.
    pub fn flaky(seed: u64) -> Self {
        FaultConfig { seed, drop_1_in: 4, dup_1_in: 3, reorder_1_in: 5, delay: Duration::ZERO }
    }
}

/// Counters of the faults one endpoint's send path has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames handed to `send`.
    pub sent: u64,
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames overtaken by a later frame.
    pub reordered: u64,
}

/// Shared view of a [`SimTransport`]'s fault counters, usable after the
/// transport itself has been moved into a shard client.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    stats: Arc<Mutex<FaultStats>>,
}

impl FaultHandle {
    /// A snapshot of the counters.
    pub fn snapshot(&self) -> FaultStats {
        *self.stats.lock().expect("fault stats lock poisoned")
    }
}

/// One endpoint of an in-memory simulated link (see the module docs).
#[derive(Debug)]
pub struct SimTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    faults: FaultConfig,
    rng: u64,
    /// A frame held back by the reorder fault; delivered after the next
    /// send, which thereby overtakes it.
    held: Option<Vec<u8>>,
    stats: Arc<Mutex<FaultStats>>,
}

/// Builds a connected pair of simulated endpoints. `a_faults` governs the
/// first endpoint's sends (the A→B direction), `b_faults` the second's.
pub fn sim_pair(a_faults: FaultConfig, b_faults: FaultConfig) -> (SimTransport, SimTransport) {
    let (a_tx, b_rx) = bounded(SIM_QUEUE_CAPACITY);
    let (b_tx, a_rx) = bounded(SIM_QUEUE_CAPACITY);
    let a = SimTransport {
        tx: a_tx,
        rx: a_rx,
        faults: a_faults,
        rng: splitmix(a_faults.seed),
        held: None,
        stats: Arc::new(Mutex::new(FaultStats::default())),
    };
    let b = SimTransport {
        tx: b_tx,
        rx: b_rx,
        faults: b_faults,
        rng: splitmix(b_faults.seed),
        held: None,
        stats: Arc::new(Mutex::new(FaultStats::default())),
    };
    (a, b)
}

/// One round of SplitMix64 — decorrelates small user seeds before they feed
/// the LCG stream.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimTransport {
    /// A handle to this endpoint's fault counters; clone it out before
    /// moving the transport into a shard client.
    pub fn fault_handle(&self) -> FaultHandle {
        FaultHandle { stats: Arc::clone(&self.stats) }
    }

    fn roll(&mut self) -> u64 {
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.rng >> 33
    }

    /// `true` when the fault with period `one_in` fires on this roll.
    fn fires(&mut self, one_in: u32) -> bool {
        let roll = self.roll();
        one_in != 0 && roll.is_multiple_of(one_in as u64)
    }

    fn deliver(&mut self, frame: Vec<u8>) -> Result<()> {
        self.tx.send(frame).map_err(|_| NetError::Disconnected)
    }
}

impl Transport for SimTransport {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        if !self.faults.delay.is_zero() {
            std::thread::sleep(self.faults.delay);
        }
        let frame = encode_frame(payload);
        self.stats.lock().expect("fault stats lock poisoned").sent += 1;

        // A frame held by a previous reorder fault completes its swap now:
        // the new frame overtakes it unconditionally (no further faults roll
        // for this pair, keeping every held frame's delivery guaranteed as
        // long as the peer keeps talking).
        if let Some(prev) = self.held.take() {
            self.deliver(frame)?;
            return self.deliver(prev);
        }

        // Advance the schedule once per fault class per frame so the fault
        // positions are a pure function of (seed, send index).
        let drop_frame = self.fires(self.faults.drop_1_in);
        let dup_frame = self.fires(self.faults.dup_1_in);
        let reorder_frame = self.fires(self.faults.reorder_1_in);
        let mut stats = self.stats.lock().expect("fault stats lock poisoned");
        if drop_frame {
            stats.dropped += 1;
            return Ok(());
        }
        if dup_frame {
            stats.duplicated += 1;
            drop(stats);
            self.deliver(frame.clone())?;
            return self.deliver(frame);
        }
        if reorder_frame {
            stats.reordered += 1;
            self.held = Some(frame);
            return Ok(());
        }
        drop(stats);
        self.deliver(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(decode_frame(&frame)?.to_vec())),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(t: &mut SimTransport) -> Vec<Vec<u8>> {
        let mut got = Vec::new();
        while let Ok(Some(p)) = t.recv_timeout(Duration::from_millis(1)) {
            got.push(p);
        }
        got
    }

    #[test]
    fn a_clean_link_preserves_order_and_content() {
        let (mut a, mut b) = sim_pair(FaultConfig::default(), FaultConfig::default());
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        assert_eq!(drain(&mut b), (0..10u8).map(|i| vec![i]).collect::<Vec<_>>());
        b.send(b"reply").unwrap();
        assert_eq!(drain(&mut a), vec![b"reply".to_vec()]);
        assert_eq!(a.fault_handle().snapshot(), FaultStats { sent: 10, ..FaultStats::default() });
    }

    #[test]
    fn fault_schedule_is_deterministic_and_actually_fires() {
        let run = || {
            let (mut a, mut b) = sim_pair(FaultConfig::flaky(42), FaultConfig::default());
            for i in 0..100u8 {
                a.send(&[i]).unwrap();
            }
            (drain(&mut b), a.fault_handle().snapshot())
        };
        let (delivered1, stats1) = run();
        let (delivered2, stats2) = run();
        assert_eq!(delivered1, delivered2, "same seed + same sends = same deliveries");
        assert_eq!(stats1, stats2);
        assert!(stats1.dropped > 0, "the flaky schedule must actually drop");
        assert!(stats1.duplicated > 0, "... and duplicate");
        assert!(stats1.reordered > 0, "... and reorder");
        assert_ne!(
            delivered1,
            (0..100u8).map(|i| vec![i]).collect::<Vec<_>>(),
            "the delivered stream must differ from the sent stream"
        );
    }

    #[test]
    fn a_held_frame_is_released_by_the_next_send() {
        // Find a seed whose first fault is a reorder, then verify the swap.
        let mut cfg = FaultConfig { reorder_1_in: 1, ..FaultConfig::default() }; // always reorder
        cfg.seed = 7;
        let (mut a, mut b) = sim_pair(cfg, FaultConfig::default());
        a.send(b"first").unwrap();
        assert_eq!(drain(&mut b), Vec::<Vec<u8>>::new(), "the first frame is held");
        a.send(b"second").unwrap();
        assert_eq!(
            drain(&mut b),
            vec![b"second".to_vec(), b"first".to_vec()],
            "the second frame overtakes the held first"
        );
    }

    #[test]
    fn dropping_an_endpoint_disconnects_the_peer() {
        let (mut a, b) = sim_pair(FaultConfig::default(), FaultConfig::default());
        drop(b);
        assert_eq!(a.send(b"x").unwrap_err(), NetError::Disconnected);
        assert_eq!(a.recv_timeout(Duration::from_millis(1)).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn delay_is_applied_without_changing_content() {
        let cfg = FaultConfig { delay: Duration::from_millis(5), ..FaultConfig::default() };
        let (mut a, mut b) = sim_pair(cfg, FaultConfig::default());
        let start = std::time::Instant::now();
        a.send(b"slow").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(drain(&mut b), vec![b"slow".to_vec()]);
    }
}
