//! The shard-serving message vocabulary and its binary codec.
//!
//! [`WireRequest`] / [`WireResponse`] mirror the command set a local shard
//! worker understands, so a remote host shard is driven by exactly the same
//! operations as an in-process one — the router cannot tell them apart.
//! Every domain value crosses the wire bit-exactly: tensors and joint
//! predictions as IEEE-754 bit patterns, fine-tuned parameters as `FCKP`
//! checkpoint bytes, compiled plans as `.fplan` bytes. That is what makes
//! "migrate a session to another host, outputs stay bit-identical" a
//! provable property instead of a hope.
//!
//! Encoding discipline (see `crate::wire`): little-endian throughout, `u8`
//! variant tags, `u64` collection lengths, strings as length-prefixed
//! UTF-8. Decoders consume the entire buffer ([`crate::wire::Reader::finish`])
//! so trailing garbage is an error.

use fuse_core::{FineTuneConfig, FineTuneResult, FineTuneScope, PoseError};
use fuse_dataset::{EncodedDataset, EncodedSample};
use fuse_dataset::{FeatureMapBuilder, FrameFusion};
use fuse_nn::{AxisMae, Checkpoint};
use fuse_radar::{PointCloudFrame, RadarPoint};
use fuse_serve::{
    LatencyRecorder, ServeError, ServeResponse, SessionConfig, SessionState, SloClass, Stage,
};
use fuse_skeleton::Movement;
use fuse_tensor::{Normalizer, Tensor};

use crate::error::NetError;
use crate::wire::{Reader, Writer};
use crate::Result;

/// A request from the cluster router to a host shard.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// Open a session from its typed configuration (id, optional SLO class
    /// and optional fusion / feature-map overrides).
    Open {
        /// The session's full configuration, bit-exact.
        config: SessionConfig,
    },
    /// Close a session and report what it learned / left unserved.
    Close {
        /// Session id.
        id: u64,
    },
    /// Submit one radar frame to a session.
    Submit {
        /// Session id.
        id: u64,
        /// The frame, bit-exact.
        frame: PointCloudFrame,
    },
    /// Advance a session past a missing frame (a deterministic dropout
    /// tick of its streaming-op state).
    Tick {
        /// Session id.
        id: u64,
    },
    /// Override one SLO class's effective queue capacity on the shard
    /// (pushed by the router's adaptive backpressure controller).
    SetCapacity {
        /// The class whose capacity changes.
        class: SloClass,
        /// The new effective per-session queue capacity.
        queue_capacity: u64,
    },
    /// Fine-tune a session's private model on encoded samples.
    Adapt {
        /// Session id.
        id: u64,
        /// Training data, feature maps already encoded.
        data: EncodedDataset,
        /// Fine-tuning hyper-parameters.
        config: FineTuneConfig,
    },
    /// Drain every queued micro-batch until the shard is idle.
    Flush,
    /// Collect the responses ready since the last poll.
    Poll,
    /// Snapshot latency samples and shard gauges (drains the recorder).
    Snapshot,
    /// Phase one of a checkpoint hot-swap: validate and stage `FCKP` bytes.
    PrepareCheckpoint {
        /// The serialized checkpoint, verbatim `FCKP` container bytes.
        bytes: Vec<u8>,
    },
    /// Phase one of a plan hot-swap: validate and stage `.fplan` bytes.
    PreparePlan {
        /// The serialized plan, verbatim `FPLN` container bytes.
        bytes: Vec<u8>,
        /// Model name recorded for diagnostics.
        name: String,
    },
    /// Phase two: atomically activate the staged swap.
    CommitSwap,
    /// Phase two alternative: discard the staged swap.
    AbortSwap,
    /// Extract a session's full state for migration (closes it here).
    ExportSession {
        /// Session id.
        id: u64,
    },
    /// Install a migrated session's state (fails on id collision).
    ImportSession {
        /// The exported state, bit-exact.
        state: Box<SessionState>,
    },
    /// Stop serving: the shard acknowledges, then its loop exits.
    Shutdown,
}

/// A host shard's reply to one [`WireRequest`].
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// The session is open.
    Opened,
    /// The session closed; its learning/backlog summary.
    Closed(WireCloseReport),
    /// The frame was accepted into the shard's queue.
    Submitted,
    /// The dropout tick was accepted.
    Ticked,
    /// The effective capacity override is in force.
    CapacitySet,
    /// Fine-tuning finished with these per-epoch errors.
    Adapted(FineTuneResult),
    /// The shard is idle; how much work the flush performed.
    Flushed(WireFlushReport),
    /// The responses ready since the last poll, in serving order.
    Polled(Vec<ServeResponse>),
    /// Latency samples (drained) and the shard gauge.
    Snapshot {
        /// The shard's latency samples since the previous snapshot.
        recorder: Box<LatencyRecorder>,
        /// Point-in-time shard counters.
        gauge: WireGauge,
    },
    /// The swap payload was validated and staged.
    Prepared(WireCheckpointMeta),
    /// The staged swap is now active at this model version.
    Committed {
        /// The shard's base-model version after the swap.
        version: u64,
    },
    /// The staged swap was discarded.
    Aborted,
    /// The session's state, extracted for migration.
    Exported(Box<SessionState>),
    /// The migrated session is installed and serving.
    Imported,
    /// Acknowledges [`WireRequest::Shutdown`]; no further replies follow.
    ShuttingDown,
    /// The request failed on the shard.
    Error(WireError),
}

/// What a closed session left behind (mirrors the local close report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCloseReport {
    /// `true` when the session had a private fine-tuned model.
    pub adapted: bool,
    /// Frame indices still queued when the session closed — returned for
    /// accounting, never silently dropped.
    pub unserved: Vec<u64>,
}

/// Everything one flush barrier handed back.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFlushReport {
    /// Every response produced since the last collection.
    pub responses: Vec<ServeResponse>,
    /// `(session, frame)` pairs dropped by backpressure since the last
    /// flush.
    pub dropped: Vec<(u64, u64)>,
    /// `(session, frame)` pairs merged away by coalescing since the last
    /// flush.
    pub merged: Vec<(u64, u64)>,
}

/// Identity of a staged checkpoint, echoed back from phase one of a swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCheckpointMeta {
    /// Model name recorded in the checkpoint.
    pub model_name: String,
    /// Number of parameter tensors staged.
    pub param_len: u64,
}

/// Point-in-time shard counters (wire mirror of the cluster's shard gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireGauge {
    /// Shard index within the cluster.
    pub shard: u64,
    /// Open sessions.
    pub sessions: u64,
    /// Frames queued and not yet inferred.
    pub queue_depth: u64,
    /// Session with the deepest queue, if any.
    pub deepest_queue: Option<(u64, u64)>,
    /// Responses ready to poll.
    pub ready: u64,
    /// Frames dropped by backpressure since start.
    pub dropped_frames: u64,
    /// Frames merged by coalescing since start.
    pub merged_frames: u64,
    /// Submits that blocked on a full queue since start.
    pub blocked_submits: u64,
    /// Micro-batch steps executed since start.
    pub steps: u64,
    /// Responses produced since start.
    pub responses: u64,
    /// Current base-model version.
    pub model_version: u64,
}

/// A shard-side failure, encoded so the typed variants survive the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The request referenced a session the shard does not have.
    UnknownSession(u64),
    /// The session id is already open on the shard.
    DuplicateSession(u64),
    /// Any other failure, carried as its display string.
    Other(String),
}

impl From<&ServeError> for WireError {
    fn from(e: &ServeError) -> Self {
        match e {
            ServeError::UnknownSession(id) => WireError::UnknownSession(*id),
            ServeError::DuplicateSession(id) => WireError::DuplicateSession(*id),
            other => WireError::Other(other.to_string()),
        }
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::UnknownSession(id) => ServeError::UnknownSession(id),
            WireError::DuplicateSession(id) => ServeError::DuplicateSession(id),
            WireError::Other(msg) => ServeError::Remote(msg),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared-type codecs.
// ---------------------------------------------------------------------------

fn encode_frame_msg(w: &mut Writer, frame: &PointCloudFrame) {
    w.u64(frame.index as u64);
    w.f64(frame.timestamp_s);
    w.u64(frame.points.len() as u64);
    for p in &frame.points {
        w.f32(p.x);
        w.f32(p.y);
        w.f32(p.z);
        w.f32(p.doppler);
        w.f32(p.intensity);
    }
}

fn decode_frame_msg(r: &mut Reader<'_>) -> Result<PointCloudFrame> {
    let index = r.usize("frame index")?;
    let timestamp_s = r.f64("frame timestamp")?;
    let n = r.len_prefix(20, "point count")?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(RadarPoint::new(
            r.f32("point x")?,
            r.f32("point y")?,
            r.f32("point z")?,
            r.f32("point doppler")?,
            r.f32("point intensity")?,
        ));
    }
    Ok(PointCloudFrame::new(index, timestamp_s, points))
}

fn encode_tensor(w: &mut Writer, t: &Tensor) {
    let dims = t.dims();
    w.u64(dims.len() as u64);
    for &d in dims {
        w.u64(d as u64);
    }
    w.f32_slice(t.as_slice());
}

fn decode_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let rank = r.len_prefix(8, "tensor rank")?;
    let dims: Vec<usize> = (0..rank).map(|_| r.usize("tensor dim")).collect::<Result<_>>()?;
    let data = r.f32_vec("tensor data")?;
    Tensor::from_vec(data, &dims).map_err(|e| NetError::Decode(format!("tensor: {e}")))
}

fn encode_recorder(w: &mut Writer, rec: &LatencyRecorder) {
    w.f64(rec.budget_ms());
    w.u64(rec.sample_window() as u64);
    w.u64(rec.legacy_fallback_frames());
    for stage in Stage::ALL {
        let samples: Vec<f64> = rec.stage_samples(stage).collect();
        w.u64(samples.len() as u64);
        for s in samples {
            w.f64(s);
        }
    }
}

fn decode_recorder(r: &mut Reader<'_>) -> Result<LatencyRecorder> {
    let budget = r.f64("latency budget")?;
    let window = r.usize("sample window")?;
    let fallback = r.u64("fallback frames")?;
    let mut rec = LatencyRecorder::new(budget).with_sample_window(window);
    rec.record_legacy_fallback(fallback);
    for stage in Stage::ALL {
        let n = r.len_prefix(8, "latency samples")?;
        for _ in 0..n {
            rec.record(stage, r.f64("latency sample")?);
        }
    }
    Ok(rec)
}

fn encode_checkpoint_opt(w: &mut Writer, ckpt: &Option<Checkpoint>) {
    match ckpt {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            w.bytes(&c.to_binary());
        }
    }
}

fn decode_checkpoint_opt(r: &mut Reader<'_>) -> Result<Option<Checkpoint>> {
    match r.u8("checkpoint flag")? {
        0 => Ok(None),
        1 => {
            let bytes = r.blob("checkpoint bytes")?;
            Checkpoint::from_binary(&bytes)
                .map(Some)
                .map_err(|e| NetError::Decode(format!("checkpoint: {e}")))
        }
        other => Err(NetError::Decode(format!("bad checkpoint flag {other}"))),
    }
}

/// One byte for an optional SLO class: `0` = unset, then the classes in
/// `SloClass::ALL` order. The mapping is part of the wire contract — a new
/// class appends, never reorders.
fn encode_slo_opt(w: &mut Writer, slo: Option<SloClass>) {
    w.u8(match slo {
        None => 0,
        Some(SloClass::Clinical) => 1,
        Some(SloClass::Interactive) => 2,
        Some(SloClass::Dashboard) => 3,
    });
}

fn decode_slo_opt(r: &mut Reader<'_>) -> Result<Option<SloClass>> {
    Ok(match r.u8("slo class")? {
        0 => None,
        1 => Some(SloClass::Clinical),
        2 => Some(SloClass::Interactive),
        3 => Some(SloClass::Dashboard),
        other => return Err(NetError::Decode(format!("bad slo class {other}"))),
    })
}

fn encode_session_config(w: &mut Writer, c: &SessionConfig) {
    w.u64(c.id());
    encode_slo_opt(w, c.slo_class());
    match c.fusion_override() {
        None => w.u8(0),
        Some(fusion) => {
            w.u8(1);
            w.u64(fusion.half_window() as u64);
        }
    }
    match c.feature_map_override() {
        None => w.u8(0),
        Some(builder) => {
            w.u8(1);
            w.u64(builder.height() as u64);
            w.u64(builder.width() as u64);
        }
    }
}

fn decode_session_config(r: &mut Reader<'_>) -> Result<SessionConfig> {
    let mut config = SessionConfig::new(r.u64("session id")?);
    if let Some(slo) = decode_slo_opt(r)? {
        config = config.slo(slo);
    }
    match r.u8("fusion flag")? {
        0 => {}
        1 => config = config.fusion(FrameFusion::new(r.usize("fusion half window")?)),
        other => return Err(NetError::Decode(format!("bad fusion flag {other}"))),
    }
    match r.u8("feature map flag")? {
        0 => {}
        1 => {
            let height = r.usize("feature map height")?;
            let width = r.usize("feature map width")?;
            config = config.feature_map(FeatureMapBuilder::new(height, width));
        }
        other => return Err(NetError::Decode(format!("bad feature map flag {other}"))),
    }
    Ok(config)
}

fn encode_session_state(w: &mut Writer, s: &SessionState) {
    w.u64(s.id);
    encode_slo_opt(w, s.slo);
    w.u64(s.fusion.half_window() as u64);
    w.u64(s.frames_seen);
    w.u64(s.ticks_seen);
    w.u64(s.history.len() as u64);
    for frame in &s.history {
        encode_frame_msg(w, frame);
    }
    w.u64(s.slot_mask.len() as u64);
    for &occupied in &s.slot_mask {
        w.u8(occupied as u8);
    }
    encode_checkpoint_opt(w, &s.checkpoint);
    w.u64(s.pending.len() as u64);
    for (frame_index, features) in &s.pending {
        w.u64(*frame_index);
        encode_tensor(w, features);
    }
}

fn decode_session_state(r: &mut Reader<'_>) -> Result<SessionState> {
    let id = r.u64("session id")?;
    let slo = decode_slo_opt(r)?;
    let fusion = FrameFusion::new(r.usize("fusion half window")?);
    let frames_seen = r.u64("frames seen")?;
    let ticks_seen = r.u64("ticks seen")?;
    let n = r.len_prefix(20, "history length")?;
    let history = (0..n).map(|_| decode_frame_msg(r)).collect::<Result<_>>()?;
    let n = r.len_prefix(1, "slot mask length")?;
    let slot_mask = (0..n)
        .map(|_| match r.u8("slot mask entry")? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(NetError::Decode(format!("bad slot mask entry {other}"))),
        })
        .collect::<Result<_>>()?;
    let checkpoint = decode_checkpoint_opt(r)?;
    let n = r.len_prefix(8, "pending length")?;
    let pending = (0..n)
        .map(|_| Ok((r.u64("pending frame index")?, decode_tensor(r)?)))
        .collect::<Result<_>>()?;
    Ok(SessionState {
        id,
        slo,
        fusion,
        frames_seen,
        ticks_seen,
        history,
        slot_mask,
        checkpoint,
        pending,
    })
}

fn encode_dataset_msg(w: &mut Writer, data: &EncodedDataset) {
    w.u64(data.samples().len() as u64);
    for s in data.samples() {
        encode_tensor(w, &s.input);
        w.f32_slice(&s.label);
        w.u64(s.subject_id as u64);
        w.u8(s.movement.index() as u8);
        w.u64(s.sequence_index as u64);
    }
    w.f32_slice(data.normalizer().means());
    w.f32_slice(data.normalizer().stds());
    for d in data.input_dims() {
        w.u64(d as u64);
    }
}

fn decode_dataset_msg(r: &mut Reader<'_>) -> Result<EncodedDataset> {
    let n = r.len_prefix(8, "sample count")?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let input = decode_tensor(r)?;
        let label = r.f32_vec("sample label")?;
        let subject_id = r.usize("subject id")?;
        let movement_idx = r.u8("movement index")? as usize;
        let movement = *Movement::ALL
            .get(movement_idx)
            .ok_or_else(|| NetError::Decode(format!("bad movement index {movement_idx}")))?;
        let sequence_index = r.usize("sequence index")?;
        samples.push(EncodedSample { input, label, subject_id, movement, sequence_index });
    }
    let means = r.f32_vec("normalizer means")?;
    let stds = r.f32_vec("normalizer stds")?;
    if means.len() != stds.len() {
        return Err(NetError::Decode("normalizer means/stds length mismatch".into()));
    }
    let normalizer = Normalizer::from_stats(means, stds);
    let input_dims = [r.usize("input dim 0")?, r.usize("input dim 1")?, r.usize("input dim 2")?];
    Ok(EncodedDataset::from_parts(samples, normalizer, input_dims))
}

fn encode_finetune_config(w: &mut Writer, c: &FineTuneConfig) {
    w.u64(c.epochs as u64);
    w.u64(c.batch_size as u64);
    w.f32(c.learning_rate);
    w.u8(match c.scope {
        FineTuneScope::AllLayers => 0,
        FineTuneScope::LastLayer => 1,
    });
    w.u64(c.seed);
}

fn decode_finetune_config(r: &mut Reader<'_>) -> Result<FineTuneConfig> {
    let epochs = r.usize("epochs")?;
    let batch_size = r.usize("batch size")?;
    let learning_rate = r.f32("learning rate")?;
    let scope = match r.u8("scope")? {
        0 => FineTuneScope::AllLayers,
        1 => FineTuneScope::LastLayer,
        other => return Err(NetError::Decode(format!("bad fine-tune scope {other}"))),
    };
    let seed = r.u64("seed")?;
    Ok(FineTuneConfig { epochs, batch_size, learning_rate, scope, seed })
}

fn encode_pose_errors(w: &mut Writer, errors: &[PoseError]) {
    w.u64(errors.len() as u64);
    for e in errors {
        w.f32(e.meters.x);
        w.f32(e.meters.y);
        w.f32(e.meters.z);
    }
}

fn decode_pose_errors(r: &mut Reader<'_>) -> Result<Vec<PoseError>> {
    let n = r.len_prefix(12, "pose error count")?;
    (0..n)
        .map(|_| {
            Ok(PoseError {
                meters: AxisMae { x: r.f32("mae x")?, y: r.f32("mae y")?, z: r.f32("mae z")? },
            })
        })
        .collect()
}

fn encode_finetune_result(w: &mut Writer, res: &FineTuneResult) {
    encode_pose_errors(w, &res.new_data_error);
    encode_pose_errors(w, &res.original_data_error);
    w.f32_slice(&res.train_loss);
}

fn decode_finetune_result(r: &mut Reader<'_>) -> Result<FineTuneResult> {
    Ok(FineTuneResult {
        new_data_error: decode_pose_errors(r)?,
        original_data_error: decode_pose_errors(r)?,
        train_loss: r.f32_vec("train loss")?,
    })
}

fn encode_serve_response(w: &mut Writer, resp: &ServeResponse) {
    w.u64(resp.session_id);
    w.u64(resp.frame_index);
    w.u64(resp.model_version);
    w.u8(resp.adapted as u8);
    w.f32_slice(&resp.joints);
}

fn decode_serve_response(r: &mut Reader<'_>) -> Result<ServeResponse> {
    Ok(ServeResponse {
        session_id: r.u64("response session")?,
        frame_index: r.u64("response frame")?,
        model_version: r.u64("response version")?,
        adapted: match r.u8("response adapted")? {
            0 => false,
            1 => true,
            other => return Err(NetError::Decode(format!("bad adapted flag {other}"))),
        },
        joints: r.f32_vec("response joints")?,
    })
}

fn encode_index_pairs(w: &mut Writer, pairs: &[(u64, u64)]) {
    w.u64(pairs.len() as u64);
    for &(session, frame) in pairs {
        w.u64(session);
        w.u64(frame);
    }
}

fn decode_index_pairs(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<(u64, u64)>> {
    let n = r.len_prefix(16, what)?;
    (0..n).map(|_| Ok((r.u64(what)?, r.u64(what)?))).collect()
}

fn encode_gauge(w: &mut Writer, g: &WireGauge) {
    w.u64(g.shard);
    w.u64(g.sessions);
    w.u64(g.queue_depth);
    match g.deepest_queue {
        None => w.u8(0),
        Some((id, depth)) => {
            w.u8(1);
            w.u64(id);
            w.u64(depth);
        }
    }
    w.u64(g.ready);
    w.u64(g.dropped_frames);
    w.u64(g.merged_frames);
    w.u64(g.blocked_submits);
    w.u64(g.steps);
    w.u64(g.responses);
    w.u64(g.model_version);
}

fn decode_gauge(r: &mut Reader<'_>) -> Result<WireGauge> {
    Ok(WireGauge {
        shard: r.u64("gauge shard")?,
        sessions: r.u64("gauge sessions")?,
        queue_depth: r.u64("gauge queue depth")?,
        deepest_queue: match r.u8("gauge deepest flag")? {
            0 => None,
            1 => Some((r.u64("gauge deepest id")?, r.u64("gauge deepest depth")?)),
            other => return Err(NetError::Decode(format!("bad deepest-queue flag {other}"))),
        },
        ready: r.u64("gauge ready")?,
        dropped_frames: r.u64("gauge dropped")?,
        merged_frames: r.u64("gauge merged")?,
        blocked_submits: r.u64("gauge blocked")?,
        steps: r.u64("gauge steps")?,
        responses: r.u64("gauge responses")?,
        model_version: r.u64("gauge version")?,
    })
}

fn encode_wire_error(w: &mut Writer, e: &WireError) {
    match e {
        WireError::UnknownSession(id) => {
            w.u8(0);
            w.u64(*id);
        }
        WireError::DuplicateSession(id) => {
            w.u8(1);
            w.u64(*id);
        }
        WireError::Other(msg) => {
            w.u8(2);
            w.str(msg);
        }
    }
}

fn decode_wire_error(r: &mut Reader<'_>) -> Result<WireError> {
    Ok(match r.u8("error tag")? {
        0 => WireError::UnknownSession(r.u64("error session")?),
        1 => WireError::DuplicateSession(r.u64("error session")?),
        2 => WireError::Other(r.str("error message")?),
        other => return Err(NetError::Decode(format!("bad error tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Top-level message codecs.
// ---------------------------------------------------------------------------

const REQ_OPEN: u8 = 1;
const REQ_CLOSE: u8 = 2;
const REQ_SUBMIT: u8 = 3;
const REQ_ADAPT: u8 = 4;
const REQ_FLUSH: u8 = 5;
const REQ_POLL: u8 = 6;
const REQ_SNAPSHOT: u8 = 7;
const REQ_PREPARE_CHECKPOINT: u8 = 8;
const REQ_PREPARE_PLAN: u8 = 9;
const REQ_COMMIT_SWAP: u8 = 10;
const REQ_ABORT_SWAP: u8 = 11;
const REQ_EXPORT_SESSION: u8 = 12;
const REQ_IMPORT_SESSION: u8 = 13;
const REQ_SHUTDOWN: u8 = 14;
const REQ_TICK: u8 = 15;
const REQ_SET_CAPACITY: u8 = 16;

const RESP_OPENED: u8 = 1;
const RESP_CLOSED: u8 = 2;
const RESP_SUBMITTED: u8 = 3;
const RESP_ADAPTED: u8 = 4;
const RESP_FLUSHED: u8 = 5;
const RESP_POLLED: u8 = 6;
const RESP_SNAPSHOT: u8 = 7;
const RESP_PREPARED: u8 = 8;
const RESP_COMMITTED: u8 = 9;
const RESP_ABORTED: u8 = 10;
const RESP_EXPORTED: u8 = 11;
const RESP_IMPORTED: u8 = 12;
const RESP_SHUTTING_DOWN: u8 = 13;
const RESP_ERROR: u8 = 14;
const RESP_TICKED: u8 = 15;
const RESP_CAPACITY_SET: u8 = 16;

impl WireRequest {
    /// Encodes the request as an RPC body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WireRequest::Open { config } => {
                w.u8(REQ_OPEN);
                encode_session_config(&mut w, config);
            }
            WireRequest::Close { id } => {
                w.u8(REQ_CLOSE);
                w.u64(*id);
            }
            WireRequest::Submit { id, frame } => {
                w.u8(REQ_SUBMIT);
                w.u64(*id);
                encode_frame_msg(&mut w, frame);
            }
            WireRequest::Tick { id } => {
                w.u8(REQ_TICK);
                w.u64(*id);
            }
            WireRequest::SetCapacity { class, queue_capacity } => {
                w.u8(REQ_SET_CAPACITY);
                encode_slo_opt(&mut w, Some(*class));
                w.u64(*queue_capacity);
            }
            WireRequest::Adapt { id, data, config } => {
                w.u8(REQ_ADAPT);
                w.u64(*id);
                encode_dataset_msg(&mut w, data);
                encode_finetune_config(&mut w, config);
            }
            WireRequest::Flush => w.u8(REQ_FLUSH),
            WireRequest::Poll => w.u8(REQ_POLL),
            WireRequest::Snapshot => w.u8(REQ_SNAPSHOT),
            WireRequest::PrepareCheckpoint { bytes } => {
                w.u8(REQ_PREPARE_CHECKPOINT);
                w.bytes(bytes);
            }
            WireRequest::PreparePlan { bytes, name } => {
                w.u8(REQ_PREPARE_PLAN);
                w.bytes(bytes);
                w.str(name);
            }
            WireRequest::CommitSwap => w.u8(REQ_COMMIT_SWAP),
            WireRequest::AbortSwap => w.u8(REQ_ABORT_SWAP),
            WireRequest::ExportSession { id } => {
                w.u8(REQ_EXPORT_SESSION);
                w.u64(*id);
            }
            WireRequest::ImportSession { state } => {
                w.u8(REQ_IMPORT_SESSION);
                encode_session_state(&mut w, state);
            }
            WireRequest::Shutdown => w.u8(REQ_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decodes a request from an RPC body.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] / [`NetError::Decode`] on any
    /// malformed, short or over-long encoding.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let req = match r.u8("request tag")? {
            REQ_OPEN => WireRequest::Open { config: decode_session_config(&mut r)? },
            REQ_CLOSE => WireRequest::Close { id: r.u64("session id")? },
            REQ_SUBMIT => {
                WireRequest::Submit { id: r.u64("session id")?, frame: decode_frame_msg(&mut r)? }
            }
            REQ_ADAPT => WireRequest::Adapt {
                id: r.u64("session id")?,
                data: decode_dataset_msg(&mut r)?,
                config: decode_finetune_config(&mut r)?,
            },
            REQ_FLUSH => WireRequest::Flush,
            REQ_POLL => WireRequest::Poll,
            REQ_SNAPSHOT => WireRequest::Snapshot,
            REQ_PREPARE_CHECKPOINT => {
                WireRequest::PrepareCheckpoint { bytes: r.blob("checkpoint bytes")? }
            }
            REQ_PREPARE_PLAN => {
                WireRequest::PreparePlan { bytes: r.blob("plan bytes")?, name: r.str("plan name")? }
            }
            REQ_COMMIT_SWAP => WireRequest::CommitSwap,
            REQ_ABORT_SWAP => WireRequest::AbortSwap,
            REQ_EXPORT_SESSION => WireRequest::ExportSession { id: r.u64("session id")? },
            REQ_IMPORT_SESSION => {
                WireRequest::ImportSession { state: Box::new(decode_session_state(&mut r)?) }
            }
            REQ_SHUTDOWN => WireRequest::Shutdown,
            REQ_TICK => WireRequest::Tick { id: r.u64("session id")? },
            REQ_SET_CAPACITY => {
                let class = decode_slo_opt(&mut r)?.ok_or_else(|| {
                    NetError::Decode("set-capacity requires a concrete slo class".into())
                })?;
                WireRequest::SetCapacity { class, queue_capacity: r.u64("queue capacity")? }
            }
            other => return Err(NetError::Decode(format!("bad request tag {other}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

impl WireResponse {
    /// Encodes the response as an RPC body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WireResponse::Opened => w.u8(RESP_OPENED),
            WireResponse::Closed(report) => {
                w.u8(RESP_CLOSED);
                w.u8(report.adapted as u8);
                w.u64(report.unserved.len() as u64);
                for &frame_index in &report.unserved {
                    w.u64(frame_index);
                }
            }
            WireResponse::Submitted => w.u8(RESP_SUBMITTED),
            WireResponse::Ticked => w.u8(RESP_TICKED),
            WireResponse::CapacitySet => w.u8(RESP_CAPACITY_SET),
            WireResponse::Adapted(result) => {
                w.u8(RESP_ADAPTED);
                encode_finetune_result(&mut w, result);
            }
            WireResponse::Flushed(report) => {
                w.u8(RESP_FLUSHED);
                w.u64(report.responses.len() as u64);
                for resp in &report.responses {
                    encode_serve_response(&mut w, resp);
                }
                encode_index_pairs(&mut w, &report.dropped);
                encode_index_pairs(&mut w, &report.merged);
            }
            WireResponse::Polled(responses) => {
                w.u8(RESP_POLLED);
                w.u64(responses.len() as u64);
                for resp in responses {
                    encode_serve_response(&mut w, resp);
                }
            }
            WireResponse::Snapshot { recorder, gauge } => {
                w.u8(RESP_SNAPSHOT);
                encode_recorder(&mut w, recorder);
                encode_gauge(&mut w, gauge);
            }
            WireResponse::Prepared(meta) => {
                w.u8(RESP_PREPARED);
                w.str(&meta.model_name);
                w.u64(meta.param_len);
            }
            WireResponse::Committed { version } => {
                w.u8(RESP_COMMITTED);
                w.u64(*version);
            }
            WireResponse::Aborted => w.u8(RESP_ABORTED),
            WireResponse::Exported(state) => {
                w.u8(RESP_EXPORTED);
                encode_session_state(&mut w, state);
            }
            WireResponse::Imported => w.u8(RESP_IMPORTED),
            WireResponse::ShuttingDown => w.u8(RESP_SHUTTING_DOWN),
            WireResponse::Error(e) => {
                w.u8(RESP_ERROR);
                encode_wire_error(&mut w, e);
            }
        }
        w.into_bytes()
    }

    /// Decodes a response from an RPC body.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] / [`NetError::Decode`] on any
    /// malformed, short or over-long encoding.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let resp = match r.u8("response tag")? {
            RESP_OPENED => WireResponse::Opened,
            RESP_CLOSED => {
                let adapted = match r.u8("close adapted")? {
                    0 => false,
                    1 => true,
                    other => return Err(NetError::Decode(format!("bad adapted flag {other}"))),
                };
                let n = r.len_prefix(8, "close unserved")?;
                let unserved = (0..n).map(|_| r.u64("unserved frame")).collect::<Result<_>>()?;
                WireResponse::Closed(WireCloseReport { adapted, unserved })
            }
            RESP_SUBMITTED => WireResponse::Submitted,
            RESP_TICKED => WireResponse::Ticked,
            RESP_CAPACITY_SET => WireResponse::CapacitySet,
            RESP_ADAPTED => WireResponse::Adapted(decode_finetune_result(&mut r)?),
            RESP_FLUSHED => {
                let n = r.len_prefix(29, "flush response count")?;
                let responses =
                    (0..n).map(|_| decode_serve_response(&mut r)).collect::<Result<_>>()?;
                WireResponse::Flushed(WireFlushReport {
                    responses,
                    dropped: decode_index_pairs(&mut r, "flush dropped")?,
                    merged: decode_index_pairs(&mut r, "flush merged")?,
                })
            }
            RESP_POLLED => {
                let n = r.len_prefix(29, "response count")?;
                let responses =
                    (0..n).map(|_| decode_serve_response(&mut r)).collect::<Result<_>>()?;
                WireResponse::Polled(responses)
            }
            RESP_SNAPSHOT => WireResponse::Snapshot {
                recorder: Box::new(decode_recorder(&mut r)?),
                gauge: decode_gauge(&mut r)?,
            },
            RESP_PREPARED => WireResponse::Prepared(WireCheckpointMeta {
                model_name: r.str("checkpoint model name")?,
                param_len: r.u64("checkpoint param count")?,
            }),
            RESP_COMMITTED => WireResponse::Committed { version: r.u64("model version")? },
            RESP_ABORTED => WireResponse::Aborted,
            RESP_EXPORTED => WireResponse::Exported(Box::new(decode_session_state(&mut r)?)),
            RESP_IMPORTED => WireResponse::Imported,
            RESP_SHUTTING_DOWN => WireResponse::ShuttingDown,
            RESP_ERROR => WireResponse::Error(decode_wire_error(&mut r)?),
            other => return Err(NetError::Decode(format!("bad response tag {other}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(index: usize) -> PointCloudFrame {
        PointCloudFrame::new(
            index,
            0.1 * index as f64,
            vec![
                RadarPoint::new(1.5, -2.25, 0.75, -0.0, f32::MIN_POSITIVE),
                RadarPoint::new(-1.0, 2.0, 3.0, 4.0, 5.0),
            ],
        )
    }

    fn assert_request_round_trips(req: &WireRequest) -> WireRequest {
        WireRequest::decode(&req.encode()).expect("request must decode")
    }

    fn assert_response_round_trips(resp: &WireResponse) -> WireResponse {
        WireResponse::decode(&resp.encode()).expect("response must decode")
    }

    #[test]
    fn simple_requests_round_trip() {
        for req in [
            WireRequest::Open { config: SessionConfig::new(7) },
            WireRequest::Close { id: u64::MAX },
            WireRequest::Tick { id: 12 },
            WireRequest::SetCapacity { class: SloClass::Dashboard, queue_capacity: 3 },
            WireRequest::Flush,
            WireRequest::Poll,
            WireRequest::Snapshot,
            WireRequest::CommitSwap,
            WireRequest::AbortSwap,
            WireRequest::ExportSession { id: 3 },
            WireRequest::Shutdown,
            WireRequest::PrepareCheckpoint { bytes: vec![1, 2, 3] },
            WireRequest::PreparePlan { bytes: vec![9; 40], name: "mars-cnn".into() },
        ] {
            // Debug formatting is a faithful structural witness for these
            // payload-free / plain-bytes variants.
            assert_eq!(format!("{:?}", assert_request_round_trips(&req)), format!("{req:?}"));
        }
    }

    #[test]
    fn open_round_trips_every_session_config_shape() {
        // Every combination of set/unset options must survive the wire —
        // the config IS the session's identity on a remote shard.
        let configs = [
            SessionConfig::new(0),
            SessionConfig::new(1).slo(SloClass::Clinical),
            SessionConfig::new(2).slo(SloClass::Interactive).fusion(FrameFusion::new(3)),
            SessionConfig::new(3)
                .slo(SloClass::Dashboard)
                .fusion(FrameFusion::new(0))
                .feature_map(FeatureMapBuilder::new(16, 12)),
            SessionConfig::new(u64::MAX).feature_map(FeatureMapBuilder::new(8, 8)),
        ];
        for config in configs {
            let WireRequest::Open { config: decoded } =
                assert_request_round_trips(&WireRequest::Open { config: config.clone() })
            else {
                panic!("wrong variant");
            };
            assert_eq!(decoded, config);
        }
        // An out-of-range class byte is a typed decode error.
        let mut bytes = WireRequest::Open { config: SessionConfig::new(9) }.encode();
        bytes[9] = 200; // the slo byte sits right after tag + id
        assert!(matches!(WireRequest::decode(&bytes), Err(NetError::Decode(_))));
    }

    #[test]
    fn submit_round_trips_frames_bit_exactly() {
        let original = frame(42);
        let WireRequest::Submit { id, frame: decoded } =
            assert_request_round_trips(&WireRequest::Submit { id: 9, frame: original.clone() })
        else {
            panic!("wrong variant");
        };
        assert_eq!(id, 9);
        assert_eq!(decoded.index, original.index);
        assert_eq!(decoded.timestamp_s.to_bits(), original.timestamp_s.to_bits());
        assert_eq!(decoded.points.len(), original.points.len());
        for (d, o) in decoded.points.iter().zip(&original.points) {
            assert_eq!(d.features().map(f32::to_bits), o.features().map(f32::to_bits));
        }
    }

    #[test]
    fn session_state_round_trips_with_checkpoint_and_pending_work() {
        use fuse_nn::layers::Linear;
        use fuse_nn::Sequential;

        let model = Sequential::new(vec![Box::new(Linear::new(4, 3, 77).unwrap())]);
        let state = SessionState {
            id: 11,
            slo: Some(SloClass::Interactive),
            fusion: FrameFusion::new(2),
            frames_seen: 5,
            ticks_seen: 7,
            history: vec![frame(3), frame(4)],
            // Two retained frames with a dropout gap between them.
            slot_mask: vec![true, false, true],
            checkpoint: Some(Checkpoint::capture(&model, "session-11")),
            pending: vec![(5, Tensor::from_vec(vec![1.0, -2.5, 3.25, 0.5], &[4]).unwrap())],
        };
        let WireRequest::ImportSession { state: decoded } =
            assert_request_round_trips(&WireRequest::ImportSession {
                state: Box::new(state.clone()),
            })
        else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.id, state.id);
        assert_eq!(decoded.slo, state.slo);
        assert_eq!(decoded.fusion.half_window(), 2);
        assert_eq!(decoded.frames_seen, state.frames_seen);
        assert_eq!(decoded.ticks_seen, state.ticks_seen);
        assert_eq!(decoded.history.len(), 2);
        assert_eq!(decoded.slot_mask, state.slot_mask);
        let original_ckpt = state.checkpoint.unwrap();
        let decoded_ckpt = decoded.checkpoint.unwrap();
        assert_eq!(decoded_ckpt.to_binary(), original_ckpt.to_binary());
        assert_eq!(decoded.pending.len(), 1);
        assert_eq!(decoded.pending[0].0, 5);
        assert_eq!(decoded.pending[0].1.as_slice(), state.pending[0].1.as_slice());
    }

    #[test]
    fn adapt_round_trips_an_encoded_dataset() {
        let sample = EncodedSample {
            input: Tensor::from_vec(vec![0.5; 8], &[2, 2, 2]).unwrap(),
            label: vec![0.25; 6],
            subject_id: 2,
            movement: Movement::ALL[7],
            sequence_index: 13,
        };
        let data = EncodedDataset::from_parts(
            vec![sample],
            Normalizer::from_stats(vec![0.1, 0.2], vec![1.0, 2.0]),
            [2, 2, 2],
        );
        let config = FineTuneConfig {
            epochs: 3,
            batch_size: 4,
            learning_rate: 1e-3,
            scope: FineTuneScope::LastLayer,
            seed: 99,
        };
        let WireRequest::Adapt { id, data: d2, config: c2 } =
            assert_request_round_trips(&WireRequest::Adapt { id: 1, data: data.clone(), config })
        else {
            panic!("wrong variant");
        };
        assert_eq!(id, 1);
        assert_eq!(c2, config);
        assert_eq!(d2.samples(), data.samples());
        assert_eq!(d2.normalizer().means(), data.normalizer().means());
        assert_eq!(d2.normalizer().stds(), data.normalizer().stds());
        assert_eq!(d2.input_dims(), data.input_dims());
    }

    #[test]
    fn responses_round_trip() {
        let result = FineTuneResult {
            new_data_error: vec![PoseError { meters: AxisMae { x: 0.01, y: 0.02, z: 0.03 } }],
            original_data_error: vec![PoseError { meters: AxisMae { x: 0.04, y: 0.05, z: 0.06 } }],
            train_loss: vec![0.5, 0.25],
        };
        let polled = WireResponse::Polled(vec![ServeResponse {
            session_id: 3,
            frame_index: 8,
            model_version: 2,
            adapted: true,
            joints: vec![1.0, -0.0, f32::from_bits(0x7f80_0001)],
        }]);
        for resp in [
            WireResponse::Opened,
            WireResponse::Closed(WireCloseReport { adapted: true, unserved: vec![2, 5] }),
            WireResponse::Submitted,
            WireResponse::Ticked,
            WireResponse::CapacitySet,
            WireResponse::Adapted(result),
            WireResponse::Flushed(WireFlushReport {
                responses: vec![ServeResponse {
                    session_id: 1,
                    frame_index: 2,
                    model_version: 3,
                    adapted: false,
                    joints: vec![0.5; 57],
                }],
                dropped: vec![(1, 0)],
                merged: vec![(1, 1), (1, 2)],
            }),
            polled,
            WireResponse::Prepared(WireCheckpointMeta {
                model_name: "mars-cnn".into(),
                param_len: 8,
            }),
            WireResponse::Committed { version: 4 },
            WireResponse::Aborted,
            WireResponse::Imported,
            WireResponse::ShuttingDown,
            WireResponse::Error(WireError::UnknownSession(5)),
            WireResponse::Error(WireError::DuplicateSession(6)),
            WireResponse::Error(WireError::Other("shard on fire".into())),
        ] {
            assert_eq!(format!("{:?}", assert_response_round_trips(&resp)), format!("{resp:?}"));
        }
    }

    #[test]
    fn snapshot_round_trips_latency_samples_and_gauges() {
        let mut rec = LatencyRecorder::new(22.0).with_sample_window(16);
        rec.record(Stage::Fuse, 1.25);
        rec.record(Stage::Inference, 3.5);
        rec.record(Stage::Total, 5.75);
        rec.record_legacy_fallback(2);
        let gauge = WireGauge {
            shard: 1,
            sessions: 2,
            queue_depth: 3,
            deepest_queue: Some((9, 3)),
            ready: 4,
            dropped_frames: 5,
            merged_frames: 6,
            blocked_submits: 7,
            steps: 8,
            responses: 9,
            model_version: 10,
        };
        let WireResponse::Snapshot { recorder, gauge: g2 } =
            assert_response_round_trips(&WireResponse::Snapshot {
                recorder: Box::new(rec.clone()),
                gauge,
            })
        else {
            panic!("wrong variant");
        };
        assert_eq!(g2, gauge);
        assert_eq!(recorder.budget_ms(), 22.0);
        assert_eq!(recorder.sample_window(), 16);
        assert_eq!(recorder.legacy_fallback_frames(), 2);
        for stage in Stage::ALL {
            let got: Vec<f64> = recorder.stage_samples(stage).collect();
            let want: Vec<f64> = rec.stage_samples(stage).collect();
            assert_eq!(got, want, "{stage:?} samples must survive the wire");
        }
    }

    #[test]
    fn wire_errors_map_to_typed_serve_errors() {
        assert_eq!(ServeError::from(WireError::UnknownSession(4)), ServeError::UnknownSession(4));
        assert_eq!(
            ServeError::from(WireError::DuplicateSession(4)),
            ServeError::DuplicateSession(4)
        );
        assert!(matches!(
            ServeError::from(WireError::Other("boom".into())),
            ServeError::Remote(msg) if msg == "boom"
        ));
        assert_eq!(WireError::from(&ServeError::UnknownSession(9)), WireError::UnknownSession(9));
    }

    #[test]
    fn corrupt_messages_are_typed_errors_not_panics() {
        assert!(WireRequest::decode(&[]).is_err());
        assert!(WireRequest::decode(&[200]).is_err(), "unknown tag");
        assert!(WireResponse::decode(&[200]).is_err(), "unknown tag");
        // Trailing bytes after a complete message.
        let mut bytes = WireRequest::Flush.encode();
        bytes.push(0);
        assert!(matches!(WireRequest::decode(&bytes), Err(NetError::Decode(_))));
        // A truncated submit.
        let bytes = WireRequest::Submit { id: 1, frame: frame(0) }.encode();
        assert!(matches!(
            WireRequest::decode(&bytes[..bytes.len() - 3]),
            Err(NetError::Truncated { .. })
        ));
        // A movement index beyond the roster.
        let sample = EncodedSample {
            input: Tensor::from_vec(vec![0.0], &[1]).unwrap(),
            label: vec![],
            subject_id: 0,
            movement: Movement::ALL[0],
            sequence_index: 0,
        };
        let data = EncodedDataset::from_parts(
            vec![sample],
            Normalizer::from_stats(vec![0.0], vec![1.0]),
            [1, 1, 1],
        );
        let config = FineTuneConfig::default();
        let mut bytes = WireRequest::Adapt { id: 0, data, config }.encode();
        // The movement byte sits right after tag + id + tensor + empty label
        // + subject id; find it by scanning for the only 0-byte we wrote as
        // a movement index is fragile, so corrupt via re-encode: flip every
        // byte one at a time and require no panic.
        for i in 0..bytes.len() {
            bytes[i] ^= 0xff;
            let _ = WireRequest::decode(&bytes); // must not panic
            bytes[i] ^= 0xff;
        }
    }
}
