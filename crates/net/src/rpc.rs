//! Stop-and-wait RPC with retransmission and duplicate suppression.
//!
//! The [`Transport`] contract allows drops, duplicates and reordering; this
//! layer restores *exactly-once request execution*:
//!
//! * The client numbers requests with a monotone sequence counter, sends,
//!   and waits for the response carrying that sequence number; on a receive
//!   timeout it retransmits the same request.
//! * The server remembers the last executed sequence number and its encoded
//!   response: a request with the same number is answered from the cache
//!   *without re-executing*, an older number is ignored entirely.
//!
//! With one request in flight at a time (stop-and-wait), this is the
//! classic alternating-protocol argument: every request body is executed
//! exactly once, in order, no matter how the link mangles frames — which is
//! what lets a host shard's state machine stay deterministic over a flaky
//! link. Responses the client has stopped waiting for (stale duplicates)
//! are discarded by sequence number.
//!
//! The envelope inside each `FNET` frame payload is, normatively:
//!
//! ```text
//! offset  size  field
//! 0       1     kind: 1 = request, 2 = response
//! 1       8     sequence number, u64 LE
//! 9       ..    message body (see `fuse_net::message`)
//! ```

use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::transport::Transport;
use crate::Result;

/// Envelope kind byte of a request.
pub const KIND_REQUEST: u8 = 1;
/// Envelope kind byte of a response.
pub const KIND_RESPONSE: u8 = 2;

/// Default per-attempt receive timeout before a retransmission.
pub const DEFAULT_RPC_TIMEOUT: Duration = Duration::from_millis(50);

/// Default retransmission budget per call.
pub const DEFAULT_RPC_ATTEMPTS: u32 = 200;

fn encode_envelope(kind: u8, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + body.len());
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    out
}

fn decode_envelope(payload: &[u8]) -> Result<(u8, u64, &[u8])> {
    if payload.len() < 9 {
        return Err(NetError::Truncated { what: "rpc envelope" });
    }
    let kind = payload[0];
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(NetError::Decode(format!("unknown rpc envelope kind {kind}")));
    }
    let seq = u64::from_le_bytes(payload[1..9].try_into().expect("sliced to 8 bytes"));
    Ok((kind, seq, &payload[9..]))
}

/// The calling side: one outstanding request at a time, retransmitted until
/// its response arrives.
#[derive(Debug)]
pub struct RpcClient<T: Transport> {
    transport: T,
    seq: u64,
    timeout: Duration,
    max_attempts: u32,
}

impl<T: Transport> RpcClient<T> {
    /// Wraps a transport with the default retransmission timer.
    pub fn new(transport: T) -> Self {
        RpcClient {
            transport,
            seq: 0,
            timeout: DEFAULT_RPC_TIMEOUT,
            max_attempts: DEFAULT_RPC_ATTEMPTS,
        }
    }

    /// Overrides the per-attempt receive timeout (clamped to ≥ 1 ms).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Overrides the retransmission budget (clamped to ≥ 1 attempt).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Executes one request: sends `body`, waits for the matching response,
    /// retransmitting on timeout; returns the response body.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when every attempt expired,
    /// [`NetError::Disconnected`] when the peer is gone, and propagates
    /// frame/envelope corruption errors.
    pub fn call(&mut self, body: &[u8]) -> Result<Vec<u8>> {
        self.seq += 1;
        let request = encode_envelope(KIND_REQUEST, self.seq, body);
        for _attempt in 0..self.max_attempts {
            self.transport.send(&request)?;
            let deadline = Instant::now() + self.timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break; // retransmit
                }
                match self.transport.recv_timeout(deadline - now)? {
                    None => break, // retransmit
                    Some(payload) => {
                        let (kind, seq, resp) = decode_envelope(&payload)?;
                        if kind == KIND_RESPONSE && seq == self.seq {
                            return Ok(resp.to_vec());
                        }
                        // A stale duplicate response (or our own kind echoed
                        // by a buggy peer): ignore and keep waiting.
                    }
                }
            }
        }
        Err(NetError::Timeout)
    }
}

/// The serving side: executes each distinct request exactly once and
/// answers duplicates from a response cache.
#[derive(Debug)]
pub struct RpcServer<T: Transport> {
    transport: T,
    /// Sequence number of the last request whose response was sent, with
    /// the encoded response envelope for duplicate suppression.
    completed: Option<(u64, Vec<u8>)>,
    /// Sequence number surfaced by `next_request` and not yet answered.
    pending_seq: Option<u64>,
}

impl<T: Transport> RpcServer<T> {
    /// Wraps a transport.
    pub fn new(transport: T) -> Self {
        RpcServer { transport, completed: None, pending_seq: None }
    }

    /// Waits up to `timeout` for the next *new* request and returns its
    /// body, or `None` when the deadline passes. Duplicates of the last
    /// answered request are re-answered from the cache internally; stale
    /// (older) requests are ignored. After a body is returned, the caller
    /// must call [`RpcServer::respond`] before asking for the next request.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] when the peer is gone and
    /// propagates frame/envelope corruption errors.
    pub fn next_request(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>> {
        debug_assert!(self.pending_seq.is_none(), "previous request was never answered");
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let Some(payload) = self.transport.recv_timeout(deadline - now)? else {
                return Ok(None);
            };
            let (kind, seq, body) = decode_envelope(&payload)?;
            if kind != KIND_REQUEST {
                continue;
            }
            match &self.completed {
                Some((last, cached)) if seq == *last => {
                    // A retransmission of the request we already executed:
                    // resend the cached response, do NOT re-execute.
                    let cached = cached.clone();
                    self.transport.send(&cached)?;
                }
                Some((last, _)) if seq < *last => {
                    // Older than anything relevant (a long-delayed
                    // duplicate): ignore.
                }
                _ => {
                    self.pending_seq = Some(seq);
                    return Ok(Some(body.to_vec()));
                }
            }
        }
    }

    /// Sends the response for the request last returned by
    /// [`RpcServer::next_request`] and caches it for duplicate suppression.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] / [`NetError::Io`] on transport
    /// failure. Panics (debug) if no request is pending.
    pub fn respond(&mut self, body: &[u8]) -> Result<()> {
        let seq = self.pending_seq.take().expect("respond() without a pending request");
        let response = encode_envelope(KIND_RESPONSE, seq, body);
        self.transport.send(&response)?;
        self.completed = Some((seq, response));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{sim_pair, FaultConfig};
    use std::thread;

    /// An echo server that counts executions, so tests can assert
    /// exactly-once semantics under faults.
    fn spawn_counting_echo(
        server_transport: crate::sim::SimTransport,
        requests_to_serve: usize,
    ) -> thread::JoinHandle<Vec<Vec<u8>>> {
        thread::spawn(move || {
            let mut server = RpcServer::new(server_transport);
            let mut executed = Vec::new();
            while executed.len() < requests_to_serve {
                if let Some(body) = server.next_request(Duration::from_secs(10)).unwrap() {
                    executed.push(body.clone());
                    let mut reply = b"echo:".to_vec();
                    reply.extend_from_slice(&body);
                    server.respond(&reply).unwrap();
                }
            }
            executed
        })
    }

    #[test]
    fn calls_round_trip_over_a_clean_link() {
        let (client_t, server_t) = sim_pair(FaultConfig::default(), FaultConfig::default());
        let server = spawn_counting_echo(server_t, 3);
        let mut client = RpcClient::new(client_t);
        for i in 0..3u8 {
            assert_eq!(client.call(&[i]).unwrap(), [b"echo:".as_slice(), &[i]].concat());
        }
        assert_eq!(server.join().unwrap(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn every_request_executes_exactly_once_over_a_flaky_link() {
        // Both directions drop, duplicate and reorder; the protocol must
        // deliver every call's response and execute each body exactly once.
        let (client_t, server_t) = sim_pair(FaultConfig::flaky(11), FaultConfig::flaky(23));
        let client_faults = client_t.fault_handle();
        let server_faults = server_t.fault_handle();
        const CALLS: usize = 40;
        let server = spawn_counting_echo(server_t, CALLS);
        let mut client = RpcClient::new(client_t).with_timeout(Duration::from_millis(10));
        for i in 0..CALLS as u8 {
            assert_eq!(client.call(&[i]).unwrap(), [b"echo:".as_slice(), &[i]].concat());
        }
        let executed = server.join().unwrap();
        assert_eq!(
            executed,
            (0..CALLS as u8).map(|i| vec![i]).collect::<Vec<_>>(),
            "each body must execute exactly once, in order"
        );
        let cf = client_faults.snapshot();
        let sf = server_faults.snapshot();
        assert!(cf.dropped > 0 && cf.duplicated > 0 && cf.reordered > 0, "request faults: {cf:?}");
        assert!(sf.dropped > 0 && sf.duplicated > 0 && sf.reordered > 0, "response faults: {sf:?}");
    }

    #[test]
    fn a_dead_peer_is_a_timeout_not_a_hang() {
        let (client_t, server_t) = sim_pair(
            // Drop every request so the server never answers.
            FaultConfig { drop_1_in: 1, ..FaultConfig::default() },
            FaultConfig::default(),
        );
        let mut client =
            RpcClient::new(client_t).with_timeout(Duration::from_millis(2)).with_max_attempts(5);
        let err = client.call(b"anyone there?").unwrap_err();
        assert_eq!(err, NetError::Timeout);
        drop(server_t);
    }

    #[test]
    fn a_disconnected_peer_is_reported_as_such() {
        let (client_t, server_t) = sim_pair(FaultConfig::default(), FaultConfig::default());
        drop(server_t);
        let mut client = RpcClient::new(client_t);
        assert_eq!(client.call(b"x").unwrap_err(), NetError::Disconnected);
    }
}
