//! Primitive binary encoders/decoders the message codec is built from.
//!
//! Everything is little-endian; floats travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a value decodes to *exactly* the
//! bits that were encoded — the property the workspace's bit-reproducibility
//! contract extends across hosts. Collection lengths are `u64`; strings are
//! length-prefixed UTF-8.

use crate::error::NetError;
use crate::Result;

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Finishes writing and takes the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern, little-endian.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `f32` slice (bit patterns).
    pub fn f32_slice(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f32(x);
        }
    }
}

/// Cursor-based binary reader over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless every byte was consumed — decoders call this last so a
    /// structurally valid prefix followed by garbage is an error, not a
    /// silently ignored tail.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(NetError::Decode(format!(
                "{} trailing bytes after a complete message",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(NetError::Truncated { what });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("sliced to 4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("sliced to 8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do
    /// not fit (or that exceed the remaining buffer when used as a length —
    /// callers pass lengths through [`Reader::len_prefix`] instead).
    pub fn usize(&mut self, what: &'static str) -> Result<usize> {
        usize::try_from(self.u64(what)?)
            .map_err(|_| NetError::Decode(format!("{what} does not fit in usize")))
    }

    /// Reads a length prefix that will be used to read `unit`-byte items,
    /// validating it against the bytes actually remaining so a corrupt
    /// length cannot trigger a giant allocation.
    pub fn len_prefix(&mut self, unit: usize, what: &'static str) -> Result<usize> {
        let len = self.usize(what)?;
        if len.checked_mul(unit.max(1)).is_none_or(|total| total > self.remaining()) {
            return Err(NetError::Truncated { what });
        }
        Ok(len)
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self, what: &'static str) -> Result<f32> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String> {
        let len = self.len_prefix(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| NetError::Decode(format!("{what} is not UTF-8: {e}")))
    }

    /// Reads a length-prefixed byte blob.
    pub fn blob(&mut self, what: &'static str) -> Result<Vec<u8>> {
        let len = self.len_prefix(1, what)?;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Reads a length-prefixed `f32` slice (bit patterns).
    pub fn f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>> {
        let len = self.len_prefix(4, what)?;
        (0..len).map(|_| self.f32(what)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f32(-0.0);
        w.f32(f32::from_bits(0x7f80_0001)); // a signalling NaN pattern
        w.f64(std::f64::consts::PI);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.f32_slice(&[1.5, -2.25]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f32("d").unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f32("e").unwrap().to_bits(), 0x7f80_0001);
        assert_eq!(r.f64("f").unwrap(), std::f64::consts::PI);
        assert_eq!(r.str("g").unwrap(), "héllo");
        assert_eq!(r.blob("h").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f32_vec("i").unwrap(), vec![1.5, -2.25]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let mut w = Writer::new();
        w.u64(5);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes[..4]);
        assert_eq!(r.u64("word").unwrap_err(), NetError::Truncated { what: "word" });

        // A corrupt length prefix larger than the remaining buffer must not
        // allocate; it fails as truncation.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.blob("blob"), Err(NetError::Truncated { .. })));

        let mut r = Reader::new(&[0, 1, 2]);
        r.u8("x").unwrap();
        assert!(matches!(r.finish(), Err(NetError::Decode(_))));
    }
}
