//! Error type for the wire layer.

use std::error::Error;
use std::fmt;

/// Error returned by fallible wire operations (framing, transports, RPC).
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The buffer ended before the structure it should contain did.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The frame does not open with the `FNET` magic.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The frame's format version is not supported by this decoder.
    UnsupportedVersion {
        /// The version found in the frame header.
        found: u32,
    },
    /// The payload does not hash to the checksum in the frame trailer.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum computed over the received payload.
        actual: u64,
    },
    /// The header declares a payload longer than the decoder's sanity bound
    /// (a corrupt length field must not become a giant allocation).
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// Maximum accepted payload length.
        max: u64,
    },
    /// A frame payload decoded cleanly as bytes but not as the expected
    /// message structure.
    Decode(String),
    /// An I/O error on a TCP transport.
    Io(String),
    /// A remote call gave up after exhausting its retransmission attempts.
    Timeout,
    /// The peer is gone for good (socket closed, simulated endpoint
    /// dropped); retrying cannot help.
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { what } => write!(f, "truncated wire data while reading {what}"),
            NetError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected \"FNET\")")
            }
            NetError::UnsupportedVersion { found } => {
                write!(f, "unsupported frame version {found}")
            }
            NetError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: trailer {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame declares a {len}-byte payload (max {max})")
            }
            NetError::Decode(msg) => write!(f, "wire decode error: {msg}"),
            NetError::Io(msg) => write!(f, "transport I/O error: {msg}"),
            NetError::Timeout => write!(f, "remote call timed out after all retransmissions"),
            NetError::Disconnected => write!(f, "transport peer disconnected"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_interesting_numbers() {
        assert!(NetError::Truncated { what: "frame header" }.to_string().contains("frame header"));
        assert!(NetError::BadMagic { found: *b"JUNK" }.to_string().contains("FNET"));
        assert!(NetError::UnsupportedVersion { found: 9 }.to_string().contains('9'));
        let e = NetError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("0x"));
        assert!(NetError::FrameTooLarge { len: 10, max: 5 }.to_string().contains("10"));
        assert!(NetError::Decode("tag 77".into()).to_string().contains("tag 77"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
