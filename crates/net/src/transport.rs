//! Pluggable frame transports.
//!
//! A [`Transport`] moves opaque payloads between two endpoints, one `FNET`
//! frame per payload. The contract is deliberately weak — exactly what a
//! flaky datagram link gives you: a sent payload may arrive zero, one, or
//! more times, and payloads may arrive out of order. The [`crate::rpc`]
//! layer builds exactly-once request/response semantics on top, so shard
//! state machines never see the weakness.
//!
//! Two implementations ship:
//!
//! * [`TcpTransport`] — a real TCP/loopback stream with `FNET` framing (TCP
//!   itself neither drops nor reorders, but the RPC layer does not rely on
//!   that).
//! * [`crate::sim::SimTransport`] — an in-memory pair with injectable
//!   delay, drop, duplication and reordering, used by tests to prove the
//!   serving contract holds on a link that exercises every recovery path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::frame::{decode_frame, encode_frame, frame_len, FRAME_HEADER_LEN};
use crate::Result;

/// A bidirectional, frame-oriented, possibly-unreliable link endpoint.
pub trait Transport: Send {
    /// Sends one payload as one `FNET` frame. Delivery is not guaranteed
    /// (an implementation may drop, duplicate, reorder or delay it).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] when the peer is gone for good
    /// and [`NetError::Io`] for transport-level failures.
    fn send(&mut self, payload: &[u8]) -> Result<()>;

    /// Receives the next frame's payload, waiting at most `timeout`.
    /// Returns `Ok(None)` when the deadline passes with nothing received —
    /// the signal the RPC layer's retransmission timer runs on.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] when the peer is gone for good,
    /// frame-validation errors for corrupt data, and [`NetError::Io`] for
    /// transport-level failures.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>>;
}

impl Transport for Box<dyn Transport> {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        (**self).send(payload)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>> {
        (**self).recv_timeout(timeout)
    }
}

/// `FNET` framing over a TCP stream (loopback or real network).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    /// Bytes read off the stream but not yet consumed as a complete frame;
    /// a read timeout mid-frame keeps the partial frame here.
    rx_buf: Vec<u8>,
}

impl TcpTransport {
    /// Connects to a listening host shard.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the connection fails.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self::from_stream(stream))
    }

    /// Wraps an already-established stream (e.g. from `TcpListener::accept`).
    pub fn from_stream(stream: TcpStream) -> Self {
        // Frames are small and latency-bound; never batch them.
        let _ = stream.set_nodelay(true);
        TcpTransport { stream, rx_buf: Vec::new() }
    }

    /// Pops one complete frame's payload off the head of `rx_buf`, when one
    /// is fully buffered.
    fn take_buffered_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.rx_buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let total = frame_len(&self.rx_buf)?;
        if self.rx_buf.len() < total {
            return Ok(None);
        }
        let payload = decode_frame(&self.rx_buf[..total])?.to_vec();
        self.rx_buf.drain(..total);
        Ok(Some(payload))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        self.stream.write_all(&encode_frame(payload)).map_err(map_io)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(payload) = self.take_buffered_frame()? {
                return Ok(Some(payload));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // `set_read_timeout(Some(0))` is an error by contract; the
            // deadline check above keeps this strictly positive anyway, but
            // clamp defensively.
            let remaining = (deadline - now).max(Duration::from_millis(1));
            self.stream.set_read_timeout(Some(remaining)).map_err(map_io)?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.rx_buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(map_io(e)),
            }
        }
    }
}

fn map_io(e: std::io::Error) -> NetError {
    match e.kind() {
        std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::UnexpectedEof => NetError::Disconnected,
        _ => NetError::Io(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn tcp_round_trips_frames_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream);
            // Echo two messages back, then a large one.
            for _ in 0..3 {
                let msg = t.recv_timeout(Duration::from_secs(10)).unwrap().unwrap();
                t.send(&msg).unwrap();
            }
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(10)).unwrap(),
            None,
            "nothing sent yet: the deadline must pass quietly"
        );
        for msg in [&b"ping"[..], b"", &vec![0xabu8; 100_000]] {
            client.send(msg).unwrap();
            let echoed = client.recv_timeout(Duration::from_secs(10)).unwrap().unwrap();
            assert_eq!(echoed, msg);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_reports_a_closed_peer_as_disconnected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        server.join().unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)).unwrap_err(),
            NetError::Disconnected
        );
    }
}
