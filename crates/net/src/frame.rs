//! The `FNET` wire frame: the length-prefixed, checksummed container every
//! byte on a cluster link travels in.
//!
//! The layout continues the workspace's binary-container discipline (the
//! `FCKP` checkpoint and `FPLN` plan artifact): ASCII magic, little-endian
//! format version, explicit payload length, opaque payload, FNV-1a-64
//! trailer. Normatively:
//!
//! ```text
//! offset  size  field
//! 0       4     magic, ASCII "FNET"
//! 4       4     format version, u32 LE (currently 1)
//! 8       8     payload length N, u64 LE
//! 16      N     payload (opaque to the framing layer)
//! 16+N    8     FNV-1a-64 of the payload, u64 LE
//! ```
//!
//! Compatibility rules match the `.fplan` section of `REPRODUCIBILITY.md`:
//! the magic never changes; any layout change bumps the version; a decoder
//! rejects unknown versions rather than guessing; the checksum is computed
//! over the payload only (the header is validated structurally), and a
//! mismatch is a typed error, never a silent truncation.

use crate::error::NetError;
use crate::Result;

/// Frame magic: `"FNET"`.
pub const FRAME_MAGIC: [u8; 4] = *b"FNET";

/// Current frame format version.
pub const FRAME_VERSION: u32 = 1;

/// Fixed header size: magic + version + payload length.
pub const FRAME_HEADER_LEN: usize = 16;

/// Fixed trailer size: the FNV-1a-64 checksum.
pub const FRAME_TRAILER_LEN: usize = 8;

/// Sanity bound on the declared payload length (1 GiB): a corrupt length
/// field must surface as a typed error, not an absurd allocation.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// FNV-1a 64-bit hash — the same checksum the `FCKP` and `FPLN` containers
/// use, so one implementation discipline covers every container format in
/// the workspace.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps `payload` in a complete `FNET` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Validates a frame header and returns the *total* frame length (header +
/// payload + trailer) it declares. Stream transports use this to know how
/// many bytes to accumulate before [`decode_frame`] can run.
///
/// # Errors
///
/// Returns [`NetError::Truncated`] when fewer than [`FRAME_HEADER_LEN`]
/// bytes are given, and the magic/version/length errors of [`decode_frame`].
pub fn frame_len(header: &[u8]) -> Result<usize> {
    if header.len() < FRAME_HEADER_LEN {
        return Err(NetError::Truncated { what: "frame header" });
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("sliced to 4 bytes");
    if magic != FRAME_MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("sliced to 4 bytes"));
    if version != FRAME_VERSION {
        return Err(NetError::UnsupportedVersion { found: version });
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("sliced to 8 bytes"));
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(NetError::FrameTooLarge { len: payload_len, max: MAX_FRAME_PAYLOAD });
    }
    Ok(FRAME_HEADER_LEN + payload_len as usize + FRAME_TRAILER_LEN)
}

/// Decodes exactly one frame from `bytes` and returns its payload.
///
/// # Errors
///
/// Returns the typed header errors of [`frame_len`],
/// [`NetError::Truncated`] when the buffer is shorter (or, as a decode
/// error, longer) than the declared frame, and
/// [`NetError::ChecksumMismatch`] when the payload does not hash to the
/// trailer.
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8]> {
    let total = frame_len(bytes)?;
    if bytes.len() < total {
        return Err(NetError::Truncated { what: "frame payload" });
    }
    if bytes.len() > total {
        return Err(NetError::Decode(format!(
            "{} trailing bytes after a {total}-byte frame",
            bytes.len() - total
        )));
    }
    let payload = &bytes[FRAME_HEADER_LEN..total - FRAME_TRAILER_LEN];
    let expected =
        u64::from_le_bytes(bytes[total - FRAME_TRAILER_LEN..].try_into().expect("8-byte trailer"));
    let actual = fnv1a64(payload);
    if expected != actual {
        return Err(NetError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_the_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"the quick brown fox", &[0u8; 1000]] {
            let frame = encode_frame(payload);
            assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN);
            assert_eq!(decode_frame(&frame).unwrap(), payload);
        }
    }

    #[test]
    fn corruption_matrix_yields_typed_errors() {
        let frame = encode_frame(b"payload");

        // Truncated header.
        assert_eq!(
            decode_frame(&frame[..10]).unwrap_err(),
            NetError::Truncated { what: "frame header" }
        );
        // Wrong magic.
        let mut bad = frame.clone();
        bad[0] = b'J';
        assert!(matches!(decode_frame(&bad).unwrap_err(), NetError::BadMagic { .. }));
        // Unsupported version.
        let mut bad = frame.clone();
        bad[4] = 99; // low byte of the LE version word
        assert_eq!(decode_frame(&bad).unwrap_err(), NetError::UnsupportedVersion { found: 99 });
        // Truncated payload.
        assert_eq!(
            decode_frame(&frame[..frame.len() - 1]).unwrap_err(),
            NetError::Truncated { what: "frame payload" }
        );
        // Flipped payload byte → checksum mismatch.
        let mut bad = frame.clone();
        bad[FRAME_HEADER_LEN] ^= 0xff;
        assert!(matches!(decode_frame(&bad).unwrap_err(), NetError::ChecksumMismatch { .. }));
        // Flipped trailer byte → checksum mismatch.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(decode_frame(&bad).unwrap_err(), NetError::ChecksumMismatch { .. }));
        // Trailing garbage.
        let mut bad = frame.clone();
        bad.push(0);
        assert!(matches!(decode_frame(&bad).unwrap_err(), NetError::Decode(_)));
        // Absurd declared length.
        let mut bad = frame;
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bad).unwrap_err(), NetError::FrameTooLarge { .. }));
    }

    #[test]
    fn frame_len_reports_the_full_frame_size() {
        let frame = encode_frame(b"12345");
        assert_eq!(frame_len(&frame[..FRAME_HEADER_LEN]).unwrap(), frame.len());
    }
}
