//! The ten parametric rehabilitation movements.
//!
//! The MARS dataset (which the paper evaluates on) contains ten prescribed
//! rehabilitation movements performed in front of the radar. Each movement is
//! modelled here as a smooth, periodic modulation of a standing pose: a phase
//! value in `[0, 1)` describes progress through one repetition and maps to
//! joint positions via simple forward kinematics on the subject's segment
//! lengths.

use serde::{Deserialize, Serialize};

use crate::joints::{Joint, Skeleton};
use crate::subject::Subject;

/// The ten rehabilitation movements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Movement {
    /// Raise and lower the left arm in the sagittal plane.
    LeftUpperLimbExtension,
    /// Raise and lower the right arm in the sagittal plane.
    RightUpperLimbExtension,
    /// Raise and lower both arms together.
    BothUpperLimbExtension,
    /// Step forward with the left leg and bend both knees.
    LeftFrontLunge,
    /// Step forward with the right leg and bend both knees.
    RightFrontLunge,
    /// Bend both knees and lower the hips while raising the arms forward.
    Squat,
    /// Step sideways with the left leg.
    LeftSideLunge,
    /// Step sideways with the right leg.
    RightSideLunge,
    /// Simultaneously extend the left arm and left leg ("left limb extension").
    LeftLimbExtension,
    /// Simultaneously extend the right arm and right leg — the movement held
    /// out from training in the paper's §4.3 experiment.
    RightLimbExtension,
}

impl Movement {
    /// All ten movements in dataset order.
    pub const ALL: [Movement; 10] = [
        Movement::LeftUpperLimbExtension,
        Movement::RightUpperLimbExtension,
        Movement::BothUpperLimbExtension,
        Movement::LeftFrontLunge,
        Movement::RightFrontLunge,
        Movement::Squat,
        Movement::LeftSideLunge,
        Movement::RightSideLunge,
        Movement::LeftLimbExtension,
        Movement::RightLimbExtension,
    ];

    /// Stable index of the movement within [`Movement::ALL`].
    pub fn index(&self) -> usize {
        Movement::ALL.iter().position(|m| m == self).expect("movement is in ALL")
    }

    /// Short machine-friendly identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Movement::LeftUpperLimbExtension => "left_upper_limb_extension",
            Movement::RightUpperLimbExtension => "right_upper_limb_extension",
            Movement::BothUpperLimbExtension => "both_upper_limb_extension",
            Movement::LeftFrontLunge => "left_front_lunge",
            Movement::RightFrontLunge => "right_front_lunge",
            Movement::Squat => "squat",
            Movement::LeftSideLunge => "left_side_lunge",
            Movement::RightSideLunge => "right_side_lunge",
            Movement::LeftLimbExtension => "left_limb_extension",
            Movement::RightLimbExtension => "right_limb_extension",
        }
    }

    /// Duration of one repetition in seconds.
    pub fn period_s(&self) -> f32 {
        match self {
            Movement::LeftUpperLimbExtension
            | Movement::RightUpperLimbExtension
            | Movement::BothUpperLimbExtension => 3.0,
            Movement::Squat => 4.0,
            Movement::LeftFrontLunge | Movement::RightFrontLunge => 3.5,
            Movement::LeftSideLunge | Movement::RightSideLunge => 3.5,
            Movement::LeftLimbExtension | Movement::RightLimbExtension => 3.2,
        }
    }

    /// Returns `true` when the movement primarily involves the left limbs.
    pub fn involves_left(&self) -> bool {
        matches!(
            self,
            Movement::LeftUpperLimbExtension
                | Movement::LeftFrontLunge
                | Movement::LeftSideLunge
                | Movement::LeftLimbExtension
                | Movement::BothUpperLimbExtension
                | Movement::Squat
        )
    }

    /// Returns `true` when the movement primarily involves the right limbs.
    pub fn involves_right(&self) -> bool {
        matches!(
            self,
            Movement::RightUpperLimbExtension
                | Movement::RightFrontLunge
                | Movement::RightSideLunge
                | Movement::RightLimbExtension
                | Movement::BothUpperLimbExtension
                | Movement::Squat
        )
    }

    /// Computes the pose of `subject` at the given `phase` of a repetition.
    ///
    /// `phase` is taken modulo 1, so any real value is accepted. `intensity`
    /// scales the movement amplitude (1.0 = nominal) and models
    /// repetition-to-repetition variability.
    pub fn pose(&self, subject: &Subject, phase: f32, intensity: f32) -> Skeleton {
        let phase = phase.rem_euclid(1.0);
        // Smooth raise-and-return profile: 0 at the start/end, 1 mid-cycle.
        let cycle = 0.5 - 0.5 * (2.0 * std::f32::consts::PI * phase).cos();
        let a = (cycle * intensity).clamp(0.0, 1.5);

        let mut pose = standing_pose(subject);
        match self {
            Movement::LeftUpperLimbExtension => raise_arm(&mut pose, subject, Side::Left, a),
            Movement::RightUpperLimbExtension => raise_arm(&mut pose, subject, Side::Right, a),
            Movement::BothUpperLimbExtension => {
                raise_arm(&mut pose, subject, Side::Left, a);
                raise_arm(&mut pose, subject, Side::Right, a);
            }
            Movement::Squat => squat(&mut pose, subject, a),
            Movement::LeftFrontLunge => front_lunge(&mut pose, subject, Side::Left, a),
            Movement::RightFrontLunge => front_lunge(&mut pose, subject, Side::Right, a),
            Movement::LeftSideLunge => side_lunge(&mut pose, subject, Side::Left, a),
            Movement::RightSideLunge => side_lunge(&mut pose, subject, Side::Right, a),
            Movement::LeftLimbExtension => {
                raise_arm(&mut pose, subject, Side::Left, a);
                raise_leg(&mut pose, subject, Side::Left, a);
            }
            Movement::RightLimbExtension => {
                raise_arm(&mut pose, subject, Side::Right, a);
                raise_leg(&mut pose, subject, Side::Right, a);
            }
        }
        pose
    }
}

impl std::fmt::Display for Movement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

impl Side {
    fn sign(self) -> f32 {
        match self {
            Side::Left => -1.0,
            Side::Right => 1.0,
        }
    }

    fn shoulder(self) -> Joint {
        match self {
            Side::Left => Joint::ShoulderLeft,
            Side::Right => Joint::ShoulderRight,
        }
    }

    fn elbow(self) -> Joint {
        match self {
            Side::Left => Joint::ElbowLeft,
            Side::Right => Joint::ElbowRight,
        }
    }

    fn wrist(self) -> Joint {
        match self {
            Side::Left => Joint::WristLeft,
            Side::Right => Joint::WristRight,
        }
    }

    fn hip(self) -> Joint {
        match self {
            Side::Left => Joint::HipLeft,
            Side::Right => Joint::HipRight,
        }
    }

    fn knee(self) -> Joint {
        match self {
            Side::Left => Joint::KneeLeft,
            Side::Right => Joint::KneeRight,
        }
    }

    fn ankle(self) -> Joint {
        match self {
            Side::Left => Joint::AnkleLeft,
            Side::Right => Joint::AnkleRight,
        }
    }

    fn foot(self) -> Joint {
        match self {
            Side::Left => Joint::FootLeft,
            Side::Right => Joint::FootRight,
        }
    }
}

/// The neutral standing pose for a subject: feet on the floor, arms hanging,
/// facing the radar (the radar looks along +y, the subject along −y).
pub fn standing_pose(subject: &Subject) -> Skeleton {
    let x0 = subject.lateral_offset_m;
    let y0 = subject.stand_distance_m;
    let hip_z = subject.standing_hip_height();
    let shoulder_z = subject.standing_shoulder_height();
    let hw = subject.hip_width_m / 2.0;
    let sw = subject.shoulder_width_m / 2.0;

    let mut s = Skeleton::zero();
    s.set_position(Joint::SpineBase, [x0, y0, hip_z]);
    s.set_position(Joint::SpineMid, [x0, y0, hip_z + subject.torso_m * 0.5]);
    s.set_position(Joint::SpineShoulder, [x0, y0, shoulder_z]);
    s.set_position(Joint::Neck, [x0, y0, shoulder_z + 0.05]);
    s.set_position(Joint::Head, [x0, y0, shoulder_z + subject.head_neck_m * 0.75]);

    for side in [Side::Left, Side::Right] {
        let sx = x0 + side.sign() * sw;
        s.set_position(side.shoulder(), [sx, y0, shoulder_z]);
        s.set_position(side.elbow(), [sx, y0, shoulder_z - subject.upper_arm_m]);
        s.set_position(side.wrist(), [sx, y0, shoulder_z - subject.arm_length()]);

        let hx = x0 + side.sign() * hw;
        s.set_position(side.hip(), [hx, y0, hip_z]);
        s.set_position(side.knee(), [hx, y0, hip_z - subject.thigh_m]);
        s.set_position(side.ankle(), [hx, y0, 0.08]);
        s.set_position(side.foot(), [hx, y0 - subject.foot_m * 0.7, 0.02]);
    }
    s
}

/// Rotates one arm forward/up about the shoulder in the sagittal plane.
/// `amount` ∈ [0, 1.5]: 0 = hanging, 1 ≈ 150° of elevation (overhead).
fn raise_arm(pose: &mut Skeleton, subject: &Subject, side: Side, amount: f32) {
    let shoulder = pose.position(side.shoulder());
    let alpha = amount * 150.0f32.to_radians();
    // Direction of the straight arm, starting from pointing straight down
    // (alpha = 0) and rotating towards the radar (−y) and then up (+z).
    let dir = [0.0, -alpha.sin(), -alpha.cos()];
    let elbow = [
        shoulder[0],
        shoulder[1] + dir[1] * subject.upper_arm_m,
        shoulder[2] + dir[2] * subject.upper_arm_m,
    ];
    let wrist = [
        shoulder[0],
        shoulder[1] + dir[1] * subject.arm_length(),
        shoulder[2] + dir[2] * subject.arm_length(),
    ];
    pose.set_position(side.elbow(), elbow);
    pose.set_position(side.wrist(), wrist);
}

/// Lowers the pelvis and bends the knees; the arms extend forward for balance.
fn squat(pose: &mut Skeleton, subject: &Subject, amount: f32) {
    let drop = amount * 0.35 * (subject.thigh_m + subject.shank_m);
    let knee_forward = amount * 0.18;

    for joint in [Joint::SpineBase, Joint::SpineMid, Joint::SpineShoulder, Joint::Neck, Joint::Head]
    {
        let mut p = pose.position(joint);
        p[2] -= drop;
        pose.set_position(joint, p);
    }
    for side in [Side::Left, Side::Right] {
        let mut hip = pose.position(side.hip());
        hip[2] -= drop;
        pose.set_position(side.hip(), hip);
        let mut knee = pose.position(side.knee());
        knee[2] -= drop * 0.45;
        knee[1] -= knee_forward;
        pose.set_position(side.knee(), knee);
        // Ankles and feet stay planted.

        // Arms extend horizontally towards the radar for balance.
        let shoulder = pose.position(side.shoulder());
        let reach = amount.min(1.0);
        pose.set_position(
            side.elbow(),
            [
                shoulder[0],
                shoulder[1] - subject.upper_arm_m * reach,
                shoulder[2] - subject.upper_arm_m * (1.0 - reach),
            ],
        );
        pose.set_position(
            side.wrist(),
            [
                shoulder[0],
                shoulder[1] - subject.arm_length() * reach,
                shoulder[2] - subject.arm_length() * (1.0 - reach),
            ],
        );
        let mut sh = shoulder;
        sh[2] -= drop;
        pose.set_position(side.shoulder(), sh);
        let mut el = pose.position(side.elbow());
        el[2] -= drop;
        pose.set_position(side.elbow(), el);
        let mut wr = pose.position(side.wrist());
        wr[2] -= drop;
        pose.set_position(side.wrist(), wr);
    }
}

/// Steps one leg forward (towards the radar) and lowers the body.
fn front_lunge(pose: &mut Skeleton, subject: &Subject, side: Side, amount: f32) {
    let step = amount * 0.45;
    let drop = amount * 0.18;

    for joint in [Joint::SpineBase, Joint::SpineMid, Joint::SpineShoulder, Joint::Neck, Joint::Head]
    {
        let mut p = pose.position(joint);
        p[2] -= drop;
        p[1] -= step * 0.3;
        pose.set_position(joint, p);
    }
    for s in [Side::Left, Side::Right] {
        for joint in [s.shoulder(), s.elbow(), s.wrist(), s.hip()] {
            let mut p = pose.position(joint);
            p[2] -= drop;
            p[1] -= step * 0.3;
            pose.set_position(joint, p);
        }
    }
    // The stepping leg moves forward; its knee bends above the ankle.
    let hip = pose.position(side.hip());
    let ankle_y = hip[1] - step;
    pose.set_position(side.ankle(), [hip[0], ankle_y, 0.08]);
    pose.set_position(side.foot(), [hip[0], ankle_y - subject.foot_m * 0.7, 0.02]);
    let knee0 = pose.position(side.knee());
    let knee_target = [hip[0], ankle_y + 0.05, 0.08 + subject.shank_m * 0.9];
    pose.set_position(side.knee(), lerp3(knee0, knee_target, amount));
}

/// Linear interpolation between two points.
fn lerp3(a: [f32; 3], b: [f32; 3], t: f32) -> [f32; 3] {
    [a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t, a[2] + (b[2] - a[2]) * t]
}

/// Steps one leg sideways and shifts the body weight over it.
fn side_lunge(pose: &mut Skeleton, subject: &Subject, side: Side, amount: f32) {
    let step = amount * 0.4 * side.sign();
    let drop = amount * 0.12;
    let shift = step * 0.4;

    for joint in [Joint::SpineBase, Joint::SpineMid, Joint::SpineShoulder, Joint::Neck, Joint::Head]
    {
        let mut p = pose.position(joint);
        p[0] += shift;
        p[2] -= drop;
        pose.set_position(joint, p);
    }
    for s in [Side::Left, Side::Right] {
        for joint in [s.shoulder(), s.elbow(), s.wrist(), s.hip()] {
            let mut p = pose.position(joint);
            p[0] += shift;
            p[2] -= drop;
            pose.set_position(joint, p);
        }
    }
    let hip = pose.position(side.hip());
    let ankle_x = hip[0] + step;
    pose.set_position(side.ankle(), [ankle_x, hip[1], 0.08]);
    pose.set_position(side.foot(), [ankle_x, hip[1] - subject.foot_m * 0.7, 0.02]);
    let knee0 = pose.position(side.knee());
    let knee_target = [hip[0] + step * 0.6, hip[1], 0.08 + subject.shank_m * 0.9];
    pose.set_position(side.knee(), lerp3(knee0, knee_target, amount.min(1.0)));
}

/// Raises one straight leg forward (hip flexion) — used by the combined
/// limb-extension movements.
fn raise_leg(pose: &mut Skeleton, subject: &Subject, side: Side, amount: f32) {
    let hip = pose.position(side.hip());
    let beta = amount * 45.0f32.to_radians();
    let leg = subject.thigh_m + subject.shank_m;
    let dir = [0.0, -beta.sin(), -beta.cos()];
    let knee = [hip[0], hip[1] + dir[1] * subject.thigh_m, hip[2] + dir[2] * subject.thigh_m];
    let ankle = [hip[0], hip[1] + dir[1] * leg, hip[2] + dir[2] * leg];
    pose.set_position(side.knee(), knee);
    pose.set_position(side.ankle(), ankle);
    pose.set_position(side.foot(), [ankle[0], ankle[1] - subject.foot_m * 0.6, ankle[2]]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subject() -> Subject {
        Subject::profile(1)
    }

    #[test]
    fn all_movements_have_unique_ids_and_indices() {
        let mut ids: Vec<&str> = Movement::ALL.iter().map(|m| m.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        for (i, m) in Movement::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert!(m.period_s() > 1.0);
        }
    }

    #[test]
    fn standing_pose_is_anatomically_plausible() {
        let s = subject();
        let pose = standing_pose(&s);
        assert!(pose.is_finite());
        // Head above shoulders above hips above feet.
        assert!(pose.position(Joint::Head)[2] > pose.position(Joint::SpineShoulder)[2]);
        assert!(pose.position(Joint::SpineShoulder)[2] > pose.position(Joint::SpineBase)[2]);
        assert!(pose.position(Joint::SpineBase)[2] > pose.position(Joint::KneeLeft)[2]);
        assert!(pose.position(Joint::KneeLeft)[2] > pose.position(Joint::FootLeft)[2]);
        // Shoulders are wider apart than hips.
        let shoulder_span =
            (pose.position(Joint::ShoulderRight)[0] - pose.position(Joint::ShoulderLeft)[0]).abs();
        let hip_span = (pose.position(Joint::HipRight)[0] - pose.position(Joint::HipLeft)[0]).abs();
        assert!(shoulder_span > hip_span);
        // Subject stands at the configured distance.
        assert!((pose.position(Joint::SpineBase)[1] - s.stand_distance_m).abs() < 1e-5);
        // Standing height is close to the subject's stature.
        assert!((pose.height() - s.height_m).abs() < 0.25 * s.height_m);
    }

    #[test]
    fn phase_zero_is_close_to_standing() {
        let s = subject();
        let standing = standing_pose(&s);
        for m in Movement::ALL {
            let pose = m.pose(&s, 0.0, 1.0);
            for j in Joint::ALL {
                let a = pose.position(j);
                let b = standing.position(j);
                let dist =
                    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
                assert!(dist < 0.05, "{m} joint {j:?} moved {dist} at phase 0");
            }
        }
    }

    #[test]
    fn mid_cycle_differs_from_standing() {
        let s = subject();
        let standing = standing_pose(&s);
        for m in Movement::ALL {
            let pose = m.pose(&s, 0.5, 1.0);
            let moved = Joint::ALL.iter().any(|&j| {
                let a = pose.position(j);
                let b = standing.position(j);
                ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
                    > 0.15
            });
            assert!(moved, "{m} did not move any joint at mid-cycle");
        }
    }

    #[test]
    fn left_and_right_arm_raises_are_mirrored() {
        let s = subject();
        let left = Movement::LeftUpperLimbExtension.pose(&s, 0.5, 1.0);
        let right = Movement::RightUpperLimbExtension.pose(&s, 0.5, 1.0);
        // The raised wrist is well above its hanging height on the active side only.
        let standing = standing_pose(&s);
        let left_raise =
            left.position(Joint::WristLeft)[2] - standing.position(Joint::WristLeft)[2];
        let right_still =
            (left.position(Joint::WristRight)[2] - standing.position(Joint::WristRight)[2]).abs();
        assert!(left_raise > 0.3, "left wrist raise {left_raise}");
        assert!(right_still < 0.05);
        let right_raise =
            right.position(Joint::WristRight)[2] - standing.position(Joint::WristRight)[2];
        assert!((left_raise - right_raise).abs() < 0.05);
    }

    #[test]
    fn squat_lowers_the_hips_but_not_the_feet() {
        let s = subject();
        let standing = standing_pose(&s);
        let squatting = Movement::Squat.pose(&s, 0.5, 1.0);
        assert!(
            standing.position(Joint::SpineBase)[2] - squatting.position(Joint::SpineBase)[2] > 0.15
        );
        assert!(
            (squatting.position(Joint::AnkleLeft)[2] - standing.position(Joint::AnkleLeft)[2])
                .abs()
                < 1e-4
        );
        assert!(squatting.is_finite());
    }

    #[test]
    fn front_lunge_moves_the_stepping_foot_towards_the_radar() {
        let s = subject();
        let standing = standing_pose(&s);
        let lunge = Movement::RightFrontLunge.pose(&s, 0.5, 1.0);
        let step = standing.position(Joint::AnkleRight)[1] - lunge.position(Joint::AnkleRight)[1];
        assert!(step > 0.25, "step {step}");
        // The other ankle barely moves.
        let other =
            (standing.position(Joint::AnkleLeft)[1] - lunge.position(Joint::AnkleLeft)[1]).abs();
        assert!(other < 0.05);
    }

    #[test]
    fn side_lunge_moves_laterally_in_opposite_directions() {
        let s = subject();
        let left = Movement::LeftSideLunge.pose(&s, 0.5, 1.0);
        let right = Movement::RightSideLunge.pose(&s, 0.5, 1.0);
        let standing = standing_pose(&s);
        let dl = left.position(Joint::AnkleLeft)[0] - standing.position(Joint::AnkleLeft)[0];
        let dr = right.position(Joint::AnkleRight)[0] - standing.position(Joint::AnkleRight)[0];
        assert!(dl < -0.2, "left step {dl}");
        assert!(dr > 0.2, "right step {dr}");
    }

    #[test]
    fn limb_extension_raises_arm_and_leg_on_the_same_side() {
        let s = subject();
        let standing = standing_pose(&s);
        let pose = Movement::RightLimbExtension.pose(&s, 0.5, 1.0);
        assert!(
            pose.position(Joint::WristRight)[2] > standing.position(Joint::WristRight)[2] + 0.3
        );
        assert!(
            pose.position(Joint::AnkleRight)[2] > standing.position(Joint::AnkleRight)[2] + 0.1
        );
        // Left limbs stay put.
        assert!(
            (pose.position(Joint::AnkleLeft)[2] - standing.position(Joint::AnkleLeft)[2]).abs()
                < 0.02
        );
    }

    #[test]
    fn intensity_scales_the_amplitude() {
        let s = subject();
        let gentle = Movement::Squat.pose(&s, 0.5, 0.5);
        let full = Movement::Squat.pose(&s, 0.5, 1.0);
        let standing = standing_pose(&s);
        let gentle_drop =
            standing.position(Joint::SpineBase)[2] - gentle.position(Joint::SpineBase)[2];
        let full_drop = standing.position(Joint::SpineBase)[2] - full.position(Joint::SpineBase)[2];
        assert!(full_drop > 1.5 * gentle_drop);
    }

    #[test]
    fn phase_wraps_modulo_one() {
        let s = subject();
        let a = Movement::Squat.pose(&s, 0.25, 1.0);
        let b = Movement::Squat.pose(&s, 1.25, 1.0);
        let c = Movement::Squat.pose(&s, -0.75, 1.0);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn poses_are_continuous_in_phase() {
        let s = subject();
        for m in Movement::ALL {
            for k in 0..50 {
                let p0 = m.pose(&s, k as f32 / 50.0, 1.0);
                let p1 = m.pose(&s, (k as f32 + 0.02) / 50.0, 1.0);
                for j in Joint::ALL {
                    let a = p0.position(j);
                    let b = p1.position(j);
                    let dist =
                        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2))
                            .sqrt();
                    assert!(dist < 0.05, "{m} {j:?} jumped {dist} between adjacent phases");
                }
            }
        }
    }
}
