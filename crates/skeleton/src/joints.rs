//! The 19-joint skeleton and its bone graph.

use serde::{Deserialize, Serialize};

/// Number of joints tracked by the pose estimator (matches MARS / the paper's
/// "19 joints on the human body").
pub const JOINT_COUNT: usize = 19;

/// The 19 tracked joints, following the Kinect V2 naming that the MARS
/// dataset uses for its labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Joint {
    /// Base of the spine (pelvis centre).
    SpineBase = 0,
    /// Middle of the spine.
    SpineMid = 1,
    /// Top of the spine, between the shoulders.
    SpineShoulder = 2,
    /// Neck.
    Neck = 3,
    /// Head centre.
    Head = 4,
    /// Left shoulder.
    ShoulderLeft = 5,
    /// Left elbow.
    ElbowLeft = 6,
    /// Left wrist.
    WristLeft = 7,
    /// Right shoulder.
    ShoulderRight = 8,
    /// Right elbow.
    ElbowRight = 9,
    /// Right wrist.
    WristRight = 10,
    /// Left hip.
    HipLeft = 11,
    /// Left knee.
    KneeLeft = 12,
    /// Left ankle.
    AnkleLeft = 13,
    /// Left foot.
    FootLeft = 14,
    /// Right hip.
    HipRight = 15,
    /// Right knee.
    KneeRight = 16,
    /// Right ankle.
    AnkleRight = 17,
    /// Right foot.
    FootRight = 18,
}

impl Joint {
    /// All joints in label order.
    pub const ALL: [Joint; JOINT_COUNT] = [
        Joint::SpineBase,
        Joint::SpineMid,
        Joint::SpineShoulder,
        Joint::Neck,
        Joint::Head,
        Joint::ShoulderLeft,
        Joint::ElbowLeft,
        Joint::WristLeft,
        Joint::ShoulderRight,
        Joint::ElbowRight,
        Joint::WristRight,
        Joint::HipLeft,
        Joint::KneeLeft,
        Joint::AnkleLeft,
        Joint::FootLeft,
        Joint::HipRight,
        Joint::KneeRight,
        Joint::AnkleRight,
        Joint::FootRight,
    ];

    /// Index of this joint in the label vector.
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Returns `true` for joints on the left side of the body.
    pub fn is_left(&self) -> bool {
        matches!(
            self,
            Joint::ShoulderLeft
                | Joint::ElbowLeft
                | Joint::WristLeft
                | Joint::HipLeft
                | Joint::KneeLeft
                | Joint::AnkleLeft
                | Joint::FootLeft
        )
    }

    /// Returns `true` for joints on the right side of the body.
    pub fn is_right(&self) -> bool {
        matches!(
            self,
            Joint::ShoulderRight
                | Joint::ElbowRight
                | Joint::WristRight
                | Joint::HipRight
                | Joint::KneeRight
                | Joint::AnkleRight
                | Joint::FootRight
        )
    }
}

/// Bone connectivity of the skeleton as pairs of joints.
pub const BONES: [(Joint, Joint); 18] = [
    (Joint::SpineBase, Joint::SpineMid),
    (Joint::SpineMid, Joint::SpineShoulder),
    (Joint::SpineShoulder, Joint::Neck),
    (Joint::Neck, Joint::Head),
    (Joint::SpineShoulder, Joint::ShoulderLeft),
    (Joint::ShoulderLeft, Joint::ElbowLeft),
    (Joint::ElbowLeft, Joint::WristLeft),
    (Joint::SpineShoulder, Joint::ShoulderRight),
    (Joint::ShoulderRight, Joint::ElbowRight),
    (Joint::ElbowRight, Joint::WristRight),
    (Joint::SpineBase, Joint::HipLeft),
    (Joint::HipLeft, Joint::KneeLeft),
    (Joint::KneeLeft, Joint::AnkleLeft),
    (Joint::AnkleLeft, Joint::FootLeft),
    (Joint::SpineBase, Joint::HipRight),
    (Joint::HipRight, Joint::KneeRight),
    (Joint::KneeRight, Joint::AnkleRight),
    (Joint::AnkleRight, Joint::FootRight),
];

/// A single pose: the 3-D position of every joint.
///
/// Coordinates use the radar/MARS convention: `x` lateral, `y` depth away
/// from the sensor, `z` height above the floor, all in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Skeleton {
    positions: [[f32; 3]; JOINT_COUNT],
}

impl Skeleton {
    /// Creates a skeleton from explicit joint positions.
    pub fn from_positions(positions: [[f32; 3]; JOINT_COUNT]) -> Self {
        Skeleton { positions }
    }

    /// A degenerate skeleton with all joints at the origin.
    pub fn zero() -> Self {
        Skeleton { positions: [[0.0; 3]; JOINT_COUNT] }
    }

    /// Number of joints (always [`JOINT_COUNT`]).
    pub fn joint_count(&self) -> usize {
        JOINT_COUNT
    }

    /// Position of a joint.
    pub fn position(&self, joint: Joint) -> [f32; 3] {
        self.positions[joint.index()]
    }

    /// Sets the position of a joint.
    pub fn set_position(&mut self, joint: Joint, position: [f32; 3]) {
        self.positions[joint.index()] = position;
    }

    /// All joint positions in label order.
    pub fn positions(&self) -> &[[f32; 3]; JOINT_COUNT] {
        &self.positions
    }

    /// Flattens the pose into the 57-value label vector
    /// `(x_0, y_0, z_0, x_1, ...)` used by the CNN output layer.
    pub fn to_label_vec(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(JOINT_COUNT * 3);
        for p in &self.positions {
            out.extend_from_slice(p);
        }
        out
    }

    /// Reconstructs a skeleton from a 57-value label vector.
    ///
    /// Returns `None` when the slice does not contain exactly `3 * 19`
    /// values.
    pub fn from_label_vec(label: &[f32]) -> Option<Self> {
        if label.len() != JOINT_COUNT * 3 {
            return None;
        }
        let mut positions = [[0.0f32; 3]; JOINT_COUNT];
        for (j, p) in positions.iter_mut().enumerate() {
            p.copy_from_slice(&label[j * 3..j * 3 + 3]);
        }
        Some(Skeleton { positions })
    }

    /// Centroid of all joints.
    pub fn centroid(&self) -> [f32; 3] {
        let mut c = [0.0f32; 3];
        for p in &self.positions {
            for a in 0..3 {
                c[a] += p[a];
            }
        }
        for a in &mut c {
            *a /= JOINT_COUNT as f32;
        }
        c
    }

    /// Length of the bone between two joints.
    pub fn bone_length(&self, from: Joint, to: Joint) -> f32 {
        let a = self.position(from);
        let b = self.position(to);
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }

    /// Standing height proxy: vertical distance between the head and the
    /// lower of the two feet.
    pub fn height(&self) -> f32 {
        let head = self.position(Joint::Head)[2];
        let foot = self.position(Joint::FootLeft)[2].min(self.position(Joint::FootRight)[2]);
        head - foot
    }

    /// Translates every joint by the given offset.
    pub fn translated(&self, offset: [f32; 3]) -> Self {
        let mut out = *self;
        for p in &mut out.positions {
            for a in 0..3 {
                p[a] += offset[a];
            }
        }
        out
    }

    /// Per-joint velocity between two poses separated by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn velocities_from(&self, previous: &Skeleton, dt: f32) -> [[f32; 3]; JOINT_COUNT] {
        assert!(dt > 0.0, "dt must be positive");
        let mut v = [[0.0f32; 3]; JOINT_COUNT];
        for ((vel, cur), prev) in v.iter_mut().zip(&self.positions).zip(&previous.positions) {
            for ((out, c), p) in vel.iter_mut().zip(cur).zip(prev) {
                *out = (c - p) / dt;
            }
        }
        v
    }

    /// Returns `true` when every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.positions.iter().all(|p| p.iter().all(|c| c.is_finite()))
    }
}

impl Default for Skeleton {
    fn default() -> Self {
        Skeleton::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_indices_are_dense_and_unique() {
        let mut seen = [false; JOINT_COUNT];
        for j in Joint::ALL {
            assert!(!seen[j.index()], "duplicate index {}", j.index());
            seen[j.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn left_right_partition_is_consistent() {
        let left = Joint::ALL.iter().filter(|j| j.is_left()).count();
        let right = Joint::ALL.iter().filter(|j| j.is_right()).count();
        assert_eq!(left, 7);
        assert_eq!(right, 7);
        assert!(Joint::ALL.iter().all(|j| !(j.is_left() && j.is_right())));
    }

    #[test]
    fn bones_reference_every_non_root_joint_once() {
        // Every joint except SpineBase appears exactly once as a bone child.
        let mut child_count = [0usize; JOINT_COUNT];
        for (_, child) in BONES {
            child_count[child.index()] += 1;
        }
        assert_eq!(child_count[Joint::SpineBase.index()], 0);
        for j in Joint::ALL {
            if j != Joint::SpineBase {
                assert_eq!(child_count[j.index()], 1, "joint {j:?}");
            }
        }
    }

    #[test]
    fn label_vector_round_trips() {
        let mut skeleton = Skeleton::zero();
        for (i, j) in Joint::ALL.iter().enumerate() {
            skeleton.set_position(*j, [i as f32, 2.0 * i as f32, -(i as f32)]);
        }
        let label = skeleton.to_label_vec();
        assert_eq!(label.len(), 57);
        let back = Skeleton::from_label_vec(&label).unwrap();
        assert_eq!(back, skeleton);
        assert!(Skeleton::from_label_vec(&label[..56]).is_none());
    }

    #[test]
    fn translation_moves_centroid() {
        let s = Skeleton::zero().translated([1.0, 2.0, 3.0]);
        assert_eq!(s.centroid(), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn velocity_computation() {
        let a = Skeleton::zero();
        let b = Skeleton::zero().translated([0.1, 0.0, 0.2]);
        let v = b.velocities_from(&a, 0.1);
        assert!((v[0][0] - 1.0).abs() < 1e-5);
        assert!((v[0][2] - 2.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn velocity_rejects_zero_dt() {
        let a = Skeleton::zero();
        a.velocities_from(&a, 0.0);
    }

    #[test]
    fn bone_length_and_height() {
        let mut s = Skeleton::zero();
        s.set_position(Joint::Head, [0.0, 0.0, 1.7]);
        s.set_position(Joint::FootLeft, [0.0, 0.0, 0.0]);
        s.set_position(Joint::FootRight, [0.0, 0.0, 0.05]);
        assert!((s.height() - 1.7).abs() < 1e-6);
        s.set_position(Joint::Neck, [0.0, 0.0, 1.5]);
        assert!((s.bone_length(Joint::Neck, Joint::Head) - 0.2).abs() < 1e-6);
    }
}
