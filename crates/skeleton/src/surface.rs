//! Placement of radar scatterers on the body surface.
//!
//! The radar does not see joints; it sees reflections from the body surface.
//! This module turns a [`Skeleton`] pose into a set of surface points (with
//! per-point velocity and reflectivity) by sampling along each bone with a
//! segment-specific radius and reflectivity. The dataset crate converts these
//! surface points into `fuse-radar` scatterers.

use serde::{Deserialize, Serialize};

use crate::joints::{Joint, Skeleton, BONES, JOINT_COUNT};

/// A point on the body surface with its velocity and reflectivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Position `[x, y, z]` in metres.
    pub position: [f32; 3],
    /// Velocity `[vx, vy, vz]` in metres per second.
    pub velocity: [f32; 3],
    /// Relative radar reflectivity (proportional to the local surface area
    /// facing the radar; the torso reflects more than a wrist).
    pub reflectivity: f32,
}

/// Approximate radius (metres) and relative reflectivity of the body segment
/// attached to each bone child joint.
fn segment_properties(child: Joint) -> (f32, f32) {
    match child {
        Joint::SpineMid | Joint::SpineShoulder => (0.14, 3.0), // torso
        Joint::Neck => (0.06, 1.0),
        Joint::Head => (0.09, 1.5),
        Joint::ShoulderLeft | Joint::ShoulderRight => (0.07, 1.2),
        Joint::ElbowLeft | Joint::ElbowRight => (0.045, 0.8), // upper arm
        Joint::WristLeft | Joint::WristRight => (0.035, 0.5), // forearm
        Joint::HipLeft | Joint::HipRight => (0.10, 1.8),
        Joint::KneeLeft | Joint::KneeRight => (0.07, 1.2), // thigh
        Joint::AnkleLeft | Joint::AnkleRight => (0.05, 0.8), // shank
        Joint::FootLeft | Joint::FootRight => (0.04, 0.4),
        Joint::SpineBase => (0.12, 2.0),
    }
}

/// Samples surface points for a pose.
///
/// `points_per_bone` controls the sampling density along each of the 18
/// bones; `velocities` (per joint, as produced by
/// [`Skeleton::velocities_from`]) are interpolated along the bone so Doppler
/// information is consistent with the motion. Pass all-zero velocities for a
/// static pose.
pub fn body_surface_points(
    skeleton: &Skeleton,
    velocities: &[[f32; 3]; JOINT_COUNT],
    points_per_bone: usize,
) -> Vec<SurfacePoint> {
    let mut out = Vec::with_capacity(BONES.len() * points_per_bone);
    if points_per_bone == 0 {
        return out;
    }
    for (parent, child) in BONES {
        let a = skeleton.position(parent);
        let b = skeleton.position(child);
        let va = velocities[parent.index()];
        let vb = velocities[child.index()];
        let (radius, reflectivity) = segment_properties(child);
        for k in 0..points_per_bone {
            let t =
                if points_per_bone == 1 { 0.5 } else { k as f32 / (points_per_bone - 1) as f32 };
            let position =
                [a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t, a[2] + (b[2] - a[2]) * t];
            let velocity = [
                va[0] + (vb[0] - va[0]) * t,
                va[1] + (vb[1] - va[1]) * t,
                va[2] + (vb[2] - va[2]) * t,
            ];
            // Offset the point towards the radar (−y) by the segment radius so
            // reflections come from the front surface, not the bone axis.
            let position = [position[0], position[1] - radius, position[2]];
            out.push(SurfacePoint { position, velocity, reflectivity });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{standing_pose, Movement};
    use crate::subject::Subject;

    #[test]
    fn point_count_scales_with_density() {
        let pose = standing_pose(&Subject::profile(0));
        let zeros = [[0.0f32; 3]; JOINT_COUNT];
        assert_eq!(body_surface_points(&pose, &zeros, 0).len(), 0);
        assert_eq!(body_surface_points(&pose, &zeros, 1).len(), 18);
        assert_eq!(body_surface_points(&pose, &zeros, 4).len(), 72);
    }

    #[test]
    fn surface_points_lie_within_the_body_bounding_volume() {
        let subject = Subject::profile(2);
        let pose = standing_pose(&subject);
        let zeros = [[0.0f32; 3]; JOINT_COUNT];
        let points = body_surface_points(&pose, &zeros, 5);
        for p in &points {
            assert!(p.position[2] > -0.1 && p.position[2] < subject.height_m + 0.1);
            assert!((p.position[1] - subject.stand_distance_m).abs() < 0.6);
            assert!((p.position[0] - subject.lateral_offset_m).abs() < 1.0);
            assert!(p.reflectivity > 0.0);
        }
    }

    #[test]
    fn torso_points_reflect_more_than_wrist_points() {
        let (_, torso_refl) = segment_properties(Joint::SpineMid);
        let (_, wrist_refl) = segment_properties(Joint::WristLeft);
        assert!(torso_refl > 2.0 * wrist_refl);
    }

    #[test]
    fn velocities_are_interpolated_along_the_bone() {
        let pose = standing_pose(&Subject::profile(0));
        let mut velocities = [[0.0f32; 3]; JOINT_COUNT];
        velocities[Joint::WristLeft.index()] = [0.0, -2.0, 1.0];
        let points = body_surface_points(&pose, &velocities, 3);
        // Points on the left forearm (bone ElbowLeft -> WristLeft) should have
        // a spread of velocities between zero and the wrist velocity.
        let forearm_bone_index = BONES
            .iter()
            .position(|&(a, b)| a == Joint::ElbowLeft && b == Joint::WristLeft)
            .unwrap();
        let base = forearm_bone_index * 3;
        assert_eq!(points[base].velocity, [0.0, 0.0, 0.0]);
        assert_eq!(points[base + 2].velocity, [0.0, -2.0, 1.0]);
        assert!((points[base + 1].velocity[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn moving_pose_produces_moving_surface_points() {
        let subject = Subject::profile(1);
        let p0 = Movement::Squat.pose(&subject, 0.20, 1.0);
        let p1 = Movement::Squat.pose(&subject, 0.25, 1.0);
        let velocities = p1.velocities_from(&p0, 0.1);
        let points = body_surface_points(&p1, &velocities, 4);
        let moving = points.iter().filter(|p| p.velocity.iter().any(|v| v.abs() > 0.05)).count();
        assert!(moving > points.len() / 4, "only {moving} of {} points moving", points.len());
    }
}
