//! Anthropometric subject profiles.

use serde::{Deserialize, Serialize};

/// Number of subject profiles provided (the MARS dataset has four subjects).
pub const SUBJECT_COUNT: usize = 4;

/// Anthropometric description of one human subject.
///
/// Segment lengths are derived from stature using standard anthropometric
/// ratios (Drillis & Contini), so the four profiles differ in overall size
/// and proportions the way real subjects do. These differences are what the
/// leave-one-subject-out experiment in §4.3 stresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Subject {
    /// Subject identifier (0–3 for the four MARS-like subjects).
    pub id: usize,
    /// Standing height in metres.
    pub height_m: f32,
    /// Shoulder (biacromial) width in metres.
    pub shoulder_width_m: f32,
    /// Hip width in metres.
    pub hip_width_m: f32,
    /// Upper-arm length in metres.
    pub upper_arm_m: f32,
    /// Forearm length in metres.
    pub forearm_m: f32,
    /// Thigh length in metres.
    pub thigh_m: f32,
    /// Shank (lower leg) length in metres.
    pub shank_m: f32,
    /// Foot length in metres.
    pub foot_m: f32,
    /// Torso length from spine base to spine shoulder in metres.
    pub torso_m: f32,
    /// Neck-plus-head length in metres.
    pub head_neck_m: f32,
    /// Distance from the radar to where the subject stands, in metres.
    pub stand_distance_m: f32,
    /// Lateral offset of the subject from the radar boresight, in metres.
    pub lateral_offset_m: f32,
}

impl Subject {
    /// Builds a subject from stature using Drillis–Contini segment ratios.
    pub fn from_height(id: usize, height_m: f32) -> Self {
        Subject {
            id,
            height_m,
            shoulder_width_m: 0.259 * height_m,
            hip_width_m: 0.191 * height_m,
            upper_arm_m: 0.186 * height_m,
            forearm_m: 0.146 * height_m,
            thigh_m: 0.245 * height_m,
            shank_m: 0.246 * height_m,
            foot_m: 0.152 * height_m,
            torso_m: 0.288 * height_m,
            head_neck_m: 0.182 * height_m,
            stand_distance_m: 2.0,
            lateral_offset_m: 0.0,
        }
    }

    /// One of the four built-in subject profiles (`index` 0–3). Heights span
    /// 1.58 m to 1.88 m so the held-out subject of the §4.3 experiment is
    /// genuinely outside the training anthropometry.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn profile(index: usize) -> Self {
        assert!(index < SUBJECT_COUNT, "subject index {index} out of range (0..{SUBJECT_COUNT})");
        let heights = [1.62f32, 1.71, 1.80, 1.88];
        let distances = [2.0f32, 1.9, 2.1, 2.2];
        let lateral = [0.0f32, 0.1, -0.1, 0.15];
        let mut s = Subject::from_height(index, heights[index]);
        s.stand_distance_m = distances[index];
        s.lateral_offset_m = lateral[index];
        s
    }

    /// All four built-in profiles.
    pub fn all_profiles() -> Vec<Subject> {
        (0..SUBJECT_COUNT).map(Subject::profile).collect()
    }

    /// Height of the hip (spine base) above the floor when standing.
    pub fn standing_hip_height(&self) -> f32 {
        self.thigh_m + self.shank_m + 0.04
    }

    /// Height of the shoulder line above the floor when standing.
    pub fn standing_shoulder_height(&self) -> f32 {
        self.standing_hip_height() + self.torso_m
    }

    /// Total arm length (upper arm + forearm).
    pub fn arm_length(&self) -> f32 {
        self.upper_arm_m + self.forearm_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_ordered_by_height() {
        let subjects = Subject::all_profiles();
        assert_eq!(subjects.len(), 4);
        for w in subjects.windows(2) {
            assert!(w[0].height_m < w[1].height_m);
        }
        for (i, s) in subjects.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn segment_ratios_are_plausible() {
        let s = Subject::from_height(0, 1.75);
        // Standing shoulder height should be roughly 81% of stature.
        let ratio = s.standing_shoulder_height() / s.height_m;
        assert!(ratio > 0.70 && ratio < 0.90, "ratio {ratio}");
        // Arm length roughly a third of stature.
        assert!((s.arm_length() / s.height_m - 0.33).abs() < 0.05);
        // Leg segments sum to roughly half of stature.
        assert!(((s.thigh_m + s.shank_m) / s.height_m - 0.49).abs() < 0.05);
    }

    #[test]
    fn taller_subjects_have_longer_segments() {
        let small = Subject::profile(0);
        let tall = Subject::profile(3);
        assert!(tall.upper_arm_m > small.upper_arm_m);
        assert!(tall.thigh_m > small.thigh_m);
        assert!(tall.shoulder_width_m > small.shoulder_width_m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn profile_panics_out_of_range() {
        Subject::profile(4);
    }

    #[test]
    fn subjects_stand_within_radar_range() {
        for s in Subject::all_profiles() {
            assert!(s.stand_distance_m > 1.0 && s.stand_distance_m < 3.0);
            assert!(s.lateral_offset_m.abs() < 0.5);
        }
    }
}
