//! Sampling of skeleton sequences at the radar frame rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::joints::Skeleton;
use crate::movement::Movement;
use crate::subject::Subject;

/// Generates a time-indexed sequence of poses for one subject performing one
/// movement.
///
/// The animator adds two kinds of realism on top of the parametric movement
/// model:
///
/// * a small postural sway (the subject is never perfectly still), and
/// * per-repetition variability in amplitude and tempo, controlled by a seed
///   so sequences are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovementAnimator {
    subject: Subject,
    movement: Movement,
    frame_rate_hz: f32,
    sway_amplitude_m: f32,
    variability: f32,
    seed: u64,
}

impl MovementAnimator {
    /// Creates an animator with default sway (1 cm) and 15 % repetition
    /// variability.
    pub fn new(subject: Subject, movement: Movement, frame_rate_hz: f32) -> Self {
        MovementAnimator {
            subject,
            movement,
            frame_rate_hz,
            sway_amplitude_m: 0.01,
            variability: 0.15,
            seed: 0,
        }
    }

    /// Sets the seed controlling repetition-to-repetition variability.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the postural sway amplitude in metres.
    pub fn with_sway(mut self, sway_amplitude_m: f32) -> Self {
        self.sway_amplitude_m = sway_amplitude_m;
        self
    }

    /// Sets the repetition variability fraction (0 disables it).
    pub fn with_variability(mut self, variability: f32) -> Self {
        self.variability = variability.max(0.0);
        self
    }

    /// The subject being animated.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The movement being performed.
    pub fn movement(&self) -> Movement {
        self.movement
    }

    /// The sampling rate in frames per second.
    pub fn frame_rate_hz(&self) -> f32 {
        self.frame_rate_hz
    }

    /// Frame interval in seconds.
    pub fn frame_period_s(&self) -> f32 {
        1.0 / self.frame_rate_hz
    }

    /// Amplitude intensity for the repetition containing time `t`.
    fn repetition_intensity(&self, repetition: i64) -> f32 {
        if self.variability == 0.0 {
            return 1.0;
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (repetition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        1.0 + self.variability * (rng.gen::<f32>() * 2.0 - 1.0)
    }

    /// Pose of the subject at absolute time `t` seconds.
    pub fn pose_at(&self, t: f32) -> Skeleton {
        let period = self.movement.period_s();
        let repetition = (t / period).floor() as i64;
        let phase = (t / period).rem_euclid(1.0);
        let intensity = self.repetition_intensity(repetition);
        let pose = self.movement.pose(&self.subject, phase, intensity);

        // Slow postural sway: low-frequency lateral and depth drift.
        let sway_x = self.sway_amplitude_m * (0.31 * t + self.seed as f32 * 0.01).sin();
        let sway_y = self.sway_amplitude_m * 0.6 * (0.23 * t + 1.0).sin();
        pose.translated([sway_x, sway_y, 0.0])
    }

    /// Samples `count` consecutive frames starting at `start_time_s`.
    pub fn sample_frames(&self, start_time_s: f32, count: usize) -> Vec<Skeleton> {
        (0..count).map(|i| self.pose_at(start_time_s + i as f32 * self.frame_period_s())).collect()
    }

    /// Samples `count` frames together with per-joint velocities estimated by
    /// backward finite differences (the first frame gets zero velocity).
    pub fn sample_frames_with_velocities(
        &self,
        start_time_s: f32,
        count: usize,
    ) -> Vec<(Skeleton, [[f32; 3]; crate::joints::JOINT_COUNT])> {
        let frames = self.sample_frames(start_time_s, count);
        let dt = self.frame_period_s();
        let mut out = Vec::with_capacity(count);
        for (i, frame) in frames.iter().enumerate() {
            let velocity = if i == 0 {
                [[0.0f32; 3]; crate::joints::JOINT_COUNT]
            } else {
                frame.velocities_from(&frames[i - 1], dt)
            };
            out.push((*frame, velocity));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joints::Joint;

    fn animator() -> MovementAnimator {
        MovementAnimator::new(Subject::profile(0), Movement::Squat, 10.0).with_seed(7)
    }

    #[test]
    fn sample_count_and_rate() {
        let frames = animator().sample_frames(0.0, 25);
        assert_eq!(frames.len(), 25);
        assert!((animator().frame_period_s() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let a = animator().sample_frames(0.0, 10);
        let b = animator().sample_frames(0.0, 10);
        assert_eq!(a, b);
        let c = MovementAnimator::new(Subject::profile(0), Movement::Squat, 10.0)
            .with_seed(8)
            .sample_frames(0.0, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn motion_is_smooth_between_consecutive_frames() {
        let frames = animator().sample_frames(0.0, 100);
        for w in frames.windows(2) {
            for j in Joint::ALL {
                let a = w[0].position(j);
                let b = w[1].position(j);
                let dist =
                    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
                // At 10 Hz no joint should move faster than ~4 m/s.
                assert!(dist < 0.4, "joint {j:?} moved {dist} m in one frame");
            }
        }
    }

    #[test]
    fn repetitions_vary_in_amplitude() {
        let animator = animator().with_variability(0.3).with_sway(0.0);
        let period = Movement::Squat.period_s();
        // Mid-cycle hip height of repetition 0 vs repetition 1.
        let hip0 = animator.pose_at(0.5 * period).position(Joint::SpineBase)[2];
        let hip1 = animator.pose_at(1.5 * period).position(Joint::SpineBase)[2];
        assert!((hip0 - hip1).abs() > 1e-4, "repetitions identical");
    }

    #[test]
    fn zero_variability_and_sway_gives_periodic_motion() {
        let animator = animator().with_variability(0.0).with_sway(0.0);
        let period = Movement::Squat.period_s();
        let a = animator.pose_at(0.3 * period);
        let b = animator.pose_at(1.3 * period);
        for j in Joint::ALL {
            let pa = a.position(j);
            let pb = b.position(j);
            for axis in 0..3 {
                assert!((pa[axis] - pb[axis]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn velocities_are_zero_for_first_frame_and_finite_after() {
        let samples = animator().sample_frames_with_velocities(0.0, 20);
        assert_eq!(samples.len(), 20);
        assert_eq!(samples[0].1, [[0.0; 3]; 19]);
        let some_motion =
            samples[1..].iter().any(|(_, v)| v.iter().any(|j| j.iter().any(|&c| c.abs() > 0.01)));
        assert!(some_motion, "no joint velocity detected during a squat");
        for (_, v) in &samples {
            assert!(v.iter().all(|j| j.iter().all(|c| c.is_finite())));
        }
    }

    #[test]
    fn different_subjects_produce_different_poses() {
        let a = MovementAnimator::new(Subject::profile(0), Movement::Squat, 10.0).pose_at(0.7);
        let b = MovementAnimator::new(Subject::profile(3), Movement::Squat, 10.0).pose_at(0.7);
        assert_ne!(a, b);
        assert!(b.height() > a.height());
    }
}
