//! # fuse-skeleton
//!
//! Human body model and motion generator used to synthesise ground-truth
//! labels (and radar scatterers) for the FUSE reproduction.
//!
//! The MARS dataset that the paper evaluates on contains 19 Kinect-V2 joints
//! for four subjects performing ten rehabilitation movements at 10 Hz. This
//! crate provides the same taxonomy:
//!
//! * [`joints`] — the 19-joint [`joints::Skeleton`] and its bone graph;
//! * [`subject`] — anthropometric profiles for the four subjects;
//! * [`movement`] — the ten parametric rehabilitation movements;
//! * [`animator`] — sampling of skeleton sequences at the radar frame rate;
//! * [`surface`] — placement of radar scatterers on the body segments.
//!
//! ```
//! use fuse_skeleton::{MovementAnimator, Movement, Subject};
//!
//! let animator = MovementAnimator::new(Subject::profile(0), Movement::Squat, 10.0);
//! let sequence = animator.sample_frames(0.0, 20);
//! assert_eq!(sequence.len(), 20);
//! assert_eq!(sequence[0].joint_count(), 19);
//! ```

pub mod animator;
pub mod joints;
pub mod movement;
pub mod subject;
pub mod surface;

pub use animator::MovementAnimator;
pub use joints::{Joint, Skeleton, BONES, JOINT_COUNT};
pub use movement::Movement;
pub use subject::Subject;
pub use surface::{body_surface_points, SurfacePoint};
