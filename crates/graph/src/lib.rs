//! # fuse-graph
//!
//! Typed op-graph IR, fusion passes and zero-allocation execution plans for
//! the FUSE serving stack.
//!
//! The serving hot path used to walk a [`fuse-nn`-style] layer list where
//! every op allocated its own output tensor. This crate replaces that with a
//! compile-once / run-many design:
//!
//! 1. **Build** a [`Graph`]: a chain of typed nodes ([`OpKind`]) whose
//!    per-sample shapes ([`TensorMeta`]) are inferred and validated at push
//!    time, with layer parameters snapshotted into one flat buffer.
//! 2. **Compile** it with [`Graph::compile`]: rewrite passes fuse
//!    conv+bias+ReLU and linear+bias+ReLU into single kernel dispatches and
//!    collapse the im2col lowering of 1×1/stride-1 convolutions into a direct
//!    GEMM; the scheduler then walks the chain topologically and pre-plans
//!    every intermediate buffer into one bump arena with liveness-based slot
//!    reuse.
//! 3. **Run** the resulting [`ExecPlan`]: steady-state [`ExecPlan::run`]
//!    performs zero heap allocations — every intermediate lives in the arena
//!    planned at compile time.
//! 4. **Ship** it: [`ExecPlan::write_plan`] serializes the compiled plan into
//!    a self-contained, checksummed `.fplan` artifact (see [`artifact`]) that
//!    [`ExecPlan::read_plan`] — e.g. via the thin `fuse-edge` crate — loads
//!    and serves with no lowering stack and no startup compilation.
//!
//! Plans dispatch through the same `fuse-tensor` / `fuse-backend` kernels as
//! the legacy layer walk (same scalar/SIMD selection, same `FUSE_THREADS`
//! parallelism, same per-element operation order), so plan output is
//! bit-identical to the uncompiled pipeline under every exact-contract
//! backend choice — see `REPRODUCIBILITY.md` for the fusion-pass contract.
//!
//! Plans are also the workspace's **relaxed-contract surface**: float steps
//! route through the relaxed tensor entry points (fused-multiply-add kernels
//! under an explicit `FUSE_BACKEND=simd-fma`, bit-identical to exact
//! otherwise), and [`ExecPlan::quantize`] derives an int8 weight-quantized
//! plan that executes through the `fuse-quant` [`DeviceMemory`] seam and
//! ships in the same `.fplan` container (format v2). Relaxed outputs are
//! verified against float goldens by declared tolerance, never byte
//! equality.
//!
//! [`DeviceMemory`]: fuse_quant::DeviceMemory
//!
//! ```
//! use fuse_graph::{Graph, TensorMeta};
//!
//! // y = relu(W·x + b) with W = [[1, 2], [3, 4]], b = [0.5, -0.5].
//! let mut g = Graph::new(TensorMeta::f32(&[2]));
//! g.push_linear("fc", 2, 2, &[1.0, 2.0, 3.0, 4.0], &[0.5, -0.5])?;
//! g.push_relu("relu")?;
//! let mut plan = g.compile(4)?;
//!
//! // The ReLU fused into the GEMM dispatch: one step, not two.
//! assert_eq!(plan.step_count(), 1);
//! assert_eq!(plan.run(&[1.0, 1.0], 1)?, &[3.5, 6.5]);
//! # Ok::<(), fuse_graph::GraphError>(())
//! ```
//!
//! [`fuse-nn`-style]: https://github.com/fuse-rs/fuse

#![warn(missing_docs)]

mod arena;
pub mod artifact;
pub mod error;
pub mod graph;
pub mod meta;
pub mod op;
mod passes;
pub mod plan;

pub use artifact::{FPLAN_MAGIC, FPLAN_MIN_VERSION, FPLAN_VERSION};
pub use error::GraphError;
pub use graph::{Graph, ShapeSignature};
pub use meta::{DType, TensorMeta};
pub use op::{Node, NodeId, OpKind, ValueRef};
pub use plan::ExecPlan;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
