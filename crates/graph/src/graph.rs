//! Graph construction: typed pushes with shape inference and validation.

use fuse_tensor::Conv2dSpec;

use crate::error::GraphError;
use crate::meta::TensorMeta;
use crate::op::{Node, NodeId, OpKind, ValueRef};
use crate::Result;

/// The shape identity of a compiled model: everything a checkpoint must match
/// before it may replace the model's parameters.
///
/// Captured from the graph **before** rewrite passes run, so the layer-name
/// sequence matches what `fuse-nn` checkpoints record even after ReLU nodes
/// are fused away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeSignature {
    layer_names: Vec<String>,
    param_len: usize,
    input: TensorMeta,
    output: TensorMeta,
}

impl ShapeSignature {
    /// Reassembles a signature from decoded parts (the plan-artifact read
    /// path); construction stays crate-internal so external code can only
    /// obtain signatures from a real graph or artifact.
    pub(crate) fn from_parts(
        layer_names: Vec<String>,
        param_len: usize,
        input: TensorMeta,
        output: TensorMeta,
    ) -> Self {
        ShapeSignature { layer_names, param_len, input, output }
    }

    /// Layer names in push order (pre-fusion, checkpoint-compatible).
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// Total number of parameters across all nodes.
    pub fn param_len(&self) -> usize {
        self.param_len
    }

    /// Per-sample shape of the graph input.
    pub fn input(&self) -> &TensorMeta {
        &self.input
    }

    /// Per-sample shape of the graph output.
    pub fn output(&self) -> &TensorMeta {
        &self.output
    }
}

/// A typed, single-input op chain under construction.
///
/// Every `push_*` method validates operand shapes against the current tail of
/// the chain and snapshots the op's parameters into the graph's flat buffer,
/// so a successfully built graph is compilable by construction (up to ops the
/// planner does not support). See the crate docs for the build → compile →
/// run lifecycle.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) input: TensorMeta,
    pub(crate) nodes: Vec<Node>,
    pub(crate) params: Vec<f32>,
}

impl Graph {
    /// Starts an empty graph whose external input has the given per-sample
    /// shape.
    pub fn new(input: TensorMeta) -> Self {
        Graph { input, nodes: Vec::new(), params: Vec::new() }
    }

    /// Per-sample shape of the graph input.
    pub fn input_meta(&self) -> &TensorMeta {
        &self.input
    }

    /// Per-sample shape of the current chain tail (the graph output).
    pub fn output_meta(&self) -> &TensorMeta {
        self.nodes.last().map(|n| &n.output).unwrap_or(&self.input)
    }

    /// Number of nodes pushed so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of parameters snapshotted so far.
    pub fn param_len(&self) -> usize {
        self.params.len()
    }

    /// The nodes pushed so far, in order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The shape identity a checkpoint must match to serve from this graph.
    pub fn signature(&self) -> ShapeSignature {
        ShapeSignature {
            layer_names: self.nodes.iter().map(|n| n.name.clone()).collect(),
            param_len: self.params.len(),
            input: self.input.clone(),
            output: self.output_meta().clone(),
        }
    }

    fn tail_ref(&self) -> ValueRef {
        self.nodes.last().map(|n| ValueRef::Node(n.id)).unwrap_or(ValueRef::Input)
    }

    fn push_node(
        &mut self,
        name: &str,
        op: OpKind,
        output: TensorMeta,
        weight: &[f32],
        bias: &[f32],
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        let input = self.tail_ref();
        let w_start = self.params.len();
        self.params.extend_from_slice(weight);
        let b_start = self.params.len();
        self.params.extend_from_slice(bias);
        let b_end = self.params.len();
        self.nodes.push(Node {
            id,
            name: name.to_string(),
            op,
            input,
            output,
            weight: w_start..b_start,
            bias: b_start..b_end,
        });
        id
    }

    /// Appends a 2-D convolution (`[C, H, W]` → `[C_out, H_out, W_out]`).
    ///
    /// `weight` is `[C_out, C_in, k, k]` row-major, `bias` is `[C_out]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Shape`] when the tail is not rank-3, its channel
    /// count disagrees with `spec`, the geometry is degenerate, or the
    /// parameter slices have the wrong lengths.
    pub fn push_conv2d(
        &mut self,
        name: &str,
        spec: Conv2dSpec,
        weight: &[f32],
        bias: &[f32],
    ) -> Result<NodeId> {
        let tail = self.output_meta();
        let dims = tail.dims();
        if dims.len() != 3 {
            return Err(GraphError::Shape(format!(
                "conv2d '{name}' needs a rank-3 [C, H, W] input, tail is {tail}"
            )));
        }
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        if c != spec.in_channels {
            return Err(GraphError::Shape(format!(
                "conv2d '{name}' expects {} input channels, tail {tail} has {c}",
                spec.in_channels
            )));
        }
        let (out_h, out_w) = spec.output_size(h, w)?;
        if weight.len() != spec.weight_len() {
            return Err(GraphError::Shape(format!(
                "conv2d '{name}' weight has {} elements, spec implies {}",
                weight.len(),
                spec.weight_len()
            )));
        }
        if bias.len() != spec.out_channels {
            return Err(GraphError::Shape(format!(
                "conv2d '{name}' bias has {} elements, spec implies {}",
                bias.len(),
                spec.out_channels
            )));
        }
        let output = TensorMeta::f32(&[spec.out_channels, out_h, out_w]);
        Ok(self.push_node(name, OpKind::Conv2d { spec, fused_relu: false }, output, weight, bias))
    }

    /// Appends a fully-connected layer (`[in]` → `[out]`).
    ///
    /// `weight` is `[out x in]` row-major, `bias` is `[out]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Shape`] when the tail is not a flat
    /// `[in_features]` vector or the parameter slices have the wrong lengths.
    pub fn push_linear(
        &mut self,
        name: &str,
        in_features: usize,
        out_features: usize,
        weight: &[f32],
        bias: &[f32],
    ) -> Result<NodeId> {
        let tail = self.output_meta();
        if tail.dims() != [in_features] {
            return Err(GraphError::Shape(format!(
                "linear '{name}' expects a flat [{in_features}] input, tail is {tail}"
            )));
        }
        if weight.len() != out_features * in_features {
            return Err(GraphError::Shape(format!(
                "linear '{name}' weight has {} elements, expected {}",
                weight.len(),
                out_features * in_features
            )));
        }
        if bias.len() != out_features {
            return Err(GraphError::Shape(format!(
                "linear '{name}' bias has {} elements, expected {out_features}",
                bias.len()
            )));
        }
        let output = TensorMeta::f32(&[out_features]);
        let op = OpKind::Linear { in_features, out_features, fused_relu: false };
        Ok(self.push_node(name, op, output, weight, bias))
    }

    /// Appends an element-wise ReLU.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for uniformity with the other
    /// pushes.
    pub fn push_relu(&mut self, name: &str) -> Result<NodeId> {
        let output = self.output_meta().clone();
        Ok(self.push_node(name, OpKind::Relu, output, &[], &[]))
    }

    /// Appends a 2-D max pooling over non-overlapping `window × window` tiles
    /// (`[C, H, W]` → `[C, H/window, W/window]`, stride equal to the window).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Shape`] when the tail is not rank-3, the window
    /// is zero, or the spatial extent is smaller than the window.
    pub fn push_maxpool2d(&mut self, name: &str, window: usize) -> Result<NodeId> {
        let tail = self.output_meta();
        let dims = tail.dims();
        if dims.len() != 3 {
            return Err(GraphError::Shape(format!(
                "maxpool2d '{name}' needs a rank-3 [C, H, W] input, tail is {tail}"
            )));
        }
        if window == 0 {
            return Err(GraphError::Shape(format!(
                "maxpool2d '{name}' pooling window must be nonzero"
            )));
        }
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        if h < window || w < window {
            return Err(GraphError::Shape(format!(
                "maxpool2d '{name}' input {h}x{w} smaller than pooling window {window}"
            )));
        }
        let output = TensorMeta::f32(&[c, h / window, w / window]);
        Ok(self.push_node(name, OpKind::MaxPool2d { window }, output, &[], &[]))
    }

    /// Appends a flatten (`[C, H, W, ...]` → `[C*H*W*...]`).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for uniformity with the other
    /// pushes.
    pub fn push_flatten(&mut self, name: &str) -> Result<NodeId> {
        let output = TensorMeta::f32(&[self.output_meta().len()]);
        Ok(self.push_node(name, OpKind::Flatten, output, &[], &[]))
    }

    /// Appends a pass-through node (e.g. dropout at inference time).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for uniformity with the other
    /// pushes.
    pub fn push_identity(&mut self, name: &str) -> Result<NodeId> {
        let output = self.output_meta().clone();
        Ok(self.push_node(name, OpKind::Identity, output, &[], &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_follows_the_chain() {
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        g.push_conv2d("conv", Conv2dSpec::same(2, 3, 3), &[0.0; 54], &[0.0; 3]).unwrap();
        assert_eq!(g.output_meta().dims(), &[3, 4, 4]);
        g.push_relu("relu").unwrap();
        g.push_flatten("flatten").unwrap();
        assert_eq!(g.output_meta().dims(), &[48]);
        g.push_linear("fc", 48, 5, &[0.0; 240], &[0.0; 5]).unwrap();
        assert_eq!(g.output_meta().dims(), &[5]);
        assert_eq!(g.param_len(), 54 + 3 + 240 + 5);
    }

    #[test]
    fn pushes_reject_mismatched_shapes() {
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        // Wrong channel count.
        assert!(g.push_conv2d("conv", Conv2dSpec::same(3, 3, 3), &[0.0; 81], &[0.0; 3]).is_err());
        // Wrong weight length.
        assert!(g.push_conv2d("conv", Conv2dSpec::same(2, 3, 3), &[0.0; 10], &[0.0; 3]).is_err());
        // Linear on a rank-3 tail.
        assert!(g.push_linear("fc", 32, 5, &[0.0; 160], &[0.0; 5]).is_err());
        // Failed pushes must not have mutated the graph.
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.param_len(), 0);
    }

    #[test]
    fn maxpool_pushes_validate_geometry() {
        let mut g = Graph::new(TensorMeta::f32(&[2, 4, 4]));
        assert!(g.push_maxpool2d("pool", 0).is_err());
        assert!(g.push_maxpool2d("pool", 5).is_err());
        g.push_maxpool2d("pool", 2).unwrap();
        assert_eq!(g.output_meta().dims(), &[2, 2, 2]);
        g.push_flatten("flatten").unwrap();
        // Rank-1 tail: pooling needs [C, H, W].
        assert!(g.push_maxpool2d("pool2", 2).is_err());
        assert_eq!(g.param_len(), 0);
    }

    #[test]
    fn signature_records_push_order_names() {
        let mut g = Graph::new(TensorMeta::f32(&[4]));
        g.push_linear("fc1", 4, 4, &[0.0; 16], &[0.0; 4]).unwrap();
        g.push_relu("relu").unwrap();
        g.push_linear("fc2", 4, 2, &[0.0; 8], &[0.0; 2]).unwrap();
        let sig = g.signature();
        assert_eq!(sig.layer_names(), ["fc1", "relu", "fc2"]);
        assert_eq!(sig.param_len(), 30);
        assert_eq!(sig.input().dims(), &[4]);
        assert_eq!(sig.output().dims(), &[2]);
    }
}
